"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` goes through this file instead.
"""

from setuptools import setup

setup()
