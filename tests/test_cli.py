"""CLI dispatch (fast paths only — heavy experiments run in benchmarks)."""

import pytest

import repro.experiments.registry as registry
from repro.cli import build_parser, main
from repro.eval.engine import AttackRecord, SuiteResult


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.dataset == "digits"
        assert args.preset == "fast"
        assert args.seed == 0
        assert args.cache_dir is None

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--dataset", "imagenet"])

    def test_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--preset", "huge"])

    def test_eval_suite_options(self):
        args = build_parser().parse_args(
            ["eval-suite", "--defense", "pgd-adv", "--attacks", "fgsm,pgd",
             "--cache-dir", "/tmp/adv", "--no-early-stop"])
        assert args.defense == "pgd-adv"
        assert args.attacks == "fgsm,pgd"
        assert args.cache_dir == "/tmp/adv"
        assert args.no_early_stop is True

    def test_eval_suite_defense_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval-suite", "--defense", "magic"])

    def test_eval_suite_help_documents_engine(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "eval-suite" in out
        assert "early stopping" in out


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure5-convergence" in out
        assert "eval-suite" in out

    def test_unknown_experiment(self, capsys):
        assert main(["table9"]) == 2

    def test_eval_suite_renders_suite_result(self, capsys, monkeypatch):
        fake = SuiteResult(model_name="vanilla", dataset="digits",
                           clean_accuracy=0.9)
        fake.records.append(AttackRecord(attack="fgsm", accuracy=0.25,
                                         seconds=0.5, from_cache=True,
                                         flipped=10, evaluated=16))
        captured = {}

        def stub_runner(dataset, **kwargs):
            captured.update(kwargs, dataset=dataset)
            return fake

        monkeypatch.setitem(
            registry.REGISTRY, "eval-suite",
            registry.Experiment(artifact="evaluation engine",
                                description="stub", runner=stub_runner))
        assert main(["eval-suite", "--defense", "vanilla",
                     "--attacks", "fgsm", "--cache-dir", "/tmp/adv"]) == 0
        out = capsys.readouterr().out
        assert "vanilla" in out
        assert "fgsm" in out
        assert "1 of 1 attacks from cache" in out
        assert captured["defense"] == "vanilla"
        assert captured["attack_names"] == ["fgsm"]
        assert captured["cache_dir"] == "/tmp/adv"
        assert captured["early_stop"] is True

    def test_eval_suite_unknown_attack_is_error(self, capsys, monkeypatch):
        def raising_runner(dataset, **kwargs):
            raise KeyError("unknown attacks ['warp']")

        monkeypatch.setitem(
            registry.REGISTRY, "eval-suite",
            registry.Experiment(artifact="evaluation engine",
                                description="stub", runner=raising_runner))
        assert main(["eval-suite", "--attacks", "warp"]) == 2


class TestTrainCommand:
    def test_train_options_parse(self):
        args = build_parser().parse_args(
            ["train", "--defense", "gandef", "--dataset", "objects",
             "--checkpoint-dir", "/tmp/ck", "--resume",
             "--probe-every", "2", "--epochs", "8"])
        assert args.defense == "gandef"
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.resume is True
        assert args.probe_every == 2
        assert args.epochs == 8

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.probe_every is None
        assert args.epochs is None

    def test_train_dispatch(self, capsys, monkeypatch):
        from repro.defenses.base import TrainingHistory
        from repro.experiments.train_run import TrainRunResult

        captured = {}

        def stub_runner(dataset, **kwargs):
            captured.update(kwargs, dataset=dataset)
            return TrainRunResult(
                defense="zk-gandef", dataset=dataset,
                history=TrainingHistory(losses=[1.5, 1.0],
                                        epoch_seconds=[2.0, 2.0]),
                completed_epochs=2, resumed_from=1,
                checkpoint_path="/tmp/ck/checkpoint.npz",
                metrics_path="/tmp/ck/metrics.jsonl")

        monkeypatch.setitem(
            registry.REGISTRY, "train",
            registry.Experiment(artifact="training subsystem",
                                description="stub", runner=stub_runner))
        assert main(["train", "--defense", "gandef", "--dataset", "objects",
                     "--checkpoint-dir", "/tmp/ck", "--resume",
                     "--probe-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "resumed from 1" in out
        assert "checkpoint.npz" in out
        assert captured["defense"] == "gandef"
        assert captured["checkpoint_dir"] == "/tmp/ck"
        assert captured["resume"] is True
        assert captured["probe_every"] == 2

    def test_train_flags_flagged_when_inapplicable(self, capsys,
                                                   monkeypatch):
        def stub_runner(dataset, **kwargs):
            return {}

        monkeypatch.setitem(
            registry.REGISTRY, "table3",
            registry.Experiment(artifact="t3", description="stub",
                                runner=stub_runner))
        main(["table3", "--probe-every", "3"])
        out = capsys.readouterr().out
        assert "--probe-every" in out
        assert "ignored" in out

    def test_resume_without_checkpoint_dir_is_error(self, capsys):
        assert main(["train", "--resume"]) == 2
        assert "checkpoint" in capsys.readouterr().out.lower()

    def test_figure5_resume_without_dir_is_error(self, capsys):
        assert main(["figure5-time", "--resume"]) == 2
        assert "resume requires" in capsys.readouterr().out


class TestServeHttpCommand:
    def test_serve_http_options_parse(self):
        args = build_parser().parse_args(
            ["serve-http", "--host", "0.0.0.0", "--port", "8080",
             "--api-keys", "a:1,b:2", "--rate", "200", "--burst", "50",
             "--queue-limit", "64", "--procs", "2",
             "--target-rps", "100", "--requests", "0"])
        assert args.host == "0.0.0.0" and args.port == 8080
        assert args.api_keys == "a:1,b:2"
        assert args.rate == 200.0 and args.burst == 50.0
        assert args.queue_limit == 64 and args.procs == 2
        assert args.target_rps == 100.0 and args.requests == 0

    def test_serve_http_defaults(self):
        args = build_parser().parse_args(["serve-http"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.api_keys is None and args.rate is None
        assert args.queue_limit == 1024 and args.procs == 1

    def test_listing_names_serve_http(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve-http" in out

    def test_serve_http_multiproc_without_port_is_error(self, capsys):
        assert main(["serve-http", "--procs", "2", "--requests", "1"]) == 2
        assert "explicit --port" in capsys.readouterr().out

    def test_serve_http_bad_api_keys_is_error(self, capsys):
        assert main(["serve-http", "--api-keys", "nope",
                     "--requests", "1"]) == 2
        assert "client:key" in capsys.readouterr().out

    def test_http_flags_flagged_when_inapplicable(self, capsys,
                                                  monkeypatch):
        monkeypatch.setitem(
            registry.REGISTRY, "table3",
            registry.Experiment("t", "d", lambda *a, **k: []))
        main(["table3", "--port", "8080", "--rate", "5"])
        out = capsys.readouterr().out
        assert "--port" in out and "--rate" in out and "ignored" in out
