"""CLI dispatch (fast paths only — heavy experiments run in benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.dataset == "digits"
        assert args.preset == "fast"
        assert args.seed == 0

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--dataset", "imagenet"])

    def test_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--preset", "huge"])


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure5-convergence" in out

    def test_unknown_experiment(self, capsys):
        assert main(["table9"]) == 2
