"""CLI dispatch (fast paths only — heavy experiments run in benchmarks)."""

import pytest

import repro.experiments.registry as registry
from repro.cli import build_parser, main
from repro.eval.engine import AttackRecord, SuiteResult


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.dataset == "digits"
        assert args.preset == "fast"
        assert args.seed == 0
        assert args.cache_dir is None

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--dataset", "imagenet"])

    def test_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--preset", "huge"])

    def test_eval_suite_options(self):
        args = build_parser().parse_args(
            ["eval-suite", "--defense", "pgd-adv", "--attacks", "fgsm,pgd",
             "--cache-dir", "/tmp/adv", "--no-early-stop"])
        assert args.defense == "pgd-adv"
        assert args.attacks == "fgsm,pgd"
        assert args.cache_dir == "/tmp/adv"
        assert args.no_early_stop is True

    def test_eval_suite_defense_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval-suite", "--defense", "magic"])

    def test_eval_suite_help_documents_engine(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "eval-suite" in out
        assert "early stopping" in out


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure5-convergence" in out
        assert "eval-suite" in out

    def test_unknown_experiment(self, capsys):
        assert main(["table9"]) == 2

    def test_eval_suite_renders_suite_result(self, capsys, monkeypatch):
        fake = SuiteResult(model_name="vanilla", dataset="digits",
                           clean_accuracy=0.9)
        fake.records.append(AttackRecord(attack="fgsm", accuracy=0.25,
                                         seconds=0.5, from_cache=True,
                                         flipped=10, evaluated=16))
        captured = {}

        def stub_runner(dataset, **kwargs):
            captured.update(kwargs, dataset=dataset)
            return fake

        monkeypatch.setitem(
            registry.REGISTRY, "eval-suite",
            registry.Experiment(artifact="evaluation engine",
                                description="stub", runner=stub_runner))
        assert main(["eval-suite", "--defense", "vanilla",
                     "--attacks", "fgsm", "--cache-dir", "/tmp/adv"]) == 0
        out = capsys.readouterr().out
        assert "vanilla" in out
        assert "fgsm" in out
        assert "1 of 1 attacks from cache" in out
        assert captured["defense"] == "vanilla"
        assert captured["attack_names"] == ["fgsm"]
        assert captured["cache_dir"] == "/tmp/adv"
        assert captured["early_stop"] is True

    def test_eval_suite_unknown_attack_is_error(self, capsys, monkeypatch):
        def raising_runner(dataset, **kwargs):
            raise KeyError("unknown attacks ['warp']")

        monkeypatch.setitem(
            registry.REGISTRY, "eval-suite",
            registry.Experiment(artifact="evaluation engine",
                                description="stub", runner=raising_runner))
        assert main(["eval-suite", "--attacks", "warp"]) == 2
