"""HardeningLoop: cycle mechanics, determinism, efficacy, rollback."""

import os

import pytest

from repro.harden import CanaryPolicy, HardeningLoop
from repro.harden.loop import SERVING_NAME
from repro.train.checkpoint import read_checkpoint_meta

WIDTH = 4               # keep in sync with tests/harden/conftest.py
SEED = 3


def make_loop(checkpoint, workdir, **overrides):
    # At the tiny test width a clean-split continuation epoch moves the
    # classifier more than the discriminator gains, so the cycle under
    # test is anchoring-only — the label-free seam in isolation.
    kwargs = dict(model=str(checkpoint), dataset="digits", preset="fast",
                  seed=SEED, width=WIDTH, requests=48,
                  finetune_epochs=0, disc_passes=2,
                  workdir=workdir)
    kwargs.update(overrides)
    return HardeningLoop(**kwargs)


@pytest.fixture(scope="module")
def cycle_run(gandef_checkpoint, tmp_path_factory):
    """One full cycle, shared by the read-only assertions below."""
    loop = make_loop(gandef_checkpoint,
                     tmp_path_factory.mktemp("harden-run"))
    base = loop.prepare()
    report = loop.run(cycles=1)
    return loop, report, base.fingerprint


def test_cycle_mechanics(cycle_run):
    loop, report, base_fingerprint = cycle_run
    (result,) = report.cycles
    assert result.index == 0
    assert result.flagged > 0
    assert 0 < result.quarantined <= result.flagged
    assert os.path.exists(result.finetune.candidate_path)
    assert result.finetune.anchored          # zk-gandef has the seam
    assert result.verdict in ("promote", "reject")
    assert result.fingerprint == \
        loop.registry.get(SERVING_NAME).fingerprint
    assert report.base_checkpoint == loop.base_checkpoint


def test_cycle_promotes_and_improves_detection(cycle_run):
    """The efficacy pin: one hardening round against the fixed PGD
    attacker must strictly improve the gate's detection rate within the
    default policy's regression bounds."""
    loop, report, base_fingerprint = cycle_run
    (result,) = report.cycles
    assert result.canary.reasons == []
    assert result.promoted and report.promotions == 1
    assert result.canary.candidate.detection_rate > \
        result.canary.baseline.detection_rate
    assert result.fingerprint != base_fingerprint
    assert loop.registry.promoted_over(SERVING_NAME) is not None
    # Promotion provenance landed in the candidate archive itself.
    meta = read_checkpoint_meta(result.finetune.candidate_path)
    assert meta["promotion"]["model"] == SERVING_NAME
    assert meta["promotion"]["fingerprint"] == result.fingerprint
    assert meta["promotion"]["replaced_fingerprint"] == base_fingerprint
    assert meta["fine_tune"]["base_checkpoint"] == loop.base_checkpoint


def test_loop_is_deterministic(gandef_checkpoint, tmp_path,
                               archives_identical):
    """Same seed + same base checkpoint -> bit-identical candidates and
    identical serving fingerprints, twice over."""
    first = make_loop(gandef_checkpoint, tmp_path / "a").run(cycles=1)
    second = make_loop(gandef_checkpoint, tmp_path / "b").run(cycles=1)
    a, b = first.cycles[0], second.cycles[0]
    assert a.flagged == b.flagged
    assert a.quarantined == b.quarantined
    assert a.verdict == b.verdict
    assert a.fingerprint == b.fingerprint
    archives_identical(a.finetune.candidate_path, b.finetune.candidate_path)


def test_rejected_candidate_keeps_old_weights(gandef_checkpoint, tmp_path):
    """A canary no candidate can pass -> reject, and the serving entry
    (weights and fingerprint) stays exactly what it was."""
    impossible = CanaryPolicy(min_detection_gain=2.0)   # rates are <= 1
    loop = make_loop(gandef_checkpoint, tmp_path, requests=12,
                     finetune_epochs=0, disc_passes=1, policy=impossible)
    base = loop.prepare()
    report = loop.run(cycles=1)
    (result,) = report.cycles
    assert result.verdict == "reject" and not result.promoted
    assert result.canary.reasons
    assert result.fingerprint == base.fingerprint
    assert loop.registry.promoted_over(SERVING_NAME) is None
    with pytest.raises(KeyError):
        loop.rollback()


def test_width_override_rejected_for_defense_names(tmp_path):
    loop = HardeningLoop(model="zk-gandef", width=WIDTH,
                         workdir=tmp_path)
    with pytest.raises(ValueError, match="width overrides"):
        loop.prepare()


def test_argument_validation(tmp_path, gandef_checkpoint):
    with pytest.raises(ValueError, match="requests"):
        HardeningLoop(requests=0, workdir=tmp_path)
    with pytest.raises(ValueError, match="cycles"):
        make_loop(gandef_checkpoint, tmp_path).run(cycles=0)
    with pytest.raises(ValueError, match="does not exist"):
        HardeningLoop(model=str(tmp_path / "missing.npz"),
                      workdir=tmp_path).prepare()


def test_rollback_restores_the_displaced_entry(cycle_run):
    # Defined last: it mutates the shared loop's registry.
    loop, report, base_fingerprint = cycle_run
    entry = loop.rollback()
    assert entry.fingerprint == base_fingerprint
    assert loop.registry.get(SERVING_NAME).fingerprint == base_fingerprint
    assert loop.registry.promoted_over(SERVING_NAME) is None
