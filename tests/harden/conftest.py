"""Shared hardening fixtures: one tiny zk-gandef checkpoint per module.

The fine-tune stage rebuilds its trainer from ``(preset, dataset,
width)`` exactly like the serving registry, so the base checkpoint must
be trained at the same coordinates — tiny width keeps every continuation
epoch cheap while exercising the real GanDef minimax loop.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer, load_config_split
from repro.train import save_checkpoint

WIDTH = 4
SEED = 3
BASE_EPOCHS = 3


def tiny_cfg():
    # Only the geometry shrinks: fine_tune rebuilds from the preset with
    # a width override, so everything else must stay the preset's.
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH)


@pytest.fixture(scope="session")
def archives_identical():
    """Bit-compare two checkpoint archives: every array plus the metadata.

    Raw file bytes are the wrong comparison — npz is a zip and embeds
    member mtimes.  And the history's ``epoch_seconds`` are wall-clock
    provenance, not training state, so they are length-checked but not
    value-compared; everything else (weights, optimizer moments, RNG
    streams, losses, fine-tune provenance) must match exactly.  The
    ``workers`` key is likewise provenance (the checkpoint docs pin that
    worker count is never load-bearing), so it is dropped too.
    """
    def scrub_seconds(meta):
        meta.pop("workers", None)
        history = meta.get("state", {}).get("history", {})
        return history.pop("epoch_seconds", [])

    def check(a, b):
        with np.load(a) as fa, np.load(b) as fb:
            assert sorted(fa.files) == sorted(fb.files)
            meta_a = json.loads(bytes(fa["__checkpoint__"]).decode("utf-8"))
            meta_b = json.loads(bytes(fb["__checkpoint__"]).decode("utf-8"))
            for name in fa.files:
                if name != "__checkpoint__":
                    np.testing.assert_array_equal(fa[name], fb[name])
        assert len(scrub_seconds(meta_a)) == len(scrub_seconds(meta_b))
        assert meta_a == meta_b

    return check


@pytest.fixture(scope="module")
def split():
    return load_config_split(tiny_cfg(), seed=SEED)


@pytest.fixture(scope="module")
def gandef_checkpoint(split, tmp_path_factory):
    """A trained tiny zk-gandef archive (classifier + discriminator)."""
    path = tmp_path_factory.mktemp("harden-base") / "checkpoint.npz"
    trainer = build_trainer("zk-gandef", tiny_cfg(), seed=SEED)
    trainer.epochs = BASE_EPOCHS
    trainer.fit(split.train)
    save_checkpoint(trainer, path)
    return path
