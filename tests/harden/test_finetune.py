"""fine_tune: resume mechanics, provenance, determinism, fallback path."""

import os

import numpy as np
import pytest

import dataclasses

from repro.harden import fine_tune
from repro.serve import QuarantineStore
from repro.train import save_checkpoint
from repro.train.checkpoint import read_checkpoint_meta
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer

WIDTH = 4               # keep in sync with tests/harden/conftest.py
SEED = 3
BASE_EPOCHS = 3


def tiny_cfg():
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH)


@pytest.fixture
def quarantine(tmp_path, split):
    """A small quarantine of noised test images (stand-in attack traffic)."""
    store = QuarantineStore(tmp_path / "quarantine")
    rng = np.random.default_rng(11)
    images = split.test.images[:4] + \
        rng.normal(scale=0.3, size=split.test.images[:4].shape)
    store.submit("m", images.astype(np.float32),
                 np.full(4, 0.9))
    return store


def flatten(obj, prefix=""):
    """Yield ``(path, ndarray)`` leaves of a nested state dict."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from flatten(value, f"{prefix}{key}/")
    elif isinstance(obj, np.ndarray):
        yield prefix, obj


def test_resume_and_provenance(tmp_path, gandef_checkpoint, quarantine):
    result = fine_tune(gandef_checkpoint, quarantine, dataset="digits",
                       staging_dir=tmp_path / "staging", seed=SEED,
                       width=WIDTH, epochs=1, disc_passes=1)
    assert result.trainer_name == "zk-gandef"
    assert result.anchored                      # source-bit seam, no labels
    assert result.quarantined == 4
    assert result.anchor_steps > 0
    assert os.path.exists(result.candidate_path)
    prov = result.meta["fine_tune"]
    assert prov["base_checkpoint"] == str(gandef_checkpoint)
    assert prov["quarantine_fingerprint"] == quarantine.fingerprint()
    assert prov["quarantined"] == 4 and prov["anchored"] is True
    assert prov["seed"] == SEED
    assert "state" not in result.meta           # result meta is lightweight
    # Candidate resumed *past* the base, not from scratch.
    state = read_checkpoint_meta(result.candidate_path)["state"]
    assert state["completed_epochs"] == BASE_EPOCHS + 1


def test_fine_tune_is_deterministic(tmp_path, gandef_checkpoint, quarantine,
                                    archives_identical):
    kwargs = dict(dataset="digits", seed=SEED, width=WIDTH,
                  epochs=1, disc_passes=2)
    first = fine_tune(gandef_checkpoint, quarantine,
                      staging_dir=tmp_path / "a", **kwargs)
    second = fine_tune(gandef_checkpoint, quarantine,
                       staging_dir=tmp_path / "b", **kwargs)
    archives_identical(first.candidate_path, second.candidate_path)


def test_worker_count_does_not_change_the_candidate(tmp_path,
                                                    gandef_checkpoint,
                                                    quarantine,
                                                    archives_identical):
    # The data-parallel contract: with the engine attached, the sharded
    # computation is bit-identical at any worker count (workers=None is
    # the separate legacy eager path, pinned elsewhere).
    kwargs = dict(dataset="digits", seed=SEED, width=WIDTH,
                  epochs=1, disc_passes=1)
    one = fine_tune(gandef_checkpoint, quarantine, workers=1,
                    staging_dir=tmp_path / "one", **kwargs)
    two = fine_tune(gandef_checkpoint, quarantine, workers=2,
                    staging_dir=tmp_path / "two", **kwargs)
    archives_identical(one.candidate_path, two.candidate_path)


def test_disc_passes_only_touch_the_discriminator(tmp_path,
                                                  gandef_checkpoint,
                                                  quarantine):
    # epochs=0: the anchor pass is the whole round.  4 quarantined + 4
    # clean pairs = 8 examples = one batch at the preset's batch size.
    result = fine_tune(gandef_checkpoint, quarantine, dataset="digits",
                       staging_dir=tmp_path / "staging", seed=SEED,
                       width=WIDTH, epochs=0, disc_passes=3)
    assert result.epochs == 0 and result.anchor_steps == 3
    base = read_checkpoint_meta(gandef_checkpoint)["state"]["modules"]
    cand = read_checkpoint_meta(result.candidate_path)["state"]["modules"]
    base_model = dict(flatten(base["model"]))
    cand_model = dict(flatten(cand["model"]))
    assert base_model
    for key, array in base_model.items():       # classifier untouched
        np.testing.assert_array_equal(array, cand_model[key])
    base_disc = dict(flatten(base["discriminator"]))
    cand_disc = dict(flatten(cand["discriminator"]))
    assert base_disc
    assert any(not np.array_equal(array, cand_disc[key])
               for key, array in base_disc.items())


def test_empty_quarantine_is_a_plain_continuation(tmp_path, split,
                                                  gandef_checkpoint):
    store = QuarantineStore(tmp_path / "empty-q")
    result = fine_tune(gandef_checkpoint, store, dataset="digits",
                       staging_dir=tmp_path / "staging", seed=SEED,
                       width=WIDTH, epochs=0, disc_passes=2)
    assert result.quarantined == 0 and result.anchor_steps == 0


def test_discriminator_less_defense_falls_back(tmp_path, split, quarantine):
    trainer = build_trainer("vanilla", tiny_cfg(), seed=SEED)
    trainer.epochs = 1
    trainer.fit(split.train)
    base = tmp_path / "vanilla.npz"
    save_checkpoint(trainer, base)
    result = fine_tune(base, quarantine, dataset="digits",
                       staging_dir=tmp_path / "staging", seed=SEED,
                       width=WIDTH, epochs=0, disc_passes=1)
    assert not result.anchored                  # pseudo-label continuation
    assert result.anchor_steps > 0


def test_negative_arguments_raise(tmp_path, gandef_checkpoint, quarantine):
    with pytest.raises(ValueError, match="epochs"):
        fine_tune(gandef_checkpoint, quarantine, dataset="digits",
                  staging_dir=tmp_path, epochs=-1)
    with pytest.raises(ValueError, match="disc_passes"):
        fine_tune(gandef_checkpoint, quarantine, dataset="digits",
                  staging_dir=tmp_path, disc_passes=-1)
