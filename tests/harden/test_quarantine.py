"""QuarantineStore: dedupe, ordering, capacity, metrics, multi-consumer."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.serve import FlagSink, QuarantineStore


@pytest.fixture
def images():
    rng = np.random.default_rng(5)
    return rng.normal(size=(6, 1, 8, 8)).astype(np.float32)


def test_store_and_examples_roundtrip(tmp_path, images):
    store = QuarantineStore(tmp_path / "q")
    n = store.submit("m", images[:3], np.array([0.9, 0.8, 0.7]))
    assert n == 3 and len(store) == 3
    got, scores = store.examples()
    assert got.shape == (3, 1, 8, 8) and scores.shape == (3,)
    # Content round-trips exactly (order is by content key, not arrival).
    want = {img.tobytes() for img in images[:3]}
    assert {img.tobytes() for img in got} == want


def test_duplicates_are_counted_not_stored(tmp_path, images):
    store = QuarantineStore(tmp_path / "q")
    store.submit("m", images[:2], np.array([0.9, 0.8]))
    stored = store.submit("m", images[:2], np.array([0.9, 0.8]))
    assert stored == 0
    assert len(store) == 2 and store.duplicates == 2


def test_capacity_drops_new_not_old(tmp_path, images):
    store = QuarantineStore(tmp_path / "q", max_entries=2)
    store.submit("m", images[:2], np.array([0.9, 0.8]))
    first_keys = sorted(r["key"] for r in store.manifest())
    store.submit("m", images[2:5], np.array([0.7, 0.6, 0.5]))
    # Quarantine is evidence: the earliest captures survive, the
    # overflow is dropped (and counted), never LRU-evicted.
    assert len(store) == 2 and store.dropped == 3
    assert sorted(r["key"] for r in store.manifest()) == first_keys


def test_examples_order_is_arrival_independent(tmp_path, images):
    a = QuarantineStore(tmp_path / "a")
    b = QuarantineStore(tmp_path / "b")
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    a.submit("m", images, scores)
    b.submit("m", images[::-1].copy(), scores[::-1].copy())
    ax, ascores = a.examples()
    bx, bscores = b.examples()
    np.testing.assert_array_equal(ax, bx)
    np.testing.assert_array_equal(ascores, bscores)
    assert a.fingerprint() == b.fingerprint()


def test_two_stores_share_one_directory(tmp_path, images):
    """The SO_REUSEPORT deployment: every worker opens the same root."""
    root = tmp_path / "shared"
    a = QuarantineStore(root)
    b = QuarantineStore(root)
    a.submit("m", images[:2], np.array([0.9, 0.8]))
    stored = b.submit("m", images[1:3], np.array([0.8, 0.7]))
    assert stored == 1 and b.duplicates == 1    # cross-process dedupe
    assert len(QuarantineStore(root)) == 3      # fresh reader sees all
    x, _ = QuarantineStore(root).examples()
    assert len(x) == 3


def test_journal_survives_torn_writes(tmp_path, images):
    store = QuarantineStore(tmp_path / "q")
    store.submit("m", images[:2], np.array([0.9, 0.8]))
    journal = os.path.join(store.root, QuarantineStore.JOURNAL_NAME)
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"key": "tor')        # a crash mid-append
    assert len(store.manifest()) == 2       # torn line skipped
    x, _ = QuarantineStore(tmp_path / "q").examples()
    assert len(x) == 2


def test_journal_records_provenance(tmp_path, images):
    store = QuarantineStore(tmp_path / "q")
    store.submit("modelA", images[:1], np.array([0.75]))
    journal = os.path.join(store.root, QuarantineStore.JOURNAL_NAME)
    (line,) = open(journal, encoding="utf-8").read().splitlines()
    entry = json.loads(line)
    assert entry["model"] == "modelA"
    assert entry["score"] == pytest.approx(0.75)


def test_empty_store(tmp_path):
    store = QuarantineStore(tmp_path / "q")
    assert len(store) == 0
    x, scores = store.examples()
    assert x.shape[0] == 0 and scores.shape == (0,)
    assert store.fingerprint()              # defined even when empty


def test_metrics_surface(tmp_path, images):
    registry = MetricsRegistry()
    old = obs.set_registry(registry)
    try:
        store = QuarantineStore(tmp_path / "q", max_entries=2)
        store.submit("m", images[:3], np.array([0.9, 0.8, 0.7]))
        store.submit("m", images[:1], np.array([0.9]))
        text = registry.render()
    finally:
        obs.set_registry(old)
    assert "repro_serve_quarantine_stored_total 2" in text
    assert "repro_serve_quarantine_dropped_total 1" in text
    assert "repro_serve_quarantine_duplicates_total 1" in text
    assert "repro_serve_quarantine_entries 2" in text


def test_flag_sink_base_is_abstract(images):
    with pytest.raises(NotImplementedError):
        FlagSink().submit("m", images[:1], np.array([0.5]))
