"""Canary policy logic: ``decide`` is pure, so bounds are unit-testable."""

from repro.harden import CanaryPolicy, decide
from repro.harden.canary import GateEval


def measure(clean=0.95, robust=0.40, detection=0.50, fpr=0.10):
    return GateEval(clean_accuracy=clean, robust_accuracy=robust,
                    detection_rate=detection, false_positive_rate=fpr)


def test_promotes_when_everything_within_bounds():
    base = measure()
    cand = measure(clean=0.94, robust=0.42, detection=0.60, fpr=0.12)
    report = decide(base, cand)
    assert report.verdict == "promote" and report.promote
    assert report.reasons == []
    assert report.baseline is base and report.candidate is cand


def test_clean_regression_rejects():
    report = decide(measure(clean=0.95), measure(clean=0.90))
    assert report.verdict == "reject" and not report.promote
    assert any("clean accuracy" in r for r in report.reasons)


def test_robust_regression_rejects():
    report = decide(measure(robust=0.40), measure(robust=0.30))
    assert report.verdict == "reject"
    assert any("robust accuracy" in r for r in report.reasons)


def test_fpr_regression_rejects():
    report = decide(measure(fpr=0.10), measure(fpr=0.20))
    assert report.verdict == "reject"
    assert any("false-positive" in r for r in report.reasons)


def test_detection_loss_rejects():
    report = decide(measure(detection=0.50), measure(detection=0.45))
    assert report.verdict == "reject"
    assert any("detection rate" in r for r in report.reasons)


def test_equal_detection_promotes_under_default_policy():
    # min_detection_gain defaults to 0.0: holding steady is enough.
    report = decide(measure(detection=0.50), measure(detection=0.50))
    assert report.verdict == "promote"


def test_strict_gain_policy_rejects_saturated_equal():
    # The bench's stricter policy: a candidate that merely matches a
    # saturated baseline is not an improvement.
    policy = CanaryPolicy(min_detection_gain=1e-9)
    report = decide(measure(detection=1.0), measure(detection=1.0),
                    policy)
    assert report.verdict == "reject"


def test_bounds_are_relative_not_absolute():
    # A weak baseline does not doom the candidate: bounds compare the
    # pair, so low absolute numbers still promote when nothing regresses.
    base = measure(clean=0.50, robust=0.10, detection=0.05, fpr=0.40)
    cand = measure(clean=0.49, robust=0.08, detection=0.06, fpr=0.44)
    assert decide(base, cand).verdict == "promote"


def test_multiple_violations_collect_multiple_reasons():
    base = measure()
    cand = measure(clean=0.80, robust=0.20, detection=0.30, fpr=0.30)
    report = decide(base, cand)
    assert report.verdict == "reject"
    assert len(report.reasons) == 4


def test_tightened_policy_bounds_apply():
    policy = CanaryPolicy(max_clean_regression=0.0)
    base, cand = measure(clean=0.95), measure(clean=0.949)
    assert decide(base, cand).verdict == "promote"      # default tolerates
    assert decide(base, cand, policy).verdict == "reject"
