"""E4/E5 — the CLS convergence failure on the complex dataset (Sec. V-D).

Reproduces Figure 5 (right) at test scale: under the paper's strong
settings the CLS loss stays on the flat top curve; under the weakest
setting it converges — and that setting degenerates toward Vanilla.
"""

import numpy as np
import pytest

from repro.data import load_split
from repro.defenses import CLSTrainer
from repro.experiments.figure5 import CLS_SETTINGS, ConvergenceCurve
from repro.models import build_classifier


@pytest.fixture(scope="module")
def objects_split():
    return load_split("objects", 512, 64, seed=17)


def train_cls(objects_split, sigma, lam, epochs=4):
    model = build_classifier("objects", width=4, seed=0)
    trainer = CLSTrainer(model, lam=lam, sigma=sigma, optimizer="sgd",
                         lr=0.05, epochs=epochs, batch_size=64)
    return trainer.fit(objects_split.train)


class TestConvergenceContrast:
    # At test scale (512 images) the contrast is a ~1.5% drop for the
    # strong setting vs ~14% for the weak one, so the threshold is 10%;
    # the benchmark harness reproduces the full-size contrast at the
    # FAST preset with the default 20% threshold.
    def test_strong_setting_stalls(self, objects_split):
        history = train_cls(objects_split, sigma=1.0, lam=0.4)
        curve = ConvergenceCurve(1.0, 0.4, history.losses)
        assert not curve.converged(drop_fraction=0.1)

    def test_weak_setting_converges(self, objects_split):
        history = train_cls(objects_split, sigma=0.1, lam=0.01, epochs=10)
        curve = ConvergenceCurve(0.1, 0.01, history.losses)
        assert curve.converged(drop_fraction=0.1)

    def test_stalled_loss_is_near_chance_level(self, objects_split):
        """A stalled 10-class CE hovers near log(10) ~ 2.30 — the 'random
        guessing' the paper reports for CLP/CLS on CIFAR10."""
        history = train_cls(objects_split, sigma=1.0, lam=0.4)
        ce_part = history.losses[-1]
        assert ce_part > 1.8


class TestConvergenceCurveHelper:
    def test_nan_counts_as_divergence(self):
        curve = ConvergenceCurve(1.0, 0.4, [2.3, float("nan"), 2.3])
        assert not curve.converged()

    def test_flat_curve_not_converged(self):
        assert not ConvergenceCurve(1.0, 0.4, [2.3, 2.29, 2.28]).converged()

    def test_dropping_curve_converged(self):
        assert ConvergenceCurve(0.1, 0.01, [2.3, 1.5, 0.8]).converged()

    def test_settings_match_paper(self):
        assert set(CLS_SETTINGS) == {(1.0, 0.4), (1.0, 0.01),
                                     (0.1, 0.4), (0.1, 0.01)}
