"""End-to-end micro pipeline: preprocess -> defend -> attack -> measure."""

import numpy as np
import pytest

from repro.attacks import FGSM, PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer, ZKGanDefTrainer
from repro.eval import EvaluationFramework
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 256, 64, seed=21)


class TestVanillaPipeline:
    def test_full_pipeline(self, split):
        framework = EvaluationFramework(
            split, {"fgsm": FGSM(eps=0.5),
                    "pgd": PGD(eps=0.5, step=0.15, iterations=4, seed=0)},
            eval_size=32)
        model = build_classifier("digits", width=4, seed=0)
        result = framework.evaluate(VanillaTrainer(model, epochs=4,
                                                   batch_size=32))
        # Paper shape: vanilla is accurate on clean data and collapses
        # under both attacks, iterative at least as strong as single step.
        assert result.accuracy["original"] > 0.8
        assert result.accuracy["fgsm"] < result.accuracy["original"]
        assert result.accuracy["pgd"] <= result.accuracy["fgsm"] + 0.1


class TestZeroKnowledgePipeline:
    def test_zk_gandef_end_to_end(self, split):
        framework = EvaluationFramework(split, {"fgsm": FGSM(eps=0.5)},
                                        eval_size=32)
        model = build_classifier("digits", width=4, seed=0)
        trainer = ZKGanDefTrainer(model, gamma=1.0, epochs=6, batch_size=32,
                                  warmup_epochs=2)
        result = framework.evaluate(trainer)
        assert result.accuracy["original"] > 0.7
        assert "disc_loss" in trainer.history.extra

    def test_zk_beats_vanilla_under_attack(self, split):
        attack = FGSM(eps=0.5)

        vanilla = build_classifier("digits", width=4, seed=3)
        VanillaTrainer(vanilla, epochs=6, batch_size=32).fit(split.train)
        zk = build_classifier("digits", width=4, seed=3)
        ZKGanDefTrainer(zk, gamma=1.0, epochs=6, batch_size=32,
                        warmup_epochs=2).fit(split.train)

        x, y = split.test.images[:48], split.test.labels[:48]
        acc_vanilla = measure_accuracy(vanilla, attack(vanilla, x, y), y)
        acc_zk = measure_accuracy(zk, attack(zk, x, y), y)
        assert acc_zk >= acc_vanilla


class TestDeterminism:
    def test_whole_pipeline_reproducible(self, split):
        def run():
            model = build_classifier("digits", width=2, seed=9)
            trainer = VanillaTrainer(model, epochs=2, batch_size=32, seed=9)
            trainer.fit(split.train)
            x, y = split.test.images[:16], split.test.labels[:16]
            adv = PGD(eps=0.4, step=0.1, iterations=2, seed=9)(model, x, y)
            return measure_accuracy(model, adv, y), adv.sum()

        assert run() == run()
