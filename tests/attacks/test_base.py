"""Attack plumbing: projections, gradients, mode handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.attacks.base import Attack, input_gradient, project_linf
from tests.conftest import TinyNet


class TestProjectLinf:
    def test_inside_untouched(self):
        orig = np.zeros((2, 2), dtype=np.float32)
        adv = np.full((2, 2), 0.05, dtype=np.float32)
        np.testing.assert_array_equal(project_linf(adv, orig, 0.1), adv)

    def test_clips_to_ball(self):
        orig = np.zeros(3, dtype=np.float32)
        adv = np.array([0.5, -0.5, 0.05], dtype=np.float32)
        out = project_linf(adv, orig, 0.1)
        np.testing.assert_allclose(out, [0.1, -0.1, 0.05])

    def test_clips_to_image_box(self):
        orig = np.array([0.95], dtype=np.float32)
        adv = np.array([1.5], dtype=np.float32)
        out = project_linf(adv, orig, 1.0)
        assert out[0] == pytest.approx(1.0)

    @given(
        arrays(np.float32, (6,),
               elements=st.floats(-1, 1, allow_nan=False, width=32)),
        arrays(np.float32, (6,),
               elements=st.floats(-3, 3, allow_nan=False, width=32)),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_projection_properties(self, orig, adv, eps):
        out = project_linf(adv, orig, eps)
        assert np.all(np.abs(out - orig) <= eps + 1e-6)
        assert np.all(out >= -1.0 - 1e-6)
        assert np.all(out <= 1.0 + 1e-6)


class TestInputGradient:
    def test_shape_matches_input(self, tiny_net):
        x = np.random.randn(3, 1, 8, 8).astype(np.float32)
        g = input_gradient(tiny_net, x, np.array([0, 1, 2]))
        assert g.shape == x.shape

    def test_nonzero_for_untrained_model(self, tiny_net):
        x = np.random.randn(2, 1, 8, 8).astype(np.float32)
        g = input_gradient(tiny_net, x, np.array([0, 1]))
        assert np.any(g != 0)


class _RecordingAttack(Attack):
    """Captures the model's training flag as seen inside _generate."""

    def _generate(self, model, images, labels):
        self.seen_training = model.training
        return images


class TestAttackBase:
    def test_runs_model_in_eval_mode(self, tiny_net):
        tiny_net.train()
        attack = _RecordingAttack(eps=0.1)
        x = np.zeros((1, 1, 8, 8), dtype=np.float32)
        attack(tiny_net, x, np.array([0]))
        assert attack.seen_training is False
        assert tiny_net.training is True  # restored

    def test_eval_model_stays_eval(self, tiny_net):
        tiny_net.eval()
        attack = _RecordingAttack(eps=0.1)
        attack(tiny_net, np.zeros((1, 1, 8, 8), dtype=np.float32),
               np.array([0]))
        assert tiny_net.training is False

    def test_negative_eps_rejected(self, tiny_net):
        with pytest.raises(ValueError):
            _RecordingAttack(eps=-0.1)(tiny_net,
                                       np.zeros((1, 1, 8, 8), np.float32),
                                       np.array([0]))

    def test_output_always_projected(self, tiny_net):
        class Wild(Attack):
            def _generate(self, model, images, labels):
                return images + 100.0

        out = Wild(eps=0.3)(tiny_net, np.zeros((1, 1, 8, 8), np.float32),
                            np.array([0]))
        assert np.all(out <= 0.3 + 1e-6)
