"""Contract invariants every ``Attack.generate`` implementation must keep.

These pin the base-class guarantees the evaluation engine builds on:
``eps=0`` degenerates to the (box-regulated) identity, outputs always live
in the l-inf ball intersected with the image box, and the victim's
train/eval mode survives even a crashing ``_generate``.

The whole module runs once per registered array backend (the autouse
fixture below): the invariants are properties of the attack *contract*, so
they must hold identically on the reference backend, the fast CPU backend,
and cupy when installed.
"""

import numpy as np
import pytest

import repro.backend as repro_backend
from repro.attacks import BIM, FGSM, MIM, PGD, Attack, CarliniWagner, DeepFool
from repro.data.preprocessing import BOX_HIGH, BOX_LOW


@pytest.fixture(params=list(repro_backend.available_backends()),
                autouse=True)
def each_backend(request):
    """Re-run every invariant under each registered backend."""
    with repro_backend.use(request.param):
        yield request.param


def _all_attacks(eps):
    return [
        FGSM(eps=eps),
        BIM(eps=eps, step=0.1, iterations=3),
        PGD(eps=eps, step=0.1, iterations=3, seed=0),
        MIM(eps=eps, step=0.1, iterations=3),
        CarliniWagner(eps=eps, iterations=4),
        DeepFool(eps=eps, iterations=3),
    ]


def _ids(attacks):
    return [a.name for a in attacks]


@pytest.mark.parametrize("attack", _all_attacks(0.0), ids=_ids(_all_attacks(0.0)))
class TestZeroEps:
    def test_returns_inputs_within_box(self, tiny_net, attack):
        rng = np.random.default_rng(5)
        x = rng.uniform(-0.9, 0.9, size=(4, 1, 8, 8)).astype(np.float32)
        y = np.array([0, 1, 2, 3])
        adv = attack(tiny_net, x, y)
        np.testing.assert_allclose(adv, x, atol=1e-7)

    def test_out_of_box_inputs_only_regulated(self, tiny_net, attack):
        """eps=0 on inputs outside the image box returns exactly their
        projection onto it — the regulation function F, nothing else."""
        rng = np.random.default_rng(6)
        x = rng.uniform(-2.0, 2.0, size=(2, 1, 8, 8)).astype(np.float32)
        y = np.array([0, 1])
        adv = attack(tiny_net, x, y)
        np.testing.assert_allclose(adv, np.clip(x, BOX_LOW, BOX_HIGH),
                                   atol=1e-7)


@pytest.mark.parametrize("early_stop", [False, True],
                         ids=["naive", "engine"])
@pytest.mark.parametrize("attack", _all_attacks(0.25),
                         ids=_ids(_all_attacks(0.25)))
class TestBallAndBox:
    def test_output_inside_ball_and_box(self, tiny_net, attack, early_stop):
        import dataclasses
        attack = dataclasses.replace(attack, early_stop=early_stop) \
            if attack.name != "deepfool" else attack
        rng = np.random.default_rng(9)
        x = rng.uniform(-1.0, 1.0, size=(5, 1, 8, 8)).astype(np.float32)
        y = np.array([0, 1, 2, 3, 4])
        adv = attack(tiny_net, x, y)
        assert np.abs(adv - x).max() <= attack.eps + 1e-6
        assert adv.min() >= BOX_LOW - 1e-6
        assert adv.max() <= BOX_HIGH + 1e-6
        assert adv.dtype == np.float32


class _ExplodingAttack(Attack):
    def _generate(self, model, images, labels):
        raise RuntimeError("boom")


class TestModeRestoredOnFailure:
    def test_training_mode_restored_when_generate_raises(self, tiny_net):
        tiny_net.train()
        with pytest.raises(RuntimeError, match="boom"):
            _ExplodingAttack(eps=0.1)(tiny_net,
                                      np.zeros((1, 1, 8, 8), np.float32),
                                      np.array([0]))
        assert tiny_net.training is True

    def test_eval_mode_preserved_when_generate_raises(self, tiny_net):
        tiny_net.eval()
        with pytest.raises(RuntimeError, match="boom"):
            _ExplodingAttack(eps=0.1)(tiny_net,
                                      np.zeros((1, 1, 8, 8), np.float32),
                                      np.array([0]))
        assert tiny_net.training is False

    def test_mode_restored_when_real_attack_rejects_config(self, tiny_net):
        tiny_net.train()
        with pytest.raises(ValueError):
            BIM(eps=0.1, iterations=0)(tiny_net,
                                       np.zeros((1, 1, 8, 8), np.float32),
                                       np.array([0]))
        assert tiny_net.training is True
