"""FGSM / BIM / PGD: budgets, monotonicity, effectiveness."""

import numpy as np
import pytest

from repro import nn
from repro.attacks import BIM, FGSM, PGD
from repro.defenses import VanillaTrainer
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def trained_setup():
    """A vanilla classifier trained well enough to attack meaningfully."""
    from repro.data import load_split
    split = load_split("digits", 256, 64, seed=11)
    model = build_classifier("digits", width=4, seed=1)
    VanillaTrainer(model, epochs=4, batch_size=32).fit(split.train)
    x, y = split.test.images[:48], split.test.labels[:48]
    assert measure_accuracy(model, x, y) > 0.8
    return model, x, y


ATTACKS = [
    FGSM(eps=0.4),
    BIM(eps=0.4, step=0.1, iterations=4),
    PGD(eps=0.4, step=0.1, iterations=4, seed=0),
]


@pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.name)
class TestBudgets:
    def test_linf_bound(self, trained_setup, attack):
        model, x, y = trained_setup
        adv = attack(model, x, y)
        assert np.abs(adv - x).max() <= attack.eps + 1e-5

    def test_image_box(self, trained_setup, attack):
        model, x, y = trained_setup
        adv = attack(model, x, y)
        assert adv.min() >= -1.0 and adv.max() <= 1.0

    def test_shape_and_dtype(self, trained_setup, attack):
        model, x, y = trained_setup
        adv = attack(model, x, y)
        assert adv.shape == x.shape
        assert adv.dtype == np.float32

    def test_reduces_accuracy(self, trained_setup, attack):
        model, x, y = trained_setup
        clean = measure_accuracy(model, x, y)
        attacked = measure_accuracy(model, attack(model, x, y), y)
        assert attacked < clean


class TestRelativeStrength:
    def test_iterative_beats_single_step(self, trained_setup):
        """BIM approximates the landscape better than FGSM (Sec. II-A) —
        accuracy under BIM must not exceed accuracy under FGSM by much."""
        model, x, y = trained_setup
        acc_fgsm = measure_accuracy(model, FGSM(eps=0.4)(model, x, y), y)
        acc_bim = measure_accuracy(
            model, BIM(eps=0.4, step=0.1, iterations=6)(model, x, y), y)
        assert acc_bim <= acc_fgsm + 0.05

    def test_zero_eps_is_noop_fgsm(self, trained_setup):
        model, x, y = trained_setup
        np.testing.assert_allclose(FGSM(eps=0.0)(model, x, y), x, atol=1e-6)

    def test_pgd_restarts_not_weaker(self, trained_setup):
        model, x, y = trained_setup
        one = PGD(eps=0.4, step=0.1, iterations=3, restarts=1, seed=0)
        three = PGD(eps=0.4, step=0.1, iterations=3, restarts=3, seed=0)
        acc_one = measure_accuracy(model, one(model, x, y), y)
        acc_three = measure_accuracy(model, three(model, x, y), y)
        assert acc_three <= acc_one + 0.05


class TestValidation:
    def test_bim_requires_positive_iterations(self, trained_setup):
        model, x, y = trained_setup
        with pytest.raises(ValueError):
            BIM(eps=0.1, iterations=0)(model, x, y)

    def test_pgd_requires_positive_restarts(self, trained_setup):
        model, x, y = trained_setup
        with pytest.raises(ValueError):
            PGD(eps=0.1, restarts=0)(model, x, y)

    def test_pgd_deterministic_given_seed(self, trained_setup):
        model, x, y = trained_setup
        a = PGD(eps=0.3, step=0.1, iterations=2, seed=5)(model, x, y)
        b = PGD(eps=0.3, step=0.1, iterations=2, seed=5)(model, x, y)
        np.testing.assert_array_equal(a, b)
