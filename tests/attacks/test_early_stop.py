"""Engine equivalence: early stopping must never change what is measured.

The contract (see ``Attack.early_stop``):

* examples the victim still classifies correctly follow the *exact*
  trajectory of the naive full-iteration path (same steps, same order);
* examples that are already misclassified — before the attack starts or at
  any iterate — freeze where fooling was detected instead of being pushed
  further, so the fooling outcome (and hence every reported accuracy) is
  identical;
* the eps-ball / image-box invariants hold on both paths.
"""

import dataclasses

import numpy as np
import pytest

import repro.backend as backend
from repro.attacks import BIM, MIM, PGD, CarliniWagner, DeepFool
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.eval.metrics import predict_labels
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def trained_setup():
    """A classifier good enough that the test batch has both easy kills and
    borderline survivors under a small budget."""
    split = load_split("digits", 256, 64, seed=11)
    model = build_classifier("digits", width=4, seed=1)
    VanillaTrainer(model, epochs=4, batch_size=32).fit(split.train)
    x, y = split.test.images[:48], split.test.labels[:48]
    assert measure_accuracy(model, x, y) > 0.8
    return model, x, y


# Small eps/step so a meaningful fraction of examples survives all
# iterations (borderline trajectories), exercising both mask branches.
ITERATIVE_ATTACKS = [
    BIM(eps=0.15, step=0.05, iterations=6),
    PGD(eps=0.15, step=0.05, iterations=6, seed=3),
    MIM(eps=0.15, step=0.05, iterations=6),
    CarliniWagner(eps=0.15, iterations=12),
    DeepFool(eps=0.15, iterations=6),
]

IDS = [a.name for a in ITERATIVE_ATTACKS]


def _both_paths(attack, model, x, y):
    naive = dataclasses.replace(attack, early_stop=False)
    engine = dataclasses.replace(attack, early_stop=True)
    return naive(model, x, y), engine(model, x, y)


@pytest.mark.slow
@pytest.mark.parametrize("attack", ITERATIVE_ATTACKS, ids=IDS)
class TestEquivalence:
    def test_accuracy_identical(self, trained_setup, attack):
        model, x, y = trained_setup
        adv_naive, adv_engine = _both_paths(attack, model, x, y)
        assert measure_accuracy(model, adv_naive, y) == \
            measure_accuracy(model, adv_engine, y)

    def test_fooling_outcome_identical_per_example(self, trained_setup,
                                                   attack):
        model, x, y = trained_setup
        adv_naive, adv_engine = _both_paths(attack, model, x, y)
        fooled_naive = predict_labels(model, adv_naive) != y
        fooled_engine = predict_labels(model, adv_engine) != y
        np.testing.assert_array_equal(fooled_naive, fooled_engine)

    def test_survivors_follow_naive_trajectory(self, trained_setup, attack):
        """Examples never fooled stay in the active set for every step, so
        the engine output must match the naive output numerically."""
        model, x, y = trained_setup
        adv_naive, adv_engine = _both_paths(attack, model, x, y)
        survivors = predict_labels(model, adv_naive) == y
        if not survivors.any():
            pytest.skip("no example survived the attack")
        np.testing.assert_allclose(adv_engine[survivors],
                                   adv_naive[survivors], atol=1e-5)

    def test_budget_invariants_on_engine_path(self, trained_setup, attack):
        model, x, y = trained_setup
        engine = dataclasses.replace(attack, early_stop=True)
        adv = engine(model, x, y)
        assert np.abs(adv - x).max() <= attack.eps + 1e-5
        assert adv.min() >= -1.0 and adv.max() <= 1.0
        assert adv.shape == x.shape and adv.dtype == np.float32


@pytest.mark.slow
class TestAlreadyMisclassified:
    """A batch whose labels are deliberately wrong everywhere: every example
    is 'fooled' before the first gradient step."""

    def _wrong_labels(self, model, x):
        preds = predict_labels(model, x)
        return (preds + 1) % 10

    def test_bim_and_mim_freeze_at_input(self, trained_setup):
        model, x, _ = trained_setup
        wrong = self._wrong_labels(model, x)
        for attack in [BIM(eps=0.3, step=0.1, iterations=5, early_stop=True),
                       MIM(eps=0.3, step=0.1, iterations=5, early_stop=True)]:
            adv = attack(model, x, wrong)
            # Detection happens on the first forward pass, before any
            # update: the output is the (box-projected) input itself.
            np.testing.assert_allclose(adv, np.clip(x, -1.0, 1.0), atol=1e-6)

    def test_pgd_freezes_at_random_start(self, trained_setup):
        model, x, _ = trained_setup
        wrong = self._wrong_labels(model, x)
        attack = PGD(eps=0.05, step=0.02, iterations=5, seed=7,
                     early_stop=True)
        adv = attack(model, x, wrong)
        # Examples fooled at the random start never take a gradient step,
        # so the output stays inside the initialization ball.
        assert np.abs(adv - x).max() <= attack.eps + 1e-6

    def test_accuracy_still_matches_naive(self, trained_setup):
        model, x, _ = trained_setup
        wrong = self._wrong_labels(model, x)
        for attack in ITERATIVE_ATTACKS:
            adv_naive, adv_engine = _both_paths(attack, model, x, wrong)
            assert measure_accuracy(model, adv_naive, wrong) == \
                measure_accuracy(model, adv_engine, wrong), attack.name


class TestPGDRestartSemantics:
    """With early stopping and several restarts, a recorded fooling is
    permanent: later restarts skip the example and the selection pass can
    never trade a fooling iterate for a higher-loss correct one."""

    def test_more_restarts_never_unfool(self, trained_setup):
        model, x, y = trained_setup
        common = dict(eps=0.25, step=0.08, iterations=4, seed=5,
                      early_stop=True)
        one = PGD(restarts=1, **common)(model, x, y)
        three = PGD(restarts=3, **common)(model, x, y)
        fooled_one = predict_labels(model, one) != y
        fooled_three = predict_labels(model, three) != y
        # Restart 1 draws the same random start in both runs, so everything
        # it fools must stay fooled when more restarts are added.
        assert np.all(fooled_three[fooled_one])
        assert measure_accuracy(model, three, y) <= \
            measure_accuracy(model, one, y)

    def test_restarts_equal_naive_budget_invariants(self, trained_setup):
        model, x, y = trained_setup
        attack = PGD(eps=0.25, step=0.08, iterations=4, restarts=3, seed=5,
                     early_stop=True)
        adv = attack(model, x, y)
        assert np.abs(adv - x).max() <= attack.eps + 1e-5
        assert adv.min() >= -1.0 and adv.max() <= 1.0


class TestEarlyStopIsFaster:
    def test_fewer_model_evaluations(self, trained_setup):
        """On a collapsing victim the engine must touch far fewer examples.

        Counted via a forward hook rather than wall time so the test is
        deterministic on loaded CI machines.  Pinned to the eager fast
        backend: the compiled backend's plan replays never call
        ``Module.forward``, so forward-hook counting only measures work
        on an eager path (the early-stop contract itself is
        backend-independent — the equality tests above run everywhere).
        """
        model, x, y = trained_setup
        counted = {"examples": 0}
        original_forward = type(model).forward

        def counting_forward(self, t):
            counted["examples"] += t.shape[0]
            return original_forward(self, t)

        type(model).forward = counting_forward
        try:
            with backend.use("fast"):
                attack = BIM(eps=0.6, step=0.2, iterations=8)
                naive = dataclasses.replace(attack, early_stop=False)
                engine = dataclasses.replace(attack, early_stop=True)
                naive(model, x, y)
                naive_examples = counted["examples"]
                counted["examples"] = 0
                engine(model, x, y)
                engine_examples = counted["examples"]
        finally:
            type(model).forward = original_forward
        assert engine_examples < naive_examples / 2
