"""DeepFool and Carlini&Wagner (the Table IV generalizability attacks)."""

import numpy as np
import pytest

from repro.attacks import CarliniWagner, DeepFool
from repro.defenses import VanillaTrainer
from repro.eval import predict_labels
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def trained_setup():
    from repro.data import load_split
    split = load_split("digits", 256, 64, seed=13)
    model = build_classifier("digits", width=4, seed=2)
    VanillaTrainer(model, epochs=4, batch_size=32).fit(split.train)
    x, y = split.test.images[:32], split.test.labels[:32]
    assert measure_accuracy(model, x, y) > 0.8
    return model, x, y


class TestDeepFool:
    def test_budget_and_box(self, trained_setup):
        model, x, y = trained_setup
        adv = DeepFool(eps=0.4, iterations=4)(model, x, y)
        assert np.abs(adv - x).max() <= 0.4 + 1e-5
        assert adv.min() >= -1.0 and adv.max() <= 1.0

    def test_reduces_accuracy(self, trained_setup):
        model, x, y = trained_setup
        adv = DeepFool(eps=0.4, iterations=6)(model, x, y)
        assert measure_accuracy(model, adv, y) < measure_accuracy(model, x, y)

    def test_skips_already_misclassified(self, trained_setup):
        model, x, y = trained_setup
        wrong = (predict_labels(model, x) + 1) % 10  # all "misclassified"
        adv = DeepFool(eps=0.4, iterations=3)(model, x, wrong)
        np.testing.assert_allclose(adv, x, atol=1e-6)

    def test_perturbation_smaller_than_full_budget(self, trained_setup):
        """DeepFool searches for *minimal* perturbations — the mean used
        budget must be well below the FGSM-style full-eps jump."""
        model, x, y = trained_setup
        adv = DeepFool(eps=0.4, iterations=6)(model, x, y)
        fooled = predict_labels(model, adv) != y
        if fooled.any():
            mean_pert = np.abs(adv[fooled] - x[fooled]).mean()
            assert mean_pert < 0.4 * 0.8


class TestCarliniWagner:
    def test_budget_and_box(self, trained_setup):
        model, x, y = trained_setup
        adv = CarliniWagner(eps=0.4, iterations=8)(model, x, y)
        assert np.abs(adv - x).max() <= 0.4 + 1e-5
        assert adv.min() >= -1.0 and adv.max() <= 1.0

    def test_reduces_accuracy(self, trained_setup):
        model, x, y = trained_setup
        adv = CarliniWagner(eps=0.4, iterations=15, c=5.0)(model, x, y)
        assert measure_accuracy(model, adv, y) < measure_accuracy(model, x, y)

    def test_unsuccessful_images_left_close_to_original(self, trained_setup):
        """Images CW never fooled keep the original pixels (best-so-far
        tracking falls back to the input)."""
        model, x, y = trained_setup
        adv = CarliniWagner(eps=0.4, iterations=2, c=1e-6)(model, x, y)
        still_correct = predict_labels(model, adv) == y
        if still_correct.any():
            diff = np.abs(adv[still_correct] - x[still_correct]).max()
            assert diff <= 0.4 + 1e-5
