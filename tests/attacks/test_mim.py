"""MIM extension attack."""

import numpy as np
import pytest

from repro.attacks import MIM
from repro.defenses import VanillaTrainer
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def trained_setup():
    from repro.data import load_split
    split = load_split("digits", 256, 64, seed=19)
    model = build_classifier("digits", width=4, seed=4)
    VanillaTrainer(model, epochs=4, batch_size=32).fit(split.train)
    return model, split.test.images[:32], split.test.labels[:32]


class TestMIM:
    def test_budget_and_box(self, trained_setup):
        model, x, y = trained_setup
        adv = MIM(eps=0.4, step=0.1, iterations=4)(model, x, y)
        assert np.abs(adv - x).max() <= 0.4 + 1e-5
        assert adv.min() >= -1.0 and adv.max() <= 1.0

    def test_reduces_accuracy(self, trained_setup):
        model, x, y = trained_setup
        adv = MIM(eps=0.4, step=0.1, iterations=6)(model, x, y)
        assert measure_accuracy(model, adv, y) < measure_accuracy(model, x, y)

    def test_zero_decay_reduces_to_bim_like(self, trained_setup):
        """With decay=0 the momentum buffer holds only the current
        (normalized) gradient, so steps follow the instantaneous sign."""
        model, x, y = trained_setup
        adv = MIM(eps=0.4, step=0.1, iterations=3, decay=0.0)(model, x, y)
        assert np.abs(adv - x).max() <= 0.4 + 1e-5

    def test_invalid_iterations(self, trained_setup):
        model, x, y = trained_setup
        with pytest.raises(ValueError):
            MIM(eps=0.4, iterations=0)(model, x, y)
