"""Model zoo: architectures, shapes, factory policy."""

import numpy as np
import pytest

from repro import nn
from repro.models import AllCNN, LeNet, build_classifier, classifier_family
from repro.utils.rng import derive_rng


class TestLeNet:
    def test_output_shape(self):
        model = LeNet(width=4, rng=derive_rng(0, "m"))
        out = model(np.zeros((2, 1, 28, 28), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_custom_image_size(self):
        model = LeNet(width=2, image_size=8, dense_units=16,
                      rng=derive_rng(0, "m"))
        out = model(np.zeros((1, 1, 8, 8), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_width_scales_parameters(self):
        small = LeNet(width=4, rng=derive_rng(0, "m")).num_parameters()
        large = LeNet(width=8, rng=derive_rng(0, "m")).num_parameters()
        assert large > small


class TestAllCNN:
    def test_output_shape(self):
        model = AllCNN(width=4, rng=derive_rng(0, "m"))
        out = model(np.zeros((2, 3, 32, 32), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_input_dropout_present_by_default(self):
        model = AllCNN(width=2, rng=derive_rng(0, "m"))
        assert model.input_dropout is not None
        assert model.input_dropout.rate == pytest.approx(0.2)

    def test_input_dropout_disabled(self):
        model = AllCNN(width=2, input_dropout=0.0, rng=derive_rng(0, "m"))
        assert model.input_dropout is None

    def test_all_convolutional(self):
        model = AllCNN(width=2, rng=derive_rng(0, "m"))
        kinds = {type(m).__name__ for m in model.modules()}
        assert "Dense" not in kinds
        assert "MaxPool2D" not in kinds

    def test_stochastic_in_train_deterministic_in_eval(self):
        model = AllCNN(width=2, rng=derive_rng(0, "m"))
        x = np.random.randn(2, 3, 32, 32).astype(np.float32)
        model.train()
        a = model(x).data
        b = model(x).data
        assert not np.array_equal(a, b)
        model.eval()
        c = model(x).data
        d = model(x).data
        np.testing.assert_array_equal(c, d)


class TestFactory:
    def test_family_policy_matches_paper(self):
        assert classifier_family("digits") == "lenet"
        assert classifier_family("fashion") == "lenet"
        assert classifier_family("objects") == "allcnn"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            classifier_family("svhn")

    def test_build_returns_correct_types(self):
        assert isinstance(build_classifier("digits", width=2), LeNet)
        assert isinstance(build_classifier("objects", width=2), AllCNN)

    def test_build_deterministic(self):
        a = build_classifier("digits", width=2, seed=4)
        b = build_classifier("digits", width=2, seed=4)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_input_dropout_override(self):
        model = build_classifier("objects", width=2, input_dropout=0.0)
        assert model.input_dropout is None
