"""Public-API integrity: every __all__ entry resolves and is documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.nn",
    "repro.nn.tensor",
    "repro.nn.functional",
    "repro.nn.conv",
    "repro.nn.modules",
    "repro.nn.losses",
    "repro.nn.optim",
    "repro.nn.init",
    "repro.nn.gradcheck",
    "repro.nn.serialization",
    "repro.data",
    "repro.data.synthetic",
    "repro.data.datasets",
    "repro.data.preprocessing",
    "repro.data.batching",
    "repro.attacks",
    "repro.defenses",
    "repro.models",
    "repro.eval",
    "repro.eval.transfer",
    "repro.experiments",
    "repro.serve",
    "repro.serve.http",
    "repro.serve.cache",
    "repro.serve.loadgen",
    "repro.serve.http_run",
    "repro.cli",
    "repro.utils",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", ["repro.attacks", "repro.defenses",
                                  "repro.eval", "repro.experiments"])
def test_public_callables_are_documented(name):
    module = importlib.import_module(name)
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} is missing a docstring"
