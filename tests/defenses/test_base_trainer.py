"""Trainer base: epoch loop mechanics, history, optimizer wiring."""

import numpy as np
import pytest

from repro import nn
from repro.defenses import VanillaTrainer
from repro.defenses.base import TrainingHistory
from tests.conftest import TinyNet, make_blobs_dataset


class TestTrainingHistory:
    def test_empty(self):
        h = TrainingHistory()
        assert h.epochs == 0
        assert h.mean_epoch_seconds == 0.0

    def test_mean_epoch_seconds(self):
        h = TrainingHistory(losses=[1, 2], epoch_seconds=[2.0, 4.0])
        assert h.mean_epoch_seconds == pytest.approx(3.0)

    def test_diverged_detects_nan(self):
        assert TrainingHistory(losses=[1.0, float("nan")]).diverged()
        assert TrainingHistory(losses=[1.0, float("inf")]).diverged()
        assert not TrainingHistory(losses=[1.0, 0.5]).diverged()

    def test_record_extra(self):
        h = TrainingHistory()
        h.record_extra("disc_loss", 0.5)
        h.record_extra("disc_loss", 0.4)
        assert h.extra["disc_loss"] == [0.5, 0.4]


class TestTrainerLoop:
    def test_history_lengths_match_epochs(self, blobs):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=3,
                                 batch_size=16)
        h = trainer.fit(blobs)
        assert h.epochs == 3
        assert len(h.epoch_seconds) == 3

    def test_loss_decreases_on_separable_data(self, blobs):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=5,
                                 batch_size=16)
        h = trainer.fit(blobs)
        assert h.losses[-1] < h.losses[0]

    def test_model_left_in_eval_mode(self, blobs):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=1,
                                 batch_size=16)
        trainer.fit(blobs)
        assert trainer.model.training is False

    def test_sgd_option(self, blobs):
        trainer = VanillaTrainer(TinyNet(num_classes=4), optimizer="sgd",
                                 lr=0.05, epochs=1, batch_size=16)
        assert isinstance(trainer.optimizer, nn.SGD)
        trainer.fit(blobs)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            VanillaTrainer(TinyNet(), optimizer="rmsprop")

    def test_deterministic_given_seed(self, blobs):
        def run():
            trainer = VanillaTrainer(TinyNet(num_classes=4, seed=3),
                                     epochs=2, batch_size=16, seed=42)
            return trainer.fit(blobs).losses

        assert run() == run()
