"""GanDef minimax trainer: Algorithm 1 bookkeeping and game mechanics."""

import numpy as np
import pytest

from repro import nn
from repro.defenses import Discriminator, PGDGanDefTrainer, ZKGanDefTrainer
from repro.eval.metrics import test_accuracy as measure_accuracy
from repro.utils.rng import derive_rng
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


def make_trainer(blobs4, **kwargs):
    model = TinyNet(num_classes=4)
    model(blobs4.images[:1])  # materialize lazy head before optimizer build
    defaults = dict(num_logits=4, sigma=0.3, epochs=2, batch_size=16,
                    warmup_epochs=0, lr=0.01)
    defaults.update(kwargs)
    return ZKGanDefTrainer(model, **defaults)


class TestDiscriminator:
    def test_table2_structure(self):
        d = Discriminator(num_logits=10)
        dims = [layer.weight.shape for layer in d.net
                if isinstance(layer, nn.Dense)]
        assert dims == [(10, 32), (32, 64), (64, 32), (32, 1)]

    def test_output_is_probability_vector(self):
        d = Discriminator(num_logits=10)
        out = d(nn.Tensor(np.random.randn(5, 10).astype(np.float32)))
        assert out.shape == (5,)
        assert np.all((out.data >= 0) & (out.data <= 1))


class TestValidation:
    def test_negative_gamma(self, blobs4):
        with pytest.raises(ValueError):
            make_trainer(blobs4, gamma=-1.0)

    def test_zero_disc_steps(self, blobs4):
        with pytest.raises(ValueError):
            make_trainer(blobs4, disc_steps=0)

    def test_negative_warmup(self, blobs4):
        with pytest.raises(ValueError):
            make_trainer(blobs4, warmup_epochs=-1)


class TestMixedBatch:
    def test_even_split_and_source_bits(self, blobs4):
        trainer = make_trainer(blobs4)
        rng = derive_rng(0, "t")
        images, labels = blobs4.images[:16], blobs4.labels[:16]
        x, t, s = trainer._mixed_batch(images, labels, rng)
        assert len(x) == len(t) == len(s) == 16
        assert int(s.sum()) == 8  # half perturbed

    def test_clean_half_unmodified(self, blobs4):
        trainer = make_trainer(blobs4)
        rng = derive_rng(0, "t")
        images, labels = blobs4.images[:16], blobs4.labels[:16]
        x, _, s = trainer._mixed_batch(images, labels, rng)
        clean_rows = x[s == 0]
        # every clean row must literally be one of the originals
        for row in clean_rows:
            assert any(np.array_equal(row, img) for img in images)

    def test_perturbed_half_modified(self, blobs4):
        trainer = make_trainer(blobs4, sigma=1.0)
        rng = derive_rng(0, "t")
        images, labels = blobs4.images[:16], blobs4.labels[:16]
        x, _, s = trainer._mixed_batch(images, labels, rng)
        pert_rows = x[s == 1]
        originals = images[8:]
        assert not np.array_equal(pert_rows, originals)


class TestParameterFreezing:
    def test_discriminator_step_never_touches_classifier(self, blobs4):
        trainer = make_trainer(blobs4)
        before = [p.data.copy() for p in trainer.model.parameters()]
        x, _, s = trainer._mixed_batch(blobs4.images[:16],
                                       blobs4.labels[:16],
                                       derive_rng(0, "t"))
        trainer._discriminator_step(x, s)
        for old, p in zip(before, trainer.model.parameters()):
            np.testing.assert_array_equal(old, p.data)

    def test_classifier_step_never_touches_discriminator(self, blobs4):
        trainer = make_trainer(blobs4, gamma=1.0)
        before = [p.data.copy() for p in trainer.discriminator.parameters()]
        x, t, s = trainer._mixed_batch(blobs4.images[:16],
                                       blobs4.labels[:16],
                                       derive_rng(0, "t"))
        trainer._classifier_step(x, t, s)
        for old, p in zip(before, trainer.discriminator.parameters()):
            np.testing.assert_array_equal(old, p.data)

    def test_classifier_step_updates_classifier(self, blobs4):
        trainer = make_trainer(blobs4, gamma=1.0)
        before = [p.data.copy() for p in trainer.model.parameters()]
        x, t, s = trainer._mixed_batch(blobs4.images[:16],
                                       blobs4.labels[:16],
                                       derive_rng(0, "t"))
        trainer._classifier_step(x, t, s)
        changed = any(not np.array_equal(old, p.data)
                      for old, p in zip(before, trainer.model.parameters()))
        assert changed

    def test_discriminator_grads_cleared_after_classifier_step(self, blobs4):
        trainer = make_trainer(blobs4, gamma=1.0)
        x, t, s = trainer._mixed_batch(blobs4.images[:16],
                                       blobs4.labels[:16],
                                       derive_rng(0, "t"))
        trainer._classifier_step(x, t, s)
        assert all(p.grad is None for p in trainer.discriminator.parameters())


class TestTraining:
    def test_learns_classification(self, blobs4):
        trainer = make_trainer(blobs4, epochs=6, gamma=0.3)
        trainer.fit(blobs4)
        assert measure_accuracy(trainer.model, blobs4.images,
                             blobs4.labels) > 0.5

    def test_history_records_disc_loss(self, blobs4):
        trainer = make_trainer(blobs4, epochs=2)
        h = trainer.fit(blobs4)
        assert "disc_loss" in h.extra
        assert len(h.extra["disc_loss"]) == 2

    def test_warmup_disables_gan_term(self, blobs4, monkeypatch):
        trainer = make_trainer(blobs4, epochs=2, warmup_epochs=1, gamma=5.0)
        gammas_seen = []
        original = trainer._classifier_step

        def spy(x, t, s, gamma=None):
            gammas_seen.append(gamma)
            return original(x, t, s, gamma)

        monkeypatch.setattr(trainer, "_classifier_step", spy)
        trainer.fit(blobs4)
        n = len(gammas_seen) // 2
        assert all(g == 0.0 for g in gammas_seen[:n])
        assert all(g == 5.0 for g in gammas_seen[n:])

    def test_gamma_zero_equals_mixture_training(self, blobs4):
        """With gamma=0 and no warmup the classifier loss must be pure CE on
        the mixed batch — the Sec. III-D degenerate case."""
        trainer = make_trainer(blobs4, gamma=0.0, epochs=3)
        h = trainer.fit(blobs4)
        assert h.losses[-1] < h.losses[0]


class TestPGDVariant:
    def test_pgd_gandef_trains(self, blobs4):
        model = TinyNet(num_classes=4)
        model(blobs4.images[:1])
        trainer = PGDGanDefTrainer(model, eps=0.2, step=0.1, iterations=2,
                                   num_logits=4, epochs=2, batch_size=16,
                                   warmup_epochs=0, lr=0.01)
        h = trainer.fit(blobs4)
        assert h.epochs == 2

    def test_perturb_uses_attack_budget(self, blobs4):
        model = TinyNet(num_classes=4)
        model(blobs4.images[:1])
        trainer = PGDGanDefTrainer(model, eps=0.15, step=0.1, iterations=2,
                                   num_logits=4, epochs=1, batch_size=16)
        adv = trainer.perturb(blobs4.images[:8], blobs4.labels[:8])
        assert np.abs(adv - blobs4.images[:8]).max() <= 0.15 + 1e-5
