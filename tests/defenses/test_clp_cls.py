"""CLP / CLS zero-knowledge baselines."""

import numpy as np
import pytest

from repro import nn
from repro.defenses import CLPTrainer, CLSTrainer
from repro.eval.metrics import test_accuracy as measure_accuracy
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


class TestCLS:
    def test_learns_under_mild_noise(self, blobs4):
        model = TinyNet(num_classes=4)
        trainer = CLSTrainer(model, lam=0.05, sigma=0.1, lr=0.01, epochs=6,
                             batch_size=16)
        trainer.fit(blobs4)
        assert measure_accuracy(model, blobs4.images, blobs4.labels) > 0.5

    def test_squeezes_logits(self, blobs4):
        """Higher lambda must yield smaller logit norms — the penalty's
        purpose per Sec. III-A."""
        def logit_norm(lam):
            model = TinyNet(num_classes=4, seed=1)
            CLSTrainer(model, lam=lam, sigma=0.1, lr=0.01, epochs=5,
                       batch_size=16).fit(blobs4)
            with nn.no_grad():
                z = model(nn.Tensor(blobs4.images)).data
            return float(np.linalg.norm(z, axis=1).mean())

        assert logit_norm(2.0) < logit_norm(0.0)

    def test_trains_only_on_perturbed_inputs(self, blobs4, monkeypatch):
        model = TinyNet(num_classes=4)
        trainer = CLSTrainer(model, sigma=1.0, epochs=1, batch_size=16)
        calls = []
        original = trainer.augment

        def spy(images):
            calls.append(len(images))
            return original(images)

        trainer.augment = spy
        trainer.fit(blobs4)
        assert sum(calls) == len(blobs4)  # every training image perturbed

    def test_non_finite_loss_skips_step(self, blobs4):
        model = TinyNet(num_classes=4)
        trainer = CLSTrainer(model, lam=0.1, sigma=0.1, epochs=1,
                             batch_size=16)
        before = [p.data.copy() for p in model.parameters()]
        # Poison the model so the loss is nan, then run one step.
        model(blobs4.images[:1])  # materialize lazy head
        before = [p.data.copy() for p in model.parameters()]
        for p in model.parameters():
            p.data[...] = np.nan
        trainer.fit(blobs4)
        assert trainer.history.diverged()


class TestCLP:
    def test_learns_under_mild_noise(self, blobs4):
        model = TinyNet(num_classes=4)
        trainer = CLPTrainer(model, lam=0.05, sigma=0.1, lr=0.01, epochs=10,
                             batch_size=16)
        trainer.fit(blobs4)
        assert measure_accuracy(model, blobs4.images, blobs4.labels) > 0.5

    def test_pairs_logits(self, blobs4):
        """Higher lambda shrinks the pairwise logit distance."""
        def pair_distance(lam):
            model = TinyNet(num_classes=4, seed=1)
            CLPTrainer(model, lam=lam, sigma=0.1, lr=0.01, epochs=5,
                       batch_size=16).fit(blobs4)
            with nn.no_grad():
                z = model(nn.Tensor(blobs4.images)).data
            half = len(z) // 2
            return float(np.linalg.norm(z[:half] - z[half:2 * half],
                                        axis=1).mean())

        assert pair_distance(2.0) < pair_distance(0.0) * 1.5

    def test_history_epochs(self, blobs4):
        model = TinyNet(num_classes=4)
        trainer = CLPTrainer(model, epochs=2, batch_size=16)
        h = trainer.fit(blobs4)
        assert h.epochs == 2

    def test_train_step_not_supported(self, blobs4):
        trainer = CLPTrainer(TinyNet(num_classes=4))
        with pytest.raises(NotImplementedError):
            trainer.train_step(blobs4.images[:4], blobs4.labels[:4])
