"""Full-knowledge adversarial trainers (FGSM-Adv, PGD-Adv)."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.defenses import AdversarialTrainer, FGSMAdvTrainer, PGDAdvTrainer
from repro.eval.metrics import test_accuracy as measure_accuracy
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


def materialized(blobs4, seed=0):
    model = TinyNet(num_classes=4, seed=seed)
    model(blobs4.images[:1])
    return model


class TestFGSMAdv:
    def test_trains_and_classifies(self, blobs4):
        model = materialized(blobs4)
        FGSMAdvTrainer(model, eps=0.2, lr=0.01, epochs=6, batch_size=16).fit(blobs4)
        assert measure_accuracy(model, blobs4.images, blobs4.labels) > 0.5

    def test_improves_fgsm_robustness_over_vanilla(self, blobs4):
        from repro.defenses import VanillaTrainer
        attack = FGSM(eps=0.3)

        vanilla = materialized(blobs4, seed=1)
        VanillaTrainer(vanilla, lr=0.01, epochs=6, batch_size=16).fit(blobs4)
        defended = materialized(blobs4, seed=1)
        FGSMAdvTrainer(defended, eps=0.3, lr=0.01, epochs=6, batch_size=16).fit(blobs4)

        acc_vanilla = measure_accuracy(
            vanilla, attack(vanilla, blobs4.images, blobs4.labels),
            blobs4.labels)
        acc_defended = measure_accuracy(
            defended, attack(defended, blobs4.images, blobs4.labels),
            blobs4.labels)
        assert acc_defended >= acc_vanilla


class TestPGDAdv:
    def test_trains(self, blobs4):
        model = materialized(blobs4)
        h = PGDAdvTrainer(model, eps=0.2, step=0.1, iterations=2, epochs=2,
                          batch_size=16).fit(blobs4)
        assert h.epochs == 2

    def test_costs_more_than_fgsm_adv(self, blobs4):
        """The Figure 5 premise: PGD-Adv's per-epoch time exceeds
        FGSM-Adv's (iterative example generation dominates)."""
        fgsm_model = materialized(blobs4, seed=2)
        fgsm_h = FGSMAdvTrainer(fgsm_model, eps=0.2, epochs=2,
                                batch_size=16).fit(blobs4)
        pgd_model = materialized(blobs4, seed=2)
        pgd_h = PGDAdvTrainer(pgd_model, eps=0.2, step=0.05, iterations=8,
                              epochs=2, batch_size=16).fit(blobs4)
        assert pgd_h.mean_epoch_seconds > fgsm_h.mean_epoch_seconds


class TestMixing:
    def test_half_batch_is_adversarial(self, blobs4):
        model = materialized(blobs4)
        calls = []

        class SpyAttack(FGSM):
            def generate(self, model, images, labels):
                calls.append(len(images))
                return super().generate(model, images, labels)

        trainer = AdversarialTrainer(model, SpyAttack(eps=0.2), epochs=1,
                                     batch_size=16)
        trainer.fit(blobs4)
        assert calls and all(c == 8 for c in calls)
