"""Shared fixtures: tiny models and datasets sized for fast unit tests."""

import numpy as np
import pytest

from repro import nn
from repro.data import Dataset, load_split
from repro.utils.rng import derive_rng


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_split():
    """64 train / 32 test digit images."""
    return load_split("digits", 64, 32, seed=7)


@pytest.fixture
def tiny_objects_split():
    return load_split("objects", 64, 32, seed=7)


class TinyNet(nn.Module):
    """Minimal conv classifier used when LeNet would be too slow."""

    def __init__(self, in_channels=1, num_classes=10, seed=0):
        super().__init__()
        r = derive_rng(seed, "tinynet")
        self.net = nn.Sequential(
            nn.Conv2D(in_channels, 4, kernel_size=3, stride=2, padding=1,
                      rng=r),
            nn.ReLU(),
            nn.Flatten(),
        )
        self.head = None
        self._num_classes = num_classes
        self._rng = r

    def forward(self, x):
        h = self.net(x)
        if self.head is None:
            self.head = nn.Dense(h.shape[1], self._num_classes, rng=self._rng)
        return self.head(h)


@pytest.fixture
def tiny_net():
    return TinyNet(seed=0)


@pytest.fixture
def tiny_rgb_net():
    return TinyNet(in_channels=3, seed=0)


def make_blobs_dataset(n=64, side=8, channels=1, num_classes=4, seed=0):
    """A separable toy dataset: class k lights up quadrant k."""
    r = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    r.shuffle(labels)
    images = r.normal(-0.8, 0.1, size=(n, channels, side, side)).astype("float32")
    half = side // 2
    quads = [(0, 0), (0, half), (half, 0), (half, half)]
    for i, k in enumerate(labels):
        y0, x0 = quads[k % 4]
        images[i, :, y0:y0 + half, x0:x0 + half] += 1.5
    images = np.clip(images, -1, 1)
    return Dataset(images, labels.astype(np.int64), name="blobs")


@pytest.fixture
def blobs():
    return make_blobs_dataset()
