"""Experiment presets: paper parameters must be encoded exactly."""

import pytest

from repro.experiments import DEFENSE_NAMES, FAST, FULL, get_config


class TestPaperBudgets:
    """Sec. IV-C attack hyper-parameters."""

    @pytest.mark.parametrize("ds", ["digits", "fashion"])
    def test_gray_dataset_budget(self, ds):
        budget = FULL.dataset(ds).budget
        assert budget.eps == 0.6
        assert budget.bim_step == 0.1
        assert budget.pgd_step == 0.02
        assert budget.pgd_iterations == 40

    def test_rgb_dataset_budget(self):
        budget = FULL.dataset("objects").budget
        assert budget.eps == 0.06
        assert budget.bim_step == 0.016
        assert budget.pgd_step == 0.016
        assert budget.pgd_iterations == 20

    def test_fast_preserves_eps(self):
        """FAST may trim iterations but never weakens the threat radius."""
        for ds in ("digits", "fashion", "objects"):
            assert FAST.dataset(ds).budget.eps == FULL.dataset(ds).budget.eps

    def test_paper_separation_sizes(self):
        assert FULL.dataset("digits").train_size == 60_000
        assert FULL.dataset("digits").test_size == 10_000
        assert FULL.dataset("objects").train_size == 50_000

    def test_paper_epochs(self):
        assert FULL.dataset("digits").epochs == 80
        assert FULL.dataset("objects").epochs == 300

    def test_sigma_is_one_everywhere(self):
        for preset in (FAST, FULL):
            for ds in preset.datasets.values():
                assert ds.sigma == 1.0

    def test_cls_lambda_is_paper_value(self):
        assert FAST.dataset("digits").cls_lambda == 0.4


class TestBuild:
    def test_main_grid_attacks(self):
        attacks = FAST.dataset("digits").budget.build(fast=True)
        assert set(attacks) == {"fgsm", "bim", "pgd"}
        for attack in attacks.values():
            assert attack.eps == 0.6

    def test_generalizability_attacks(self):
        attacks = FAST.dataset("digits").budget.build_generalizability(
            fast=True)
        assert set(attacks) == {"deepfool", "cw"}

    def test_full_build_uses_paper_iterations(self):
        attacks = FULL.dataset("digits").budget.build(fast=False)
        assert attacks["pgd"].iterations == 40
        assert attacks["pgd"].step == 0.02


class TestLookups:
    def test_get_config(self):
        assert get_config("fast") is FAST
        assert get_config("FULL") is FULL

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_config("medium")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            FAST.dataset("imagenet")

    def test_seven_defenses(self):
        assert len(DEFENSE_NAMES) == 7
        assert "zk-gandef" in DEFENSE_NAMES
