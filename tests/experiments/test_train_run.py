"""``repro train`` runner: checkpoint/resume/probe wiring end-to-end."""

import numpy as np
import pytest

from repro.experiments import TrainingSchedule, get_config, run_train
from repro.experiments.runners import build_trainer
from repro.train import read_jsonl


@pytest.fixture(scope="module")
def fresh_run(tmp_path_factory):
    """One short checkpointed digits run shared by the assertions."""
    ckdir = tmp_path_factory.mktemp("run")
    result = run_train("digits", preset="fast", defense="vanilla", seed=0,
                       epochs=2, checkpoint_dir=ckdir, probe_every=2)
    return ckdir, result


class TestRunTrain:
    def test_run_completes_and_checkpoints(self, fresh_run):
        ckdir, result = fresh_run
        assert result.completed_epochs == 2
        assert result.resumed is False
        assert (ckdir / "checkpoint.npz").exists()

    def test_metrics_log_written(self, fresh_run):
        ckdir, result = fresh_run
        epochs = read_jsonl(result.metrics_path, event="epoch")
        assert [r["epoch"] for r in epochs] == [0, 1]
        probes = read_jsonl(result.metrics_path, event="probe")
        assert len(probes) == 1
        assert set(probes[0]["robust_accuracy"]) == {"fgsm", "pgd"}

    def test_probe_results_surface(self, fresh_run):
        _, result = fresh_run
        assert len(result.probes) == 1
        assert result.probes[0]["epoch"] == 1
        assert 0.0 <= result.probes[0]["result"].clean_accuracy <= 1.0

    def test_resume_continues_not_restarts(self, fresh_run):
        ckdir, first = fresh_run
        result = run_train("digits", preset="fast", defense="vanilla",
                           seed=0, epochs=4, checkpoint_dir=ckdir,
                           resume=True, probe_every=0)
        assert result.resumed_from == 2
        assert result.completed_epochs == 4
        assert result.history.losses[:2] == first.history.losses
        epochs = read_jsonl(result.metrics_path, event="epoch")
        assert [r["epoch"] for r in epochs] == [0, 1, 2, 3]

    def test_resume_of_finished_run_is_noop(self, fresh_run):
        ckdir, _ = fresh_run
        result = run_train("digits", preset="fast", defense="vanilla",
                           seed=0, epochs=4, checkpoint_dir=ckdir,
                           resume=True, probe_every=0)
        assert result.resumed_from == 4
        assert result.completed_epochs == 4

    def test_gandef_alias_accepted(self):
        trainer = build_trainer("gandef", get_config("fast").dataset("digits"))
        assert trainer.name == "zk-gandef"

    def test_unknown_defense_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_train("digits", defense="nonesuch", epochs=1)


class TestTrainingSchedule:
    def test_fast_preset_keeps_constant_lr(self):
        cfg = get_config("fast").dataset("digits")
        assert cfg.schedule.scheduler == "none"
        assert cfg.schedule.probe_every == 0

    def test_full_preset_schedules(self):
        for name in ("digits", "fashion", "objects"):
            schedule = get_config("full").dataset(name).schedule
            assert schedule.scheduler == "warmup-cosine"
            assert schedule.probe_every > 0
            assert schedule.checkpoint_every > 1

    def test_schedule_is_frozen(self):
        with pytest.raises(Exception):
            TrainingSchedule().scheduler = "step"
