"""Trainer factory and registry."""

import pytest

from repro.defenses import (
    CLPTrainer,
    CLSTrainer,
    FGSMAdvTrainer,
    PGDAdvTrainer,
    PGDGanDefTrainer,
    VanillaTrainer,
    ZKGanDefTrainer,
)
from repro.experiments import (
    DEFENSE_NAMES,
    REGISTRY,
    FAST,
    build_trainer,
    get_experiment,
)

EXPECTED_TYPES = {
    "vanilla": VanillaTrainer,
    "clp": CLPTrainer,
    "cls": CLSTrainer,
    "zk-gandef": ZKGanDefTrainer,
    "fgsm-adv": FGSMAdvTrainer,
    "pgd-adv": PGDAdvTrainer,
    "pgd-gandef": PGDGanDefTrainer,
}


@pytest.mark.parametrize("defense", DEFENSE_NAMES)
def test_factory_builds_every_defense(defense):
    cfg = FAST.dataset("digits")
    trainer = build_trainer(defense, cfg, seed=0)
    assert isinstance(trainer, EXPECTED_TYPES[defense])
    assert trainer.epochs == cfg.epochs
    assert trainer.batch_size == cfg.batch_size


def test_factory_rejects_unknown():
    with pytest.raises(KeyError):
        build_trainer("magnet", FAST.dataset("digits"))


def test_adversarial_trainers_use_dataset_budget():
    cfg = FAST.dataset("objects")
    trainer = build_trainer("pgd-adv", cfg, seed=0)
    assert trainer.attack.eps == cfg.budget.eps


def test_gandef_trainer_uses_config_gamma():
    cfg = FAST.dataset("digits")
    trainer = build_trainer("zk-gandef", cfg, seed=0)
    assert trainer.gamma == cfg.gamma
    assert trainer.disc_steps == cfg.disc_steps
    assert trainer.warmup_epochs == cfg.warmup_epochs


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert {"table3", "table4", "figure5-time",
                "figure5-convergence", "ablation-gamma"} <= set(REGISTRY)

    def test_get_experiment(self):
        exp = get_experiment("table3")
        assert "Table III" in exp.artifact
        assert callable(exp.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table9")
