"""The HTTP tier: policy units (socket-free) and real-socket round trips.

The frontend's auth / throttle / admission decisions are plain functions
tested without a socket; the round-trip half drives a live
``HttpServer`` over ``127.0.0.1`` and pins the headline contract — rows
served over HTTP are bitwise identical to the direct in-process
``Server`` serving the same stream (at ``max_batch=1``, where batch
composition is identical by construction).
"""

import json

import numpy as np
import pytest

from repro.data import load_split
from repro.models import build_classifier
from repro.serve import (
    AdmissionController,
    ApiKeyAuth,
    HttpClient,
    HttpFrontend,
    HttpServer,
    ModelRegistry,
    RateLimiter,
    Server,
    TokenBucket,
    parse_api_keys,
)


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 48, seed=7)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# --------------------------------------------------------------------- #
# policy units
# --------------------------------------------------------------------- #
def test_parse_api_keys():
    assert parse_api_keys("a:1,b:two") == {"a": "1", "b": "two"}
    assert parse_api_keys("a:key:with:colons") == {"a": "key:with:colons"}
    with pytest.raises(ValueError, match="expected client:key"):
        parse_api_keys("nokey")
    with pytest.raises(ValueError, match="expected client:key"):
        parse_api_keys(":key")
    with pytest.raises(ValueError, match="duplicate"):
        parse_api_keys("a:1,a:2")


def test_api_key_auth_identifies_and_rejects():
    auth = ApiKeyAuth({"alice": "s3cret", "bob": "hunter2"})
    assert auth.enabled
    assert auth.identify("s3cret") == "alice"
    assert auth.identify("hunter2") == "bob"
    assert auth.identify("wrong") is None
    assert auth.identify(None) is None
    assert not ApiKeyAuth().enabled
    # Bare iterables get positional identities.
    assert ApiKeyAuth(["k0", "k1"]).identify("k1") == "client-1"


def test_api_key_header_extraction():
    assert ApiKeyAuth.presented_key({"Authorization": "Bearer abc"}) == "abc"
    assert ApiKeyAuth.presented_key({"X-API-Key": "xyz"}) == "xyz"
    # Authorization wins when both are present.
    assert ApiKeyAuth.presented_key(
        {"Authorization": "Bearer a", "X-API-Key": "b"}) == "a"
    assert ApiKeyAuth.presented_key({}) is None
    assert ApiKeyAuth.presented_key({"Authorization": "Basic abc"}) is None


def test_token_bucket_exact_under_fake_clock():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    for _ in range(4):                       # starts full
        assert bucket.acquire() is None
    wait = bucket.acquire()                  # empty: 1 token at 2/s
    assert wait == pytest.approx(0.5)
    clock.t += 0.5
    assert bucket.acquire() is None          # refilled exactly one
    clock.t += 100.0
    for _ in range(4):                       # capped at burst, not 200
        assert bucket.acquire() is None
    assert bucket.acquire() is not None


def test_rate_limiter_is_per_client():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
    assert limiter.acquire("a") is None
    assert limiter.acquire("a") is not None  # a exhausted
    assert limiter.acquire("b") is None      # b has its own bucket
    assert RateLimiter(None).acquire("anyone") is None  # disabled


def test_admission_controller_backpressure():
    admission = AdmissionController(limit=10, retry_after_s=2.0)
    assert admission.admit(6) is None
    assert admission.admit(4) is None        # exactly at the limit
    assert admission.admit(1) == pytest.approx(2.0)
    admission.release(4)
    assert admission.admit(1) is None
    assert admission.inflight == 7
    # Oversized requests are admitted on an empty queue (else starved).
    empty = AdmissionController(limit=2)
    assert empty.admit(5) is None
    assert empty.admit(1) is not None
    with pytest.raises(ValueError):
        AdmissionController(limit=0)


# --------------------------------------------------------------------- #
# the frontend, socket-free
# --------------------------------------------------------------------- #
def make_frontend(split, **kwargs):
    registry = ModelRegistry()
    model = build_classifier("digits", width=4, seed=0)
    registry.add("m", model, backend="numpy")
    server = Server(registry, max_batch=8, deadline_ms=0.0, gate="none")
    kwargs.setdefault("auth", ApiKeyAuth({"alice": "s3cret"}))
    frontend = HttpFrontend(server, **kwargs)
    return frontend, server, model


def _predict_body(images, model="m"):
    return json.dumps({"model": model,
                       "inputs": np.asarray(images).tolist()}).encode()


AUTH = {"Authorization": "Bearer s3cret"}


def pump_while_waiting(server, frontend, call):
    """Run a frontend call with the pump serviced on a side thread (the
    frontend blocks on its handle; nothing else pumps here)."""
    import threading
    out = {}

    def run():
        out["reply"] = call()

    thread = threading.Thread(target=run)
    thread.start()
    while thread.is_alive():
        server.pump(force=True)
        thread.join(0.001)
    return out["reply"]


def test_frontend_predict_roundtrip_and_auth(split):
    frontend, server, _ = make_frontend(split)
    status, payload, _ = pump_while_waiting(
        server, frontend,
        lambda: frontend.handle("POST", "/v1/predict",
                                _predict_body(split.test.images[:2]), AUTH))
    assert status == 200
    assert len(payload["predictions"]) == 2
    for row in payload["predictions"]:
        assert set(row) == {"label", "logits", "score", "flagged",
                            "from_cache"}
    # Missing key -> 401 with a challenge; wrong key -> 403.
    status, payload, headers = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:1]), {})
    assert status == 401 and "WWW-Authenticate" in headers
    status, _, _ = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:1]),
        {"Authorization": "Bearer wrong"})
    assert status == 403
    summary = frontend.stats.summary()
    assert summary["rejected_unauthenticated"] == 1
    assert summary["rejected_forbidden"] == 1
    assert summary["served_examples"] == 2


def test_frontend_bad_requests(split):
    frontend, server, _ = make_frontend(split)
    cases = [
        (b"not json", 400),
        (json.dumps({"model": "m"}).encode(), 400),          # no inputs
        (json.dumps({"model": "m", "inputs": "nan"}).encode(), 400),
        (json.dumps({"model": "m", "inputs": [[1.0]]}).encode(), 400),
        (_predict_body(split.test.images[:1], model="ghost"), 404),
    ]
    for body, want in cases:
        status, _, _ = frontend.handle("POST", "/v1/predict", body, AUTH)
        assert status == want, body
    status, _, _ = frontend.handle("GET", "/nope", b"", AUTH)
    assert status == 404
    # Oversized requests are 413, not a monopolized admission window.
    frontend.max_request_examples = 2
    status, payload, _ = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:3]), AUTH)
    assert status == 413
    assert frontend.stats.summary()["bad_requests"] == len(cases) + 2


def test_frontend_single_example_and_default_model(split):
    """A bare (C, H, W) example and an omitted model name both work
    when exactly one model is registered."""
    frontend, server, _ = make_frontend(split)
    body = json.dumps(
        {"inputs": np.asarray(split.test.images[0]).tolist()}).encode()
    status, payload, _ = pump_while_waiting(
        server, frontend,
        lambda: frontend.handle("POST", "/v1/predict", body, AUTH))
    assert status == 200 and len(payload["predictions"]) == 1


def test_frontend_rate_limit_answers_429_with_retry_after(split):
    clock = FakeClock()
    frontend, server, _ = make_frontend(
        split, limiter=RateLimiter(rate=1.0, burst=2.0, clock=clock))
    body = _predict_body(split.test.images[:1])
    statuses = []
    for _ in range(3):
        reply = pump_while_waiting(
            server, frontend,
            lambda: frontend.handle("POST", "/v1/predict", body, AUTH))
        statuses.append(reply[0])
    assert statuses == [200, 200, 429]
    status, payload, headers = frontend.handle("POST", "/v1/predict",
                                               body, AUTH)
    assert status == 429
    assert float(headers["Retry-After"]) > 0
    assert frontend.stats.summary()["rejected_rate_limited"] == 2


def test_frontend_queue_limit_answers_429(split):
    frontend, server, _ = make_frontend(split, queue_limit=4)
    # Fill the admission window by hand (no pump: nothing completes).
    assert frontend.admission.admit(4) is None
    status, payload, headers = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:2]), AUTH)
    assert status == 429
    assert "over capacity" in payload["error"]
    assert float(headers["Retry-After"]) > 0
    assert frontend.stats.summary()["rejected_over_capacity"] == 1
    frontend.admission.release(4)
    reply = pump_while_waiting(
        server, frontend,
        lambda: frontend.handle("POST", "/v1/predict",
                                _predict_body(split.test.images[:2]), AUTH))
    assert reply[0] == 200
    assert frontend.admission.inflight == 0      # released after serving


def test_frontend_unhealthy_surfaces_503(split):
    frontend, server, model = make_frontend(split)
    frontend.begin_shutdown()
    status, payload, _ = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:1]), AUTH)
    assert status == 503
    status, payload, _ = frontend.handle("GET", "/v1/health", b"", {})
    assert status == 503 and payload["status"] == "draining"
    assert frontend.stats.summary()["rejected_unhealthy"] == 1


def test_frontend_pump_death_surfaces_503_and_health_dead(split):
    frontend, server, model = make_frontend(split)

    def forward(x):
        raise RuntimeError("kaboom")

    model.forward = forward
    server.submit("m", split.test.images[:1])
    with pytest.raises(RuntimeError):
        server.pump(force=True)
    status, payload, _ = frontend.handle(
        "POST", "/v1/predict", _predict_body(split.test.images[:1]), AUTH)
    assert status == 503
    status, payload, _ = frontend.handle("GET", "/v1/health", b"", {})
    assert status == 503 and payload["status"] == "dead"
    assert "kaboom" in payload["error"]


def test_frontend_models_stats_and_health(split):
    frontend, server, _ = make_frontend(split)
    status, payload, _ = frontend.handle("GET", "/v1/health", b"", {})
    assert status == 200 and payload["status"] == "ok"        # no auth
    status, payload, _ = frontend.handle("GET", "/v1/models", b"", AUTH)
    assert status == 200
    (row,) = payload["models"]
    assert row["name"] == "m" and row["backend"] == "numpy"
    assert row["gate"] == "none" and not row["has_discriminator"]
    status, payload, _ = frontend.handle("GET", "/v1/stats", b"", AUTH)
    assert status == 200
    assert payload["server"]["pending_examples"] == 0
    assert "requests_completed" in payload["server"]
    assert payload["http"]["http_requests"] >= 1


def test_frontend_refresh_reload_rolls_fingerprint(split):
    frontend, server, model = make_frontend(split)
    old = server.registry.get("m").fingerprint
    # Mutate weights in place, then ask the endpoint to re-fingerprint.
    model.parameters()[0].data += 0.5
    status, payload, _ = frontend.handle(
        "POST", "/v1/reload", json.dumps({"model": "m"}).encode(), AUTH)
    assert status == 200 and payload["action"] == "refresh"
    assert server.registry.get("m").fingerprint != old
    assert payload["old_fingerprint"] == old[:16]
    status, _, _ = frontend.handle(
        "POST", "/v1/reload", json.dumps({"model": "ghost"}).encode(), AUTH)
    assert status == 404
    status, _, _ = frontend.handle("POST", "/v1/reload", b"{}", AUTH)
    assert status == 400
    assert frontend.stats.summary()["reloads"] == 1


# --------------------------------------------------------------------- #
# real sockets
# --------------------------------------------------------------------- #
def serve_http(split, *, max_batch=8, **kwargs):
    registry = ModelRegistry()
    model = build_classifier("digits", width=4, seed=0)
    registry.add("m", model, backend="numpy")
    server = Server(registry, max_batch=max_batch, deadline_ms=1.0,
                    gate="confidence", gate_threshold=0.5)
    kwargs.setdefault("auth", ApiKeyAuth({"alice": "s3cret"}))
    frontend = HttpFrontend(server, **kwargs)
    return HttpServer(frontend, host="127.0.0.1", port=0), model


def test_http_roundtrip_over_real_socket(split):
    httpd, _ = serve_http(split)
    with httpd:
        host, port = httpd.address
        with HttpClient(host, port, api_key="s3cret") as client:
            assert client.health().payload["status"] == "ok"
            response = client.predict(split.test.images[:3], model="m")
            assert response.status == 200
            assert len(response.payload["predictions"]) == 3
            assert client.models().payload["models"][0]["name"] == "m"
            stats = client.stats()
            assert stats.payload["http"]["served_examples"] == 3
        with HttpClient(host, port) as anonymous:
            assert anonymous.predict(split.test.images[:1]).status == 401
        with HttpClient(host, port, api_key="nope") as wrong:
            assert wrong.predict(split.test.images[:1]).status == 403


def test_http_rows_equal_direct_server_rows(split):
    """The wire adds nothing: the same request stream served directly
    through Server yields bitwise-identical logits.  max_batch=1 makes
    batch composition identical on both paths by construction (forward
    rows are not bitwise-stable across *different* compositions)."""
    stream = [split.test.images[i:i + 1] for i in range(12)]

    registry = ModelRegistry()
    registry.add("direct", build_classifier("digits", width=4, seed=0),
                 backend="numpy")
    direct = Server(registry, max_batch=1, deadline_ms=0.0,
                    gate="confidence", gate_threshold=0.5)
    direct_handles = [direct.submit("direct", images) for images in stream]
    direct.drain()

    httpd, _ = serve_http(split, max_batch=1)
    with httpd:
        host, port = httpd.address
        with HttpClient(host, port, api_key="s3cret") as client:
            for images, want in zip(stream, direct_handles):
                response = client.predict(images, model="m")
                assert response.status == 200
                (row,) = response.payload["predictions"]
                np.testing.assert_array_equal(
                    np.asarray(row["logits"], dtype=np.float32)
                    .astype(np.float64),
                    want.logits[0].astype(np.float64))
                assert row["label"] == int(want.labels[0])
                assert row["score"] == pytest.approx(
                    want.scores[0], abs=0.0)
                assert row["flagged"] == bool(want.result()[0].flagged)


def test_http_server_shutdown_is_graceful(split):
    httpd, _ = serve_http(split)
    httpd.start()
    host, port = httpd.address
    with HttpClient(host, port, api_key="s3cret") as client:
        assert client.predict(split.test.images[:2], model="m").ok
    httpd.stop()
    # The socket is gone: a fresh connection fails.
    with pytest.raises(OSError):
        with HttpClient(host, port, api_key="s3cret") as client:
            client.health()


def test_predict_flagged_field_pins_gate_verdicts(split):
    """Satellite pin: every ``/v1/predict`` row carries a ``flagged``
    boolean that is exactly the gate's verdict for that example —
    all-True under an always-suspicious gate, all-False with no gate."""
    def rows_for(gate, threshold=None):
        registry = ModelRegistry()
        registry.add("m", build_classifier("digits", width=4, seed=0),
                     backend="numpy")
        server = Server(registry, max_batch=8, deadline_ms=0.0,
                        gate=gate, gate_threshold=threshold)
        frontend = HttpFrontend(server,
                                auth=ApiKeyAuth({"alice": "s3cret"}))
        status, payload, _ = pump_while_waiting(
            server, frontend,
            lambda: frontend.handle(
                "POST", "/v1/predict",
                _predict_body(split.test.images[:4]), AUTH))
        assert status == 200
        return payload["predictions"], server

    rows, _ = rows_for("none")
    assert [row["flagged"] for row in rows] == [False] * 4

    # Confidence threshold 0.0: any non-degenerate softmax is suspicious.
    rows, server = rows_for("confidence", threshold=0.0)
    assert all(isinstance(row["flagged"], bool) for row in rows)
    assert [row["flagged"] for row in rows] == [True] * 4
    assert server.stats.flagged_examples == 4
