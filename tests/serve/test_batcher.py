"""MicroBatcher semantics: flush triggers, ordering, splitting."""

import numpy as np
import pytest

from repro.serve import MicroBatcher


def tagged_images(n, start=0, side=4):
    """Examples whose pixel value encodes their global index."""
    out = np.zeros((n, 1, side, side), dtype=np.float32)
    for i in range(n):
        out[i] += float(start + i)
    return out


def tags_of(images):
    return [int(img[0, 0, 0]) for img in images]


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


def make_batcher(clock, max_batch=8, deadline_s=0.01):
    return MicroBatcher(max_batch=max_batch, deadline_s=deadline_s,
                        clock=clock)


# --------------------------------------------------------------------- #
# flush triggers
# --------------------------------------------------------------------- #
def test_no_flush_below_max_batch_before_deadline(clock):
    b = make_batcher(clock)
    b.submit(tagged_images(3))
    assert not b.ready()
    assert b.next_batch() is None
    assert b.pending_examples == 3


def test_full_batch_flush_at_max_batch(clock):
    b = make_batcher(clock, max_batch=4)
    b.submit(tagged_images(2))
    assert not b.ready()
    b.submit(tagged_images(2, start=2))
    assert b.ready()          # 4 pending == max_batch, no time elapsed
    batch = b.next_batch()
    assert batch is not None and len(batch) == 4
    assert tags_of(batch.images) == [0, 1, 2, 3]
    assert b.pending_examples == 0


def test_deadline_flush_is_ragged(clock):
    b = make_batcher(clock, max_batch=8, deadline_s=0.01)
    b.submit(tagged_images(3))
    clock.t = 0.005
    assert not b.ready()      # young and under-full
    clock.t = 0.0101
    assert b.ready()          # oldest request is past the deadline
    batch = b.next_batch()
    assert batch is not None and len(batch) == 3  # ragged: 3 < max_batch


def test_deadline_measured_from_oldest_request(clock):
    b = make_batcher(clock, max_batch=8, deadline_s=0.01)
    b.submit(tagged_images(1))
    clock.t = 0.009
    b.submit(tagged_images(1, start=1))  # young request
    clock.t = 0.011                       # oldest is 11ms old
    assert b.ready()
    batch = b.next_batch()
    assert batch is not None
    assert tags_of(batch.images) == [0, 1]  # young one rides along


def test_force_flushes_regardless(clock):
    b = make_batcher(clock, max_batch=64, deadline_s=10.0)
    b.submit(tagged_images(2))
    assert b.next_batch() is None
    batch = b.next_batch(force=True)
    assert batch is not None and len(batch) == 2
    assert b.next_batch(force=True) is None  # queue drained


# --------------------------------------------------------------------- #
# coalescing / splitting order preservation
# --------------------------------------------------------------------- #
def test_coalescing_preserves_admission_order(clock):
    b = make_batcher(clock, max_batch=8)
    h1 = b.submit(tagged_images(3, start=0))
    h2 = b.submit(tagged_images(2, start=3))
    h3 = b.submit(tagged_images(3, start=5))
    batch = b.next_batch()
    assert batch is not None
    assert tags_of(batch.images) == list(range(8))
    assert [(p, o, c) for p, o, c in batch.parts] == [
        (h1, 0, 3), (h2, 0, 2), (h3, 0, 3)]


def test_large_request_splits_across_batches_in_order(clock):
    b = make_batcher(clock, max_batch=4)
    big = b.submit(tagged_images(10))
    first = b.next_batch()
    second = b.next_batch()
    assert first is not None and second is not None
    assert tags_of(first.images) == [0, 1, 2, 3]
    assert tags_of(second.images) == [4, 5, 6, 7]
    assert first.parts == [(big, 0, 4)]
    assert second.parts == [(big, 4, 4)]
    # The tail is under-full: only due via deadline/force (ragged).
    assert b.next_batch() is None
    tail = b.next_batch(force=True)
    assert tail is not None
    assert tags_of(tail.images) == [8, 9]
    assert tail.parts == [(big, 8, 2)]


def test_split_straddles_request_boundaries(clock):
    b = make_batcher(clock, max_batch=4)
    h1 = b.submit(tagged_images(3, start=0))
    h2 = b.submit(tagged_images(5, start=3))
    first = b.next_batch()
    second = b.next_batch()
    assert first is not None and second is not None
    assert tags_of(first.images) == [0, 1, 2, 3]   # h1 + h2's head
    assert first.parts == [(h1, 0, 3), (h2, 0, 1)]
    assert tags_of(second.images) == [4, 5, 6, 7]  # h2's tail
    assert second.parts == [(h2, 1, 4)]


def test_admission_order_is_deterministic(clock):
    """Same submissions, same clock → identical batch compositions."""
    def run():
        c = FakeClock()
        b = make_batcher(c, max_batch=4)
        for n, start in ((3, 0), (2, 3), (4, 5)):
            b.submit(tagged_images(n, start=start))
        out = []
        while (batch := b.next_batch(force=True)) is not None:
            out.append(tags_of(batch.images))
        return out

    assert run() == run() == [[0, 1, 2, 3], [4, 5, 6, 7], [8]]


# --------------------------------------------------------------------- #
# handles and validation
# --------------------------------------------------------------------- #
def test_single_example_request_is_promoted_to_batch(clock):
    b = make_batcher(clock)
    handle = b.submit(tagged_images(1)[0])  # (C, H, W)
    assert handle.size == 1
    assert b.pending_examples == 1


def test_submit_rejects_bad_shapes(clock):
    b = make_batcher(clock)
    with pytest.raises(ValueError, match="empty"):
        b.submit(np.empty((0, 1, 4, 4), dtype=np.float32))
    with pytest.raises(ValueError, match="shape"):
        b.submit(np.zeros((4, 4), dtype=np.float32))


def test_result_before_done_raises(clock):
    b = make_batcher(clock)
    handle = b.submit(tagged_images(2))
    with pytest.raises(RuntimeError, match="pending"):
        handle.result()
    assert handle.latency is None


def test_double_fill_raises(clock):
    from repro.serve import Prediction

    b = make_batcher(clock)
    handle = b.submit(tagged_images(1))
    row = Prediction(label=0, logits=np.zeros(10, dtype=np.float32))
    handle.fill(0, [row], now=1.0)
    assert handle.done and handle.latency == 1.0
    with pytest.raises(RuntimeError, match="twice"):
        handle.fill(0, [row], now=2.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MicroBatcher(max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(deadline_s=-1.0)
