"""Server end-to-end: bitwise determinism, gating, caching, mode safety.

The headline guarantee pinned here: served predictions are **bitwise
identical** to direct ``model(x)`` forward passes of the same
micro-batches, on every registered backend.  (Forward rows are not
bitwise-stable across *different* batch compositions on BLAS substrates,
so the guarantee is stated — and verified — per composed batch: the
expected values come from replaying the deterministic batcher and
forwarding each composed batch directly.)
"""

import time

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.data import load_split
from repro.models import build_classifier
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    PredictionCache,
    Server,
)

ALL_BACKENDS = backend.available_backends()


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 48, seed=7)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_server(backend_name, split, **kwargs):
    with backend.use(backend_name):
        model = build_classifier("digits", width=4, seed=0)
        registry = ModelRegistry()
        registry.add("m", model, backend=backend_name)
    kwargs.setdefault("clock", FakeClock())
    server = Server(registry, **kwargs)
    return server, model


def direct_rows(model, images, backend_name):
    """Direct forward of exactly one composed batch, host-side."""
    with backend.use(backend_name) as b:
        with nn.inference_mode(model), nn.no_grad():
            return b.to_numpy(model(nn.Tensor(images)).data)


def replay_expected(model, request_images, max_batch, backend_name):
    """Expected per-request logits: replay the deterministic batcher and
    forward each composed micro-batch directly."""
    batcher = MicroBatcher(max_batch=max_batch, deadline_s=0.0,
                           clock=lambda: 0.0)
    handles = [batcher.submit(images) for images in request_images]
    expected = {id(h): [None] * h.size for h in handles}
    while (batch := batcher.next_batch(force=True)) is not None:
        rows = direct_rows(model, batch.images, backend_name)
        cursor = 0
        for pending, offset, count in batch.parts:
            for i in range(count):
                expected[id(pending)][offset + i] = rows[cursor + i]
            cursor += count
    return [np.stack(expected[id(h)]) for h in handles]


# --------------------------------------------------------------------- #
# the bitwise guarantee, per backend
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_served_equals_direct_forward_exact_tiling(backend_name, split):
    """Requests tiling max_batch exactly: served rows == model(batch)."""
    server, model = make_server(backend_name, split, max_batch=8,
                                gate="none")
    sizes = [3, 5, 4, 4]  # tiles into two full batches of 8
    cuts = np.cumsum([0] + sizes)
    requests = [split.test.images[a:b] for a, b in zip(cuts, cuts[1:])]
    handles = [server.submit("m", r) for r in requests]
    assert server.pump() == 2  # two full flushes, no deadline needed
    direct_first = direct_rows(model, split.test.images[:8], backend_name)
    direct_second = direct_rows(model, split.test.images[8:16],
                                backend_name)
    served = np.concatenate([h.logits for h in handles])
    np.testing.assert_array_equal(
        served, np.concatenate([direct_first, direct_second]))


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_served_equals_direct_forward_ragged_and_split(backend_name, split):
    """Coalescing, splitting and a ragged tail, pinned via batch replay."""
    server, model = make_server(backend_name, split, max_batch=4,
                                gate="none")
    sizes = [5, 2, 6]  # batches: [r1x4], [r1x1+r2x2+r3x1], [r3x4], [r3x1]
    cuts = np.cumsum([0] + sizes)
    requests = [split.test.images[a:b] for a, b in zip(cuts, cuts[1:])]
    expected = replay_expected(model, requests, max_batch=4,
                               backend_name=backend_name)
    handles = [server.submit("m", r) for r in requests]
    assert server.drain() == 4
    for handle, want in zip(handles, expected):
        np.testing.assert_array_equal(handle.logits, want)
        assert handle.labels.tolist() == want.argmax(axis=1).tolist()


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_one_at_a_time_equals_single_example_forward(backend_name, split):
    """max_batch=1 degenerates to per-example forwards (the baseline the
    serve benchmark compares against)."""
    server, model = make_server(backend_name, split, max_batch=1,
                                gate="none")
    xs = split.test.images[:6]
    handles = [server.submit("m", x) for x in xs]
    server.pump()  # 6 pending singles: all full batches at max_batch=1
    for i, handle in enumerate(handles):
        want = direct_rows(model, xs[i:i + 1], backend_name)
        np.testing.assert_array_equal(handle.logits, want)


def test_forward_runs_on_the_entry_backend(split):
    """The lane pins the producing backend even if another is active."""
    server, model = make_server("fast", split, max_batch=8, gate="none")
    handle = server.submit("m", split.test.images[:8])
    with backend.use("numpy"):    # different *active* backend at pump time
        server.pump()
    want = direct_rows(model, split.test.images[:8], "fast")
    np.testing.assert_array_equal(handle.logits, want)


# --------------------------------------------------------------------- #
# mode safety
# --------------------------------------------------------------------- #
def test_serving_preserves_per_module_training_flags(split):
    server, model = make_server("numpy", split, max_batch=4, gate="none")
    model.train()
    frozen = next(iter(model.modules()))  # the root module
    modules = list(model.modules())
    modules[-1]._training = False         # deliberately heterogeneous
    before = [m._training for m in modules]
    server.submit("m", split.test.images[:4])
    server.pump()
    assert [m._training for m in modules] == before
    assert frozen.training  # root stayed in train mode


# --------------------------------------------------------------------- #
# gate wiring
# --------------------------------------------------------------------- #
def test_gate_decisions_ride_with_predictions(split):
    server, model = make_server("numpy", split, max_batch=8,
                                gate="confidence", gate_threshold=0.0)
    handle = server.submit("m", split.test.images[:8])
    server.pump()
    # Threshold 0: every example's suspicion > 0, so everything flags.
    assert handle.flagged.all()
    assert (handle.scores > 0).all()
    assert server.stats.flagged_examples == 8
    # Scores are a pure row-wise function of the served logits.
    gate = server.gate_for("m")
    np.testing.assert_allclose(handle.scores, gate.scores(handle.logits))


# --------------------------------------------------------------------- #
# prediction cache
# --------------------------------------------------------------------- #
def test_repeated_examples_hit_the_cache_bitwise(split):
    cache = PredictionCache(max_entries=64)
    server, model = make_server("numpy", split, max_batch=8, gate="none",
                                cache=cache)
    client = server.client("m")
    first = client.call(split.test.images[:4])
    assert cache.hits == 0 and cache.misses == 4
    again = client.call(split.test.images[:4])
    assert cache.hits == 4
    assert all(p.from_cache for p in again.result())
    np.testing.assert_array_equal(first.logits, again.logits)
    assert server.stats.cache_hits == 4


def test_partially_cached_batch_serves_correctly(split):
    cache = PredictionCache(max_entries=64)
    server, model = make_server("numpy", split, max_batch=8, gate="none",
                                cache=cache)
    client = server.client("m")
    warm = client.call(split.test.images[2:6])      # rows 2..5 cached
    mixed = client.call(split.test.images[:8])      # rows 0..7: 4 hits
    assert cache.hits == 4
    # Cached rows replay their first-served logits bitwise; fresh rows
    # come from the miss sub-batch forward.
    np.testing.assert_array_equal(mixed.logits[2:6], warm.logits)
    fresh_rows = direct_rows(
        model, split.test.images[[0, 1, 6, 7]], "numpy")
    np.testing.assert_array_equal(mixed.logits[[0, 1, 6, 7]], fresh_rows)


def test_cache_is_bounded():
    cache = PredictionCache(max_entries=3)
    from repro.serve import Prediction

    rng = np.random.default_rng(0)
    for i in range(7):
        cache.store("fp", rng.normal(size=(1, 4, 4)).astype(np.float32),
                    Prediction(label=i, logits=np.zeros(3)))
    assert len(cache) == 3
    assert cache.evictions == 4
    with pytest.raises(ValueError):
        PredictionCache(max_entries=0)


def test_shared_cache_does_not_leak_gate_verdicts_across_lanes(split):
    """Same weights, different gates: no cross-replay of flags."""
    with backend.use("numpy"):
        model = build_classifier("digits", width=4, seed=0)
        registry = ModelRegistry()
        registry.add("m", model)
    cache = PredictionCache(max_entries=64)
    lenient = Server(registry, max_batch=8, gate="none", cache=cache,
                     clock=FakeClock())
    strict = Server(registry, max_batch=8, gate="confidence",
                    gate_threshold=0.0, cache=cache, clock=FakeClock())
    x = split.test.images[:4]
    first = lenient.client("m").call(x)
    assert not first.flagged.any()          # NullGate never flags
    second = strict.client("m").call(x)
    # Identical weights and inputs, but the strict lane must not replay
    # the lenient lane's verdicts: threshold 0 flags everything.
    assert not any(p.from_cache for p in second.result())
    assert second.flagged.all()


def test_refresh_invalidates_cache_after_inplace_weight_update(split):
    """Mutating a served model's weights + registry.refresh() rolls the
    prediction-cache key, so stale predictions stop replaying."""
    cache = PredictionCache(max_entries=64)
    server, model = make_server("numpy", split, max_batch=8, gate="none",
                                cache=cache)
    client = server.client("m")
    stale = client.call(split.test.images[:2])
    next(iter(model.parameters())).data += 0.25   # hot weight swap
    entry = server.registry.get("m")
    old_fingerprint = entry.fingerprint
    server.registry.refresh("m")
    assert entry.fingerprint != old_fingerprint
    fresh = client.call(split.test.images[:2])
    assert not any(p.from_cache for p in fresh.result())
    assert not np.array_equal(stale.logits, fresh.logits)


def test_cache_distinguishes_model_fingerprints(split):
    cache = PredictionCache()
    x = split.test.images[:1]
    from repro.serve import Prediction

    cache.store("model-a", x[0], Prediction(label=1, logits=np.ones(3)))
    assert cache.lookup("model-b", x) == [None]
    hit = cache.lookup("model-a", x)[0]
    assert hit is not None and hit.label == 1 and hit.from_cache


# --------------------------------------------------------------------- #
# facade behaviour
# --------------------------------------------------------------------- #
def test_client_call_is_synchronous(split):
    server, _ = make_server("numpy", split, max_batch=64)
    client = server.client("m")
    handle = client.call(split.test.images[:3])
    assert handle.done and handle.size == 3


def test_unknown_model_fails_fast(split):
    server, _ = make_server("numpy", split)
    with pytest.raises(KeyError, match="no lane"):
        server.client("ghost")
    with pytest.raises(KeyError, match="no lane"):
        server.submit("ghost", split.test.images[:1])


def test_server_is_a_live_registry_view(split):
    """Models registered after construction serve; unregistered ones
    stop accepting requests (queued work still drains)."""
    server, _ = make_server("numpy", split, max_batch=4, gate="none")
    with backend.use("numpy"):
        late = build_classifier("digits", width=4, seed=9)
    server.registry.add("late", late)
    handle = server.client("late").call(split.test.images[:2])
    assert handle.done
    # Unregister with work still queued: no new submissions, old drains.
    queued = server.submit("late", split.test.images[:2])
    server.registry.unregister("late")
    with pytest.raises(KeyError, match="no lane"):
        server.submit("late", split.test.images[:1])
    server.drain()
    assert queued.done


def test_submitted_buffers_are_copied_at_admission(split):
    """Mutating the caller's array after submit must not change what is
    served (or what the prediction cache fingerprints)."""
    server, model = make_server("numpy", split, max_batch=8, gate="none")
    buf = np.array(split.test.images[:2], copy=True)
    original = np.array(buf, copy=True)
    handle = server.submit("m", buf)
    buf += 123.0                     # client reuses its buffer
    server.drain()
    want = direct_rows(model, original, "numpy")
    np.testing.assert_array_equal(handle.logits, want)


def test_stats_and_pending_accounting(split):
    server, _ = make_server("numpy", split, max_batch=8, gate="none")
    server.submit("m", split.test.images[:3])
    assert server.pending_examples == 3
    assert server.pump() == 0            # under-full, young
    server.drain()
    assert server.pending_examples == 0
    stats = server.stats.summary()
    assert stats["requests"] == 1 and stats["examples"] == 3
    assert stats["batches"] == 1
    assert server.stats.requests_completed == 1
    assert len(server.stats.latencies) == 1


def test_background_pump_serves_without_manual_pumping(split):
    """The async path: a daemon thread drains the queue on its own."""
    server, _ = make_server("numpy", split, max_batch=4, deadline_ms=1.0,
                            clock=time.monotonic)
    with server:
        handle = server.submit("m", split.test.images[:2])
        deadline = time.monotonic() + 5.0
        while not handle.done and time.monotonic() < deadline:
            time.sleep(0.002)
    assert handle.done
    assert handle.latency is not None and handle.latency < 5.0


# --------------------------------------------------------------------- #
# failure propagation: a dead pump must be loud
# --------------------------------------------------------------------- #
class _Boom(RuntimeError):
    pass


def _arm_raising_forward(server, model):
    """Make the served model's next forward pass raise."""
    def forward(x):
        raise _Boom("forward exploded")
    model.forward = forward


def test_pump_death_fails_handles_and_poisons_server(split):
    """A raising forward must not vanish: the in-flight batch's handles
    fail with the cause, queued handles fail too, and every subsequent
    submit/pump/stop re-raises instead of silently serving nothing."""
    server, model = make_server("numpy", split, max_batch=2, gate="none")
    inflight = server.submit("m", split.test.images[:2])   # full: cut next
    queued = server.submit("m", split.test.images[2:3])
    _arm_raising_forward(server, model)
    with pytest.raises(_Boom):
        server.pump()
    assert isinstance(server.pump_error, _Boom)
    for handle in (inflight, queued):
        assert handle.failed and not handle.done
        with pytest.raises(RuntimeError, match="failed while being served"):
            handle.result()
    # result() chains the original cause for debuggability.
    try:
        inflight.result()
    except RuntimeError as error:
        assert isinstance(error.__cause__, _Boom)
    # The corpse refuses further work, loudly.
    with pytest.raises(RuntimeError, match="pump died"):
        server.submit("m", split.test.images[:1])
    with pytest.raises(RuntimeError, match="pump died"):
        server.pump()
    with pytest.raises(RuntimeError, match="pump died"):
        server.stop()


def test_background_pump_death_reraises_in_stop(split):
    """The regression that motivated the fix: with the pump on a daemon
    thread, a raising forward used to kill the thread silently and
    result() would block forever.  Now the handle fails promptly and
    stop() re-raises the cause in the foreground."""
    server, model = make_server("numpy", split, max_batch=4,
                                deadline_ms=1.0, clock=time.monotonic)
    server.start(poll_interval_s=0.001)
    _arm_raising_forward(server, model)
    handle = server.submit("m", split.test.images[:2])
    assert handle.wait(5.0), "handle neither served nor failed"
    assert handle.failed
    with pytest.raises(RuntimeError, match="pump died") as exc_info:
        server.stop()
    assert isinstance(exc_info.value.__cause__, _Boom)


def test_latencies_use_one_timebase_under_injected_clock(split):
    """Admission and completion stamps must come from the same clock:
    submit at t=1, serve at t=3 -> latency exactly 2 (a mixed timebase
    made these nonsense — even negative — under a fake clock)."""
    clock = FakeClock()
    server, _ = make_server("numpy", split, max_batch=8, gate="none",
                            clock=clock)
    clock.t = 1.0
    handle = server.submit("m", split.test.images[:2])
    clock.t = 3.0
    assert server.drain() == 1
    assert handle.latency == pytest.approx(2.0)
    assert list(server.stats.latencies) == [pytest.approx(2.0)]


def test_stats_summary_reports_completion_and_queue_depth(split):
    """summary() regression: requests_completed was dropped and there
    was no pending-depth signal for admission control to read."""
    server, _ = make_server("numpy", split, max_batch=64, gate="none",
                            deadline_ms=1e9)
    server.submit("m", split.test.images[:3])
    summary = server.stats_summary()
    assert summary["requests_completed"] == 0
    assert summary["pending_examples"] == 3
    server.drain()
    summary = server.stats_summary()
    assert summary["requests_completed"] == 1
    assert summary["pending_examples"] == 0
    assert summary["requests"] == 1


def test_flag_sink_disabled_leaves_serving_bitwise_unchanged(split,
                                                             tmp_path):
    """The hardening seam's enablement contract: ``flag_sink=None``
    (the default) serves exactly what a sink-equipped server serves —
    same logits, labels, scores and flags, row for row — and the sink
    receives precisely the flagged examples."""
    from repro.serve import QuarantineStore

    def serve_stream(flag_sink):
        server, _ = make_server("numpy", split, max_batch=4,
                                gate="confidence", gate_threshold=0.2,
                                flag_sink=flag_sink)
        handles = [server.submit("m", split.test.images[i:i + 3])
                   for i in range(0, 12, 3)]
        server.drain()
        return handles, server

    plain, plain_server = serve_stream(None)
    store = QuarantineStore(tmp_path / "q")
    sunk, sunk_server = serve_stream(store)

    flagged = 0
    for a, b in zip(plain, sunk):
        np.testing.assert_array_equal(a.logits, b.logits)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.scores, b.scores)
        np.testing.assert_array_equal(a.flagged, b.flagged)
        flagged += int(a.flagged.sum())
    assert plain_server.flag_sink is None
    assert flagged > 0                      # the gate actually fired
    assert store.stored + store.duplicates == flagged
