"""ModelRegistry: checkpoint round-trips, backend pinning, validation."""

import dataclasses

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.data import load_split
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer
from repro.models import build_classifier
from repro.serve import ModelRegistry
from repro.train import save_checkpoint

WIDTH = 4


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 32, seed=7)


def tiny_cfg():
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH, batch_size=32)


def train_checkpoint(defense, split, path, epochs=1, backend_name=None):
    """One cheap epoch of ``defense`` at tiny geometry, checkpointed."""
    import contextlib

    scope = backend.use(backend_name) if backend_name \
        else contextlib.nullcontext()
    with scope:
        trainer = build_trainer(defense, tiny_cfg(), seed=3)
        trainer.epochs = epochs
        trainer.fit(split.train)
        save_checkpoint(trainer, path)
    return trainer


def test_vanilla_checkpoint_roundtrip(split, tmp_path):
    path = tmp_path / "checkpoint.npz"
    trainer = train_checkpoint("vanilla", split, path)
    registry = ModelRegistry()
    entry = registry.load("victim", path, dataset="digits", width=WIDTH)
    assert entry.trainer == "vanilla"
    assert entry.discriminator is None and not entry.has_discriminator
    # The served model carries exactly the trained weights.
    want = trainer.model.state_dict()
    got = entry.model.state_dict()
    assert sorted(want) == sorted(got)
    for key in want:
        np.testing.assert_array_equal(want[key], got[key])
    # ... so predictions agree bitwise on the same batch.
    x = split.test.images[:8]
    with nn.inference_mode(trainer.model), nn.no_grad():
        direct = trainer.model(nn.Tensor(x)).data
    with nn.inference_mode(entry.model), nn.no_grad():
        served = entry.model(nn.Tensor(x)).data
    np.testing.assert_array_equal(direct, served)


def test_gandef_checkpoint_brings_its_discriminator(split, tmp_path):
    path = tmp_path / "checkpoint.npz"
    trainer = train_checkpoint("zk-gandef", split, path)
    entry = ModelRegistry().load("gandef", path, dataset="digits",
                                 width=WIDTH)
    assert entry.trainer == "zk-gandef"
    assert entry.has_discriminator
    want = trainer.discriminator.state_dict()
    got = entry.discriminator.state_dict()
    for key in want:
        np.testing.assert_array_equal(want[key], got[key])


def test_backend_recorded_in_archive_is_pinned(split, tmp_path):
    path = tmp_path / "checkpoint.npz"
    train_checkpoint("vanilla", split, path, backend_name="fast")
    entry = ModelRegistry().load("victim", path, dataset="digits",
                                 width=WIDTH)
    assert entry.backend == "fast"
    # An explicit override wins over the recorded backend.
    entry2 = ModelRegistry().load("victim", path, dataset="digits",
                                  width=WIDTH, backend="numpy")
    assert entry2.backend == "numpy"


def test_unavailable_recorded_backend_falls_back():
    assert backend.resolve("cupy-not-installed-here") == "numpy"
    assert backend.resolve(None) == "numpy"
    assert backend.resolve("fast") == "fast"
    with pytest.raises(KeyError):
        backend.resolve("nope", fallback="also-nope")


def test_explicit_unknown_backend_is_an_error(split, tmp_path):
    """Only *recorded* provenance degrades silently; a user-supplied
    backend that is not registered must raise, not downgrade."""
    path = tmp_path / "checkpoint.npz"
    train_checkpoint("vanilla", split, path)
    with pytest.raises(KeyError, match="unknown backend"):
        ModelRegistry().load("victim", path, dataset="digits",
                             width=WIDTH, backend="cupy-missing")
    with pytest.raises(KeyError, match="unknown backend"):
        ModelRegistry().add("m", build_classifier("digits", width=WIDTH,
                                                  seed=0),
                            backend="typo")


def test_fingerprint_matches_eval_cache_hash(split, tmp_path):
    from repro.eval.cache import fingerprint_model

    path = tmp_path / "checkpoint.npz"
    trainer = train_checkpoint("vanilla", split, path)
    entry = ModelRegistry().load("victim", path, dataset="digits",
                                 width=WIDTH)
    assert entry.fingerprint == fingerprint_model(trainer.model)


def test_weights_only_archive_is_rejected(tmp_path):
    model = build_classifier("digits", width=WIDTH, seed=0)
    path = tmp_path / "weights.npz"
    nn.save_state(model, path)
    with pytest.raises(ValueError, match="not a training checkpoint"):
        ModelRegistry().load("m", path, dataset="digits", width=WIDTH)


def test_duplicate_and_unknown_names():
    registry = ModelRegistry()
    model = build_classifier("digits", width=WIDTH, seed=0)
    registry.add("m", model)
    assert "m" in registry and len(registry) == 1
    with pytest.raises(ValueError, match="already registered"):
        registry.add("m", model)
    with pytest.raises(KeyError, match="unknown model"):
        registry.get("ghost")
    registry.unregister("m")
    assert "m" not in registry
