"""The HTTP tier under real concurrency, over real sockets.

What the deployment story promises and these tests pin:

* many parallel clients, zero dropped and zero double-served requests;
* overload turns into explicit 429 backpressure, never hangs;
* a hot checkpoint reload mid-load loses nothing — every response is
  bitwise one model's answer (old or new), never a mix;
* two SO_REUSEPORT servers sharing one port and one on-disk prediction
  cache warm each other.
"""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.data import load_split
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer
from repro.models import build_classifier
from repro.serve import (
    ApiKeyAuth,
    DiskPredictionCache,
    HttpClient,
    HttpFrontend,
    HttpServer,
    ModelRegistry,
    Server,
    build_mixed_load,
    run_http_load,
)
from repro.train import save_checkpoint

WIDTH = 4


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 96, 64, seed=7)


def tiny_cfg():
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH, batch_size=32)


def build_http(registry=None, *, max_batch=8, queue_limit=1024,
               cache=None, reuse_port=False, port=0, **frontend_kwargs):
    if registry is None:
        registry = ModelRegistry()
        registry.add("m", build_classifier("digits", width=WIDTH, seed=0),
                     backend="numpy")
    server = Server(registry, max_batch=max_batch, deadline_ms=1.0,
                    gate="confidence", gate_threshold=0.5, cache=cache)
    frontend = HttpFrontend(server, auth=ApiKeyAuth({"ci": "key"}),
                            queue_limit=queue_limit, **frontend_kwargs)
    return HttpServer(frontend, host="127.0.0.1", port=port,
                      reuse_port=reuse_port)


def test_parallel_clients_nothing_dropped_or_double_served(split):
    httpd = build_http()
    with httpd:
        host, port = httpd.address
        traffic = build_mixed_load(split.test.images[:32],
                                   split.test.images[32:64],
                                   num_requests=80, max_request_size=4,
                                   seed=5)
        report = run_http_load(host, port, traffic, model="m",
                               concurrency=12, api_key="key")
        # Exactly one outcome per request, all served, none rejected.
        assert len(report.outcomes) == 80
        assert sorted(o.index for o in report.outcomes) == list(range(80))
        assert report.completed == 80
        assert report.transport_errors == 0
        examples = sum(len(r.images) for r in traffic)
        assert report.served_examples == examples
        # The server's own accounting agrees: no request was served
        # twice (completions == admissions == HTTP requests).
        frontend = httpd.frontend
        summary = frontend.server.stats_summary()
        assert summary["requests"] == 80
        assert summary["requests_completed"] == 80
        assert summary["examples"] == examples
        assert frontend.stats.summary()["served_requests"] == 80
        assert frontend.admission.inflight == 0


def test_overload_gets_429s_and_every_request_an_answer(split):
    """A tiny admission window + a slowed forward: offered load beyond
    capacity must come back as explicit 429s, with zero hangs and zero
    drops, and the rejections counted."""
    registry = ModelRegistry()
    model = build_classifier("digits", width=WIDTH, seed=0)
    registry.add("m", model, backend="numpy")
    slow_forward = model.forward

    def forward(x):
        time.sleep(0.01)
        return slow_forward(x)

    model.forward = forward
    httpd = build_http(registry, max_batch=4, queue_limit=8)
    with httpd:
        host, port = httpd.address
        traffic = build_mixed_load(split.test.images[:16],
                                   split.test.images[16:32],
                                   num_requests=60, max_request_size=4,
                                   seed=6)
        report = run_http_load(host, port, traffic, model="m",
                               concurrency=16, api_key="key",
                               timeout=60.0)
        assert report.transport_errors == 0
        assert report.completed + report.rejected_429 == 60
        assert report.rejected_429 > 0, "overload never pushed back"
        stats = httpd.frontend.stats.summary()
        assert stats["rejected_over_capacity"] == report.rejected_429
        # Backpressure carried a hint.
        assert all(o.status in (200, 429) for o in report.outcomes)


def test_hot_reload_mid_load_keeps_responses_bitwise_correct(split, tmp_path):
    """Requests in flight across a checkpoint swap: every 200 row must
    be bitwise one model's direct answer — the old or the new — and
    after the swap only the new model answers.  max_batch=1 makes the
    direct per-example forward the exact expected composition."""
    old_path, new_path = tmp_path / "old.npz", tmp_path / "new.npz"
    trainer_old = build_trainer("vanilla", tiny_cfg(), seed=3)
    trainer_old.epochs = 1
    trainer_old.fit(split.train)
    save_checkpoint(trainer_old, old_path)
    trainer_new = build_trainer("vanilla", tiny_cfg(), seed=9)
    trainer_new.epochs = 1
    trainer_new.fit(split.train)
    save_checkpoint(trainer_new, new_path)

    registry = ModelRegistry()
    registry.load("m", old_path, dataset="digits", width=WIDTH)
    httpd = build_http(registry, max_batch=1)
    with httpd:
        host, port = httpd.address
        stream = [split.test.images[i % 48:i % 48 + 1] for i in range(120)]
        results = [None] * len(stream)

        def drive(worker, begin, end):
            with HttpClient(host, port, api_key="key") as client:
                for i in range(begin, end):
                    results[i] = client.predict(stream[i], model="m")

        threads = [threading.Thread(target=drive, args=(w, w * 30,
                                                        (w + 1) * 30))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)                 # mid-load
        with HttpClient(host, port, api_key="key") as admin:
            reply = admin.reload("m", checkpoint=str(new_path),
                                 dataset="digits", width=WIDTH)
            assert reply.status == 200
            assert reply.payload["fingerprint"] != \
                reply.payload["old_fingerprint"]
        for thread in threads:
            thread.join()

        from repro import nn

        def direct(trainer, x):
            with nn.inference_mode(trainer.model), nn.no_grad():
                return trainer.model(nn.Tensor(x)).data

        served_new = 0
        for i, response in enumerate(results):
            assert response.status == 200, response.payload
            (row,) = response.payload["predictions"]
            got = np.asarray(row["logits"], dtype=np.float32)
            want_old = direct(trainer_old, stream[i])[0]
            want_new = direct(trainer_new, stream[i])[0]
            if np.array_equal(got, want_new):
                served_new += 1
            else:
                np.testing.assert_array_equal(got, want_old)
        # The swap happened mid-run: the tail must be the new model.
        with HttpClient(host, port, api_key="key") as probe:
            after = probe.predict(split.test.images[:1], model="m")
            (row,) = after.payload["predictions"]
            np.testing.assert_array_equal(
                np.asarray(row["logits"], dtype=np.float32),
                direct(trainer_new, split.test.images[:1])[0])


def test_reuse_port_workers_share_a_disk_cache(split, tmp_path):
    """Two in-process HttpServers bound to the same port via
    SO_REUSEPORT, sharing one DiskPredictionCache: all traffic is
    served, and an example first answered by either worker replays
    bitwise from the shared cache on both."""
    import socket as socket_module

    if not hasattr(socket_module, "SO_REUSEPORT"):
        pytest.skip("platform lacks SO_REUSEPORT")
    # Two servers over *identical* weights (same seed) — exactly the
    # multi-worker deployment, which requires identical checkpoints.
    first = build_http(cache=DiskPredictionCache(tmp_path), reuse_port=True)
    first.start()
    host, port = first.address
    second = build_http(cache=DiskPredictionCache(tmp_path),
                        reuse_port=True, port=port)
    second.start()
    try:
        pool = split.test.images[:8]       # tiny pool: heavy repeats
        traffic = build_mixed_load(pool, pool, num_requests=120,
                                   max_request_size=2, seed=8)
        report = run_http_load(host, port, traffic, model="m",
                               concurrency=8, api_key="key")
        assert report.completed == 120
        assert report.transport_errors == 0
        # Cache effectiveness: far fewer distinct examples than served
        # rows, so most lookups were hits — across both workers'
        # stores combined.
        cache = DiskPredictionCache(tmp_path)
        assert 0 < len(cache) <= 16        # distinct (example, fp) keys
        # Replays are bitwise: one worker's stored answer is returned
        # by whichever worker serves the repeat.
        with HttpClient(host, port, api_key="key") as probe:
            a = probe.predict(pool[:1], model="m")
            b = probe.predict(pool[:1], model="m")
            assert a.payload["predictions"][0]["logits"] == \
                b.payload["predictions"][0]["logits"]
            assert b.payload["predictions"][0]["from_cache"]
    finally:
        second.stop()
        first.stop()
