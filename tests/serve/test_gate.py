"""DefenseGate family: scoring, thresholds, the factory, filter metrics."""

import numpy as np
import pytest

from repro.defenses.discriminator import Discriminator
from repro.eval.metrics import filter_rates
from repro.models import build_classifier
from repro.serve import (
    ConfidenceGate,
    DiscriminatorGate,
    ModelRegistry,
    NullGate,
    build_gate,
)


def one_hot_logits(confident=True):
    """Rows of very-confident and near-uniform logits."""
    sharp = np.zeros((4, 10), dtype=np.float32)
    sharp[:, 2] = 12.0 if confident else 0.1
    return sharp


# --------------------------------------------------------------------- #
# confidence gate
# --------------------------------------------------------------------- #
def test_confidence_gate_scores_confident_rows_low():
    gate = ConfidenceGate(threshold=0.5)
    decision = gate.decide(one_hot_logits(confident=True))
    assert decision.scores.shape == (4,)
    assert (decision.scores < 0.01).all()
    assert not decision.flagged.any()


def test_confidence_gate_flags_uniform_rows():
    gate = ConfidenceGate(threshold=0.5)
    decision = gate.decide(np.zeros((3, 10), dtype=np.float32))
    # Uniform softmax: confidence 1/10, suspicion 0.9.
    np.testing.assert_allclose(decision.scores, 0.9)
    assert decision.flagged.all()


def test_confidence_gate_is_shift_invariant():
    gate = ConfidenceGate()
    logits = np.random.default_rng(0).normal(size=(8, 10))
    np.testing.assert_allclose(gate.scores(logits),
                               gate.scores(logits + 100.0))


# --------------------------------------------------------------------- #
# discriminator gate
# --------------------------------------------------------------------- #
def test_discriminator_gate_matches_discriminator_scores():
    disc = Discriminator(num_logits=10,
                         rng=np.random.default_rng(5))
    gate = DiscriminatorGate(disc, threshold=0.5)
    logits = np.random.default_rng(1).normal(size=(6, 10)) \
        .astype(np.float32)
    np.testing.assert_array_equal(gate.scores(logits), disc.scores(logits))
    decision = gate.decide(logits)
    assert ((decision.scores >= 0) & (decision.scores <= 1)).all()
    np.testing.assert_array_equal(decision.flagged, decision.scores > 0.5)


def test_discriminator_scores_leave_mode_alone():
    disc = Discriminator(num_logits=10, rng=np.random.default_rng(5))
    disc.train()
    disc.scores(np.zeros((2, 10), dtype=np.float32))
    assert disc.training  # snapshot/restore, not a permanent eval() flip


# --------------------------------------------------------------------- #
# null gate + factory
# --------------------------------------------------------------------- #
def test_null_gate_never_flags():
    decision = NullGate().decide(np.zeros((5, 10), dtype=np.float32))
    assert not decision.flagged.any()
    assert (decision.scores == 0).all()


def test_build_gate_auto_picks_by_checkpoint_contents():
    registry = ModelRegistry()
    model = build_classifier("digits", width=4, seed=0)
    plain = registry.add("plain", model)
    gandef = registry.add(
        "gandef", build_classifier("digits", width=4, seed=1),
        discriminator=Discriminator(rng=np.random.default_rng(2)))
    assert isinstance(build_gate("auto", plain), ConfidenceGate)
    assert isinstance(build_gate("auto", gandef), DiscriminatorGate)
    assert isinstance(build_gate("none", plain), NullGate)
    with pytest.raises(ValueError, match="no discriminator"):
        build_gate("disc", plain)
    with pytest.raises(KeyError, match="unknown gate"):
        build_gate("turnstile", plain)


def test_gate_threshold_validation():
    with pytest.raises(ValueError, match="threshold"):
        ConfidenceGate(threshold=1.5)


# --------------------------------------------------------------------- #
# filter metrics (Sec. IV-E rates)
# --------------------------------------------------------------------- #
def test_filter_rates_exact():
    metrics = filter_rates(clean_scores=[0.1, 0.2, 0.8, 0.3],
                           adv_scores=[0.9, 0.6, 0.4],
                           threshold=0.5)
    assert metrics.detection_rate == pytest.approx(2 / 3)
    assert metrics.false_positive_rate == pytest.approx(1 / 4)
    assert metrics.adversarial_examples == 3
    assert metrics.clean_examples == 4
    assert "detection" in str(metrics)


def test_filter_rates_empty_streams_are_zero():
    metrics = filter_rates([], [], threshold=0.5)
    assert metrics.detection_rate == 0.0
    assert metrics.false_positive_rate == 0.0
