"""Staged promotion and rollback: registry mechanics + HTTP endpoints.

The registry half pins the stash-one-deep contract and the provenance
written into the promoted archive; the HTTP half pins satellite
behavior: mid-promotion clients get bitwise old-model rows, bitwise
new-model rows, or a retryable 503 with ``Retry-After`` — never a mix
and never a dropped request.
"""

import dataclasses
import json
import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.data import load_split
from repro.eval.cache import fingerprint_model
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer
from repro.serve import (
    ApiKeyAuth,
    HttpFrontend,
    ModelRegistry,
    Server,
    entry_fingerprint,
)
from repro.train import save_checkpoint
from repro.train.checkpoint import read_checkpoint_meta

WIDTH = 4
AUTH = {"Authorization": "Bearer s3cret"}


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 32, seed=7)


def tiny_cfg():
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH, batch_size=32)


def train_checkpoint(defense, split, path, epochs=1, seed=3):
    trainer = build_trainer(defense, tiny_cfg(), seed=seed)
    trainer.epochs = epochs
    trainer.fit(split.train)
    save_checkpoint(trainer, path)
    return trainer


@pytest.fixture(scope="module")
def base_checkpoint(split, tmp_path_factory):
    path = tmp_path_factory.mktemp("promo") / "base.npz"
    train_checkpoint("vanilla", split, path, epochs=1)
    return path


@pytest.fixture(scope="module")
def candidate_checkpoint(split, tmp_path_factory):
    path = tmp_path_factory.mktemp("promo") / "candidate.npz"
    train_checkpoint("vanilla", split, path, epochs=2)
    return path


def load_registry(base_checkpoint):
    registry = ModelRegistry()
    registry.load("m", base_checkpoint, dataset="digits", width=WIDTH)
    return registry


def forward(model, x):
    with nn.inference_mode(model), nn.no_grad():
        return np.array(model(nn.Tensor(x)).data)


# --------------------------------------------------------------------- #
# registry mechanics
# --------------------------------------------------------------------- #
def test_promote_swaps_stashes_and_records_provenance(
        split, base_checkpoint, candidate_checkpoint):
    registry = load_registry(base_checkpoint)
    old = registry.get("m")
    entry = registry.promote("m", candidate_checkpoint, dataset="digits",
                             width=WIDTH)
    assert registry.get("m") is entry
    assert entry.fingerprint != old.fingerprint
    assert registry.promoted_over("m") is old
    prov = read_checkpoint_meta(candidate_checkpoint)["promotion"]
    assert prov["model"] == "m"
    assert prov["fingerprint"] == entry.fingerprint
    assert prov["replaced_fingerprint"] == old.fingerprint
    assert prov["replaced_checkpoint"] == old.checkpoint_path


def test_rollback_restores_one_step(split, base_checkpoint,
                                    candidate_checkpoint):
    registry = load_registry(base_checkpoint)
    old = registry.get("m")
    registry.promote("m", candidate_checkpoint, dataset="digits",
                     width=WIDTH)
    restored = registry.rollback("m")
    assert restored is old and registry.get("m") is old
    assert registry.promoted_over("m") is None
    with pytest.raises(KeyError, match="no promotion to roll back"):
        registry.rollback("m")


def test_second_promotion_replaces_the_stash(split, tmp_path,
                                             base_checkpoint,
                                             candidate_checkpoint):
    third = tmp_path / "third.npz"
    train_checkpoint("vanilla", split, third, epochs=1, seed=9)
    registry = load_registry(base_checkpoint)
    first = registry.promote("m", candidate_checkpoint, dataset="digits",
                             width=WIDTH)
    registry.promote("m", third, dataset="digits", width=WIDTH)
    # One step deep: rolling back restores the *first promotion*, not
    # the original base entry.
    assert registry.promoted_over("m") is first
    assert registry.rollback("m") is first


def test_failed_promotion_keeps_old_entry_and_stashes_nothing(
        split, tmp_path, base_checkpoint):
    registry = load_registry(base_checkpoint)
    old = registry.get("m")
    with pytest.raises((OSError, ValueError)):
        registry.promote("m", tmp_path / "missing.npz", dataset="digits",
                         width=WIDTH)
    assert registry.get("m") is old
    assert registry.promoted_over("m") is None


def test_entry_fingerprint_folds_the_discriminator(split, tmp_path):
    base = tmp_path / "gandef.npz"
    trainer = train_checkpoint("zk-gandef", split, base, epochs=1)
    # Classifier-only entries keep the historical cache-key format.
    assert entry_fingerprint(trainer.model) == \
        fingerprint_model(trainer.model)
    before = entry_fingerprint(trainer.model, trainer.discriminator)
    assert before != fingerprint_model(trainer.model)
    # A disc-only update (the hardening fine-tune) must roll the
    # fingerprint even though the classifier is untouched.
    trainer.discriminator_anchor_step(
        split.train.images[:8],
        np.ones(8, dtype=np.float32))
    assert fingerprint_model(trainer.model) == \
        entry_fingerprint(trainer.model)
    assert entry_fingerprint(trainer.model, trainer.discriminator) != before


# --------------------------------------------------------------------- #
# HTTP endpoints
# --------------------------------------------------------------------- #
def make_frontend(base_checkpoint, **kwargs):
    registry = ModelRegistry()
    registry.load("m", base_checkpoint, dataset="digits", width=WIDTH)
    server = Server(registry, max_batch=8, deadline_ms=0.0, gate="none")
    kwargs.setdefault("auth", ApiKeyAuth({"alice": "s3cret"}))
    frontend = HttpFrontend(server, **kwargs)
    return frontend, server


def swap_body(checkpoint=None, model="m"):
    payload = {"model": model, "dataset": "digits", "width": WIDTH}
    if checkpoint is not None:
        payload["checkpoint"] = str(checkpoint)
    return json.dumps(payload).encode()


def _predict_body(images, model="m"):
    return json.dumps({"model": model,
                       "inputs": np.asarray(images).tolist()}).encode()


def pump_while_waiting(server, call):
    out = {}

    def run():
        out["reply"] = call()

    thread = threading.Thread(target=run)
    thread.start()
    while thread.is_alive():
        server.pump(force=True)
        thread.join(0.001)
    return out["reply"]


def test_http_promote_rollback_roundtrip(split, base_checkpoint,
                                         candidate_checkpoint):
    frontend, server = make_frontend(base_checkpoint)
    old_fp = server.registry.get("m").fingerprint
    x = split.test.images[:2]
    old_rows = forward(server.registry.get("m").model, x)

    status, payload, _ = frontend.handle(
        "POST", "/v1/promote", swap_body(candidate_checkpoint), AUTH)
    assert status == 200 and payload["action"] == "promote"
    assert payload["old_fingerprint"] == old_fp[:16]
    new_fp = server.registry.get("m").fingerprint
    assert payload["fingerprint"] == new_fp[:16] and new_fp != old_fp

    # Served rows now come bitwise from the promoted weights.
    new_rows = forward(server.registry.get("m").model, x)
    status, payload, _ = pump_while_waiting(
        server, lambda: frontend.handle("POST", "/v1/predict",
                                        _predict_body(x), AUTH))
    assert status == 200
    got = np.array([row["logits"] for row in payload["predictions"]])
    np.testing.assert_array_equal(got, new_rows.astype(got.dtype))
    assert not np.array_equal(new_rows, old_rows)

    status, payload, _ = frontend.handle(
        "POST", "/v1/rollback", swap_body(), AUTH)
    assert status == 200 and payload["action"] == "rollback"
    assert server.registry.get("m").fingerprint == old_fp
    summary = frontend.stats.summary()
    assert summary["promotions"] == 1 and summary["rollbacks"] == 1

    # Nothing left to roll back.
    status, payload, _ = frontend.handle(
        "POST", "/v1/rollback", swap_body(), AUTH)
    assert status == 409 and "no promotion" in payload["error"]


def test_http_promote_validation(base_checkpoint, candidate_checkpoint):
    frontend, _ = make_frontend(base_checkpoint)
    status, payload, _ = frontend.handle(
        "POST", "/v1/promote", swap_body(), AUTH)       # no checkpoint
    assert status == 400 and "checkpoint" in payload["error"]
    status, _, _ = frontend.handle(
        "POST", "/v1/promote",
        swap_body(candidate_checkpoint, model="ghost"), AUTH)
    assert status == 404
    status, _, _ = frontend.handle("POST", "/v1/promote", b"not json",
                                   AUTH)
    assert status == 400
    status, payload, _ = frontend.handle(
        "POST", "/v1/promote",
        swap_body(candidate_checkpoint.parent / "nope.npz"), AUTH)
    assert status == 500 and "still being served" in payload["error"]
    assert frontend.stats.summary()["promotions"] == 0


def test_midpromotion_rows_are_old_or_new_or_retryable(
        split, base_checkpoint, candidate_checkpoint):
    """Satellite regression: while a promotion drains, an already-queued
    request completes bitwise on the old weights; if the drain cannot
    finish inside the grace window the *promotion* (not the client) gets
    a retryable 503 with ``Retry-After``."""
    frontend, server = make_frontend(base_checkpoint,
                                     reload_grace_s=0.05)
    x = split.test.images[:2]
    old_rows = forward(server.registry.get("m").model, x)

    # Queue a predict but do not pump: the drain finds pending work and
    # must give up with the retryable reply, leaving old weights serving.
    waiter = threading.Thread(
        target=lambda: frontend.handle("POST", "/v1/predict",
                                       _predict_body(x), AUTH))
    waiter.start()
    while server.pending_examples == 0:
        time.sleep(0.001)
    status, payload, headers = frontend.handle(
        "POST", "/v1/promote", swap_body(candidate_checkpoint), AUTH)
    assert status == 503
    assert headers["Retry-After"] == "1"
    assert "promotion aborted" in payload["error"]
    old_fp = server.registry.get("m").fingerprint

    # The queued client was never dropped: pumping completes it bitwise
    # on the old weights (the promotion never swapped).
    while waiter.is_alive():
        server.pump(force=True)
        waiter.join(0.001)
    assert server.registry.get("m").fingerprint == old_fp

    # Retrying with a drained queue succeeds; rows flip to the new
    # weights exactly at the swap.
    status, _, _ = frontend.handle(
        "POST", "/v1/promote", swap_body(candidate_checkpoint), AUTH)
    assert status == 200
    new_rows = forward(server.registry.get("m").model, x)
    status, payload, _ = pump_while_waiting(
        server, lambda: frontend.handle("POST", "/v1/predict",
                                        _predict_body(x), AUTH))
    assert status == 200
    got = np.array([row["logits"] for row in payload["predictions"]])
    np.testing.assert_array_equal(got, new_rows.astype(got.dtype))
    assert not np.array_equal(new_rows, old_rows)


def test_inflight_requests_survive_promotion_and_rollback(
        split, base_checkpoint, candidate_checkpoint):
    """A promotion (then a rollback) racing live clients drops nothing:
    every queued request drains bitwise on the pre-swap weights."""
    frontend, server = make_frontend(base_checkpoint, reload_grace_s=5.0)
    x = split.test.images[:2]
    old_rows = forward(server.registry.get("m").model, x)

    for action, body in (("promote", swap_body(candidate_checkpoint)),
                         ("rollback", swap_body())):
        pre_rows = forward(server.registry.get("m").model, x)
        client = {}
        waiter = threading.Thread(
            target=lambda: client.update(reply=frontend.handle(
                "POST", "/v1/predict", _predict_body(x), AUTH)))
        waiter.start()
        while server.pending_examples == 0:
            time.sleep(0.001)
        swapper = {}
        swap = threading.Thread(
            target=lambda: swapper.update(reply=frontend.handle(
                "POST", f"/v1/{action}", body, AUTH)))
        swap.start()
        while waiter.is_alive() or swap.is_alive():
            server.pump(force=True)
            time.sleep(0.001)
        status, payload, _ = client["reply"]
        assert status == 200                    # never dropped
        got = np.array([row["logits"] for row in payload["predictions"]])
        np.testing.assert_array_equal(got, pre_rows.astype(got.dtype))
        assert swapper["reply"][0] == 200

    # After promote+rollback the original weights are serving again.
    np.testing.assert_array_equal(
        forward(server.registry.get("m").model, x), old_rows)
