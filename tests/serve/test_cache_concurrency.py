"""PredictionCache under thread contention: counters must stay exact.

The cache is shared across lanes (and may be shared across servers), so
its LRU dict and hit/miss counters are mutated from whichever thread is
pumping.  Unguarded ``+=`` on the counters drops increments under
contention and concurrent ``OrderedDict`` mutation can corrupt the LRU;
this suite hammers one cache from many threads and asserts the exact
accounting invariant ``hits + misses == lookups``.
"""

import sys
import threading

import numpy as np
import pytest

from repro.serve.batcher import Prediction
from repro.serve.cache import PredictionCache


def make_examples(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 1, 4, 4)).astype(np.float32)


def prediction_for(i):
    return Prediction(label=int(i % 7),
                      logits=np.full(7, float(i), dtype=np.float32))


@pytest.fixture
def fast_thread_switching():
    """Force frequent GIL handoffs so counter races actually interleave."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


class TestThreadedCounters:
    THREADS = 8
    ROUNDS = 40
    EXAMPLES = 24

    def test_hits_plus_misses_equals_lookups(self, fast_thread_switching):
        cache = PredictionCache(max_entries=256)
        examples = make_examples(self.EXAMPLES)
        lookups = self.THREADS * self.ROUNDS * self.EXAMPLES
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for _ in range(self.ROUNDS):
                    results = cache.lookup("model-fp", examples)
                    for i, result in enumerate(results):
                        if result is None:
                            cache.store("model-fp", examples[i],
                                        prediction_for(i))
            except Exception as error:  # surfaced to the main thread
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert cache.hits + cache.misses == lookups
        # Every example is stored at least once, so misses are bounded by
        # the races on first sight: at most one miss per (thread, example).
        assert cache.misses <= self.THREADS * self.EXAMPLES
        assert cache.hits > 0

    def test_eviction_accounting_under_contention(self,
                                                  fast_thread_switching):
        """A cache smaller than the working set keeps len <= max_entries
        and exact counters while threads thrash it."""
        cache = PredictionCache(max_entries=8)
        examples = make_examples(self.EXAMPLES, seed=1)
        lookups = self.THREADS * self.ROUNDS * self.EXAMPLES

        def worker():
            for _ in range(self.ROUNDS):
                for i, result in enumerate(
                        cache.lookup("fp", examples)):
                    if result is None:
                        cache.store("fp", examples[i], prediction_for(i))

        threads = [threading.Thread(target=worker)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.hits + cache.misses == lookups
        assert len(cache) <= 8
        # The working set (24) exceeds the cap (8), so the thrash must
        # have evicted; same-key replacement stores never count.
        assert cache.evictions > 0
        assert cache.evictions <= cache.misses

    def test_hit_replay_stays_immutable_across_threads(self):
        """Concurrent hits each get their own logits copy."""
        cache = PredictionCache(max_entries=4)
        example = make_examples(1)[0]
        cache.store("fp", example, prediction_for(3))
        out = []

        def worker():
            result = cache.lookup("fp", example[None])[0]
            result.logits += 1.0  # mutating my copy must not leak
            out.append(result)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        clean = cache.lookup("fp", example[None])[0]
        np.testing.assert_array_equal(
            clean.logits, prediction_for(3).logits)
