"""DiskPredictionCache: the multi-process prediction-cache tier.

Pins the properties the SO_REUSEPORT deployment leans on: the
``PredictionCache`` duck type, atomic first-store-wins publication
(repeats stay bitwise identical to the first answer any worker served),
journal-driven global LRU eviction, torn-entry tolerance, and actual
cross-process sharing.
"""

import json
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.serve import DiskPredictionCache, PredictionCache
from repro.serve.batcher import Prediction


def make_prediction(seed=0):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=10).astype(np.float32)
    return Prediction(label=int(logits.argmax()), logits=logits,
                      score=float(seed), flagged=bool(seed % 2))


def example(seed=0):
    return np.random.default_rng(100 + seed).normal(
        size=(1, 8, 8)).astype(np.float32)


def test_disk_cache_roundtrip_and_counters(tmp_path):
    cache = DiskPredictionCache(tmp_path)
    x = example()
    (miss,) = cache.lookup("fp", x[None])
    assert miss is None and cache.misses == 1
    stored = make_prediction()
    cache.store("fp", x, stored)
    (hit,) = cache.lookup("fp", x[None])
    assert hit is not None and hit.from_cache
    assert hit.label == stored.label
    np.testing.assert_array_equal(hit.logits, stored.logits)
    assert hit.score == stored.score and hit.flagged == stored.flagged
    assert cache.hits == 1 and len(cache) == 1
    assert 0 < cache.hit_rate < 1
    # Different model fingerprint or different pixels: a miss.
    assert cache.lookup("other-fp", x[None]) == [None]
    assert cache.lookup("fp", (x + 1e-3)[None]) == [None]


def test_disk_cache_first_store_wins(tmp_path):
    """A same-key store keeps the first published entry — repeats must
    stay bitwise identical to the first answer any worker served."""
    cache = DiskPredictionCache(tmp_path)
    x = example()
    first = make_prediction(seed=1)
    drifted = make_prediction(seed=2)       # e.g. other batch composition
    cache.store("fp", x, first)
    cache.store("fp", x, drifted)
    (hit,) = cache.lookup("fp", x[None])
    np.testing.assert_array_equal(hit.logits, first.logits)
    assert hit.label == first.label


def test_disk_cache_survives_reopen(tmp_path):
    x = example()
    DiskPredictionCache(tmp_path).store("fp", x, make_prediction())
    reopened = DiskPredictionCache(tmp_path)
    (hit,) = reopened.lookup("fp", x[None])
    assert hit is not None and hit.from_cache


def test_disk_cache_spec_reopens(tmp_path):
    cache = DiskPredictionCache(tmp_path, max_entries=7)
    again = DiskPredictionCache(**cache.spec())
    assert again.root == cache.root and again.max_entries == 7


def test_disk_cache_evicts_global_lru(tmp_path):
    cache = DiskPredictionCache(tmp_path, max_entries=6)
    xs = [example(i) for i in range(8)]
    for i, x in enumerate(xs[:4]):
        cache.store("fp", x, make_prediction(i))
    # Touch the two oldest so they outrank the untouched pair.
    assert cache.lookup("fp", np.stack(xs[:2])) != [None, None]
    for i, x in enumerate(xs[4:8], start=4):
        cache.store("fp", x, make_prediction(i))
    cache._evict_over_cap()                 # deterministic, not amortized
    assert len(cache) == 6
    assert cache.evictions == 2
    # The touched entries survived over the untouched older ones.
    hits = cache.lookup("fp", np.stack(xs[:2]))
    assert all(h is not None for h in hits)
    assert cache.lookup("fp", np.stack(xs[2:4])) == [None, None]


def test_disk_cache_tolerates_torn_entries_and_journal(tmp_path):
    cache = DiskPredictionCache(tmp_path)
    x = example()
    cache.store("fp", x, make_prediction())
    key = cache.key("fp", x)
    with open(cache._path(key), "wb") as handle:
        handle.write(b"torn")               # crashed writer stand-in
    with open(cache._journal_path, "a") as handle:
        handle.write('{"key": "truncat')    # torn journal tail
    (miss,) = cache.lookup("fp", x[None])
    assert miss is None                     # dropped, counted a miss
    assert not os.path.exists(cache._path(key))
    # The torn journal line is skipped, not fatal.
    cache._evict_over_cap()


def test_disk_cache_journal_compaction(tmp_path):
    cache = DiskPredictionCache(tmp_path, max_entries=4)
    cache.COMPACT_THRESHOLD = 8
    x = example()
    cache.store("fp", x, make_prediction())
    for _ in range(10):                     # 10 redundant touches
        cache.lookup("fp", x[None])
    cache._evict_over_cap()                 # replay compacts
    with open(cache._journal_path) as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == 1
    (hit,) = cache.lookup("fp", x[None])    # entry still lives
    assert hit is not None


def test_disk_cache_matches_memory_cache_semantics(tmp_path):
    """Same probe sequence, same hit/miss pattern as the in-memory LRU."""
    memory = PredictionCache(max_entries=64)
    disk = DiskPredictionCache(tmp_path, max_entries=64)
    xs = [example(i) for i in range(6)]
    for cache in (memory, disk):
        for i, x in enumerate(xs[:3]):
            cache.store("fp", x, make_prediction(i))
        probed = cache.lookup("fp", np.stack(xs))
        assert [p is not None for p in probed] == [True] * 3 + [False] * 3
        assert (cache.hits, cache.misses) == (3, 3)


def _worker_store(root, seed):
    cache = DiskPredictionCache(root)
    x = np.random.default_rng(999).normal(size=(1, 8, 8)).astype(np.float32)
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=10).astype(np.float32)
    cache.store("fp", x, Prediction(label=int(seed), logits=logits,
                                    score=float(seed), flagged=False))


def test_disk_cache_shared_across_processes(tmp_path):
    """N processes racing to publish the same key: exactly one entry
    wins and every process replays it afterwards."""
    ctx = mp.get_context("spawn")
    procs = [ctx.Process(target=_worker_store, args=(str(tmp_path), i))
             for i in range(4)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60.0)
        assert p.exitcode == 0
    cache = DiskPredictionCache(tmp_path)
    assert len(cache) == 1
    x = np.random.default_rng(999).normal(size=(1, 8, 8)).astype(np.float32)
    (hit,) = cache.lookup("fp", x[None])
    assert hit is not None and hit.label in range(4)
    # No stray tmp files from the racing writers.
    assert not [f for f in os.listdir(tmp_path) if ".tmp" in f]


def test_disk_cache_validates_max_entries(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        DiskPredictionCache(tmp_path, max_entries=0)
    unbounded = DiskPredictionCache(tmp_path, max_entries=None)
    unbounded.store("fp", example(), make_prediction())
