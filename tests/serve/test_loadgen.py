"""Synthetic traffic generation and the measured load run."""

import numpy as np
import pytest

from repro.data import load_split
from repro.models import build_classifier
from repro.serve import (
    ModelRegistry,
    Server,
    build_mixed_load,
    run_load,
)


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 32, seed=7)


def pools(split):
    clean = split.test.images[:16]
    adv = np.clip(clean + 0.5, -1, 1).astype(np.float32)  # stand-in noise
    return clean, adv


def test_mixed_load_is_seed_deterministic(split):
    clean, adv = pools(split)
    a = build_mixed_load(clean, adv, num_requests=20, seed=3)
    b = build_mixed_load(clean, adv, num_requests=20, seed=3)
    assert len(a) == len(b) == 20
    for ra, rb in zip(a, b):
        assert ra.adversarial == rb.adversarial
        np.testing.assert_array_equal(ra.images, rb.images)
        np.testing.assert_array_equal(ra.indices, rb.indices)
    c = build_mixed_load(clean, adv, num_requests=20, seed=4)
    assert any(not np.array_equal(ra.images, rc.images)
               for ra, rc in zip(a, c))


def test_mixed_load_respects_fractions_and_sizes(split):
    clean, adv = pools(split)
    all_adv = build_mixed_load(clean, adv, num_requests=10,
                               adv_fraction=1.0, max_request_size=3, seed=0)
    assert all(r.adversarial for r in all_adv)
    assert all(1 <= len(r.images) <= 3 for r in all_adv)
    none_adv = build_mixed_load(clean, adv, num_requests=10,
                                adv_fraction=0.0, seed=0)
    assert not any(r.adversarial for r in none_adv)
    with pytest.raises(ValueError, match="adv_fraction"):
        build_mixed_load(clean, adv, 1, adv_fraction=2.0)
    with pytest.raises(ValueError, match="non-empty"):
        build_mixed_load(clean[:0], adv, 1)


def test_run_load_reports_gate_split_and_throughput(split):
    clean, adv = pools(split)
    registry = ModelRegistry()
    registry.add("m", build_classifier("digits", width=4, seed=0))
    server = Server(registry, max_batch=8, gate="confidence",
                    gate_threshold=0.5)
    traffic = build_mixed_load(clean, adv, num_requests=24,
                               adv_fraction=0.5, seed=1)
    report = run_load(server, "m", traffic)
    assert all(h.done for h in report.handles)
    examples = sum(len(r.images) for r in traffic)
    assert report.examples == examples
    assert report.throughput > 0
    metrics = report.gate_metrics
    assert metrics.adversarial_examples + metrics.clean_examples == examples
    assert metrics.threshold == 0.5
    # Served accuracy against the pool's ground truth is well-formed.
    labels_for = {i: int(label)
                  for i, label in enumerate(split.test.labels[:16])}
    assert 0.0 <= report.accuracy(labels_for) <= 1.0


# --------------------------------------------------------------------- #
# pump_every boundaries (0 used to silently mean "every submission")
# --------------------------------------------------------------------- #
def _counting_server():
    registry = ModelRegistry()
    registry.add("m", build_classifier("digits", width=4, seed=0))
    # Huge batch + deadline: nothing flushes unless forced, so pump
    # *calls* (not flushes) are what the wrapper observes.
    server = Server(registry, max_batch=256, deadline_ms=1e9)
    forced = []
    original = server.pump

    def pump(force=False):
        forced.append(force)
        return original(force=force)

    server.pump = pump
    return server, forced


def test_run_load_pump_every_zero_is_drain_only(split):
    """Regression: ``pump_every=0`` fell through ``not pump_every`` and
    pumped after every submission — the exact opposite of drain-only."""
    clean, adv = pools(split)
    server, forced = _counting_server()
    traffic = build_mixed_load(clean, adv, num_requests=6, seed=2)
    report = run_load(server, "m", traffic, pump_every=0)
    # Only the final drain pumped (force=True via server.drain()).
    assert forced == [True]
    assert all(h.done for h in report.handles)


def test_run_load_pump_every_one_pumps_per_submission(split):
    clean, adv = pools(split)
    server, forced = _counting_server()
    traffic = build_mixed_load(clean, adv, num_requests=6, seed=2)
    run_load(server, "m", traffic, pump_every=1)
    assert forced == [False] * 6 + [True]


def test_run_load_default_pumps_per_submission(split):
    clean, adv = pools(split)
    server, forced = _counting_server()
    traffic = build_mixed_load(clean, adv, num_requests=4, seed=2)
    run_load(server, "m", traffic)
    assert forced == [False] * 4 + [True]


def test_run_load_pump_every_k_and_negative(split):
    clean, adv = pools(split)
    server, forced = _counting_server()
    traffic = build_mixed_load(clean, adv, num_requests=5, seed=2)
    run_load(server, "m", traffic, pump_every=2)
    assert forced == [False, False, True]   # after #2, #4, then drain
    with pytest.raises(ValueError, match="pump_every"):
        run_load(server, "m", traffic, pump_every=-1)
