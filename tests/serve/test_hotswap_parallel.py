"""Hot-swapping a data-parallel-trained checkpoint into a live server.

The bridge between the training tentpole and the serving tier: a
``ParallelTrainEngine`` checkpoint (``--workers N``, real spawn pool)
must serve **bitwise** like any other archive — loaded through the
registry, promoted over a live model, and forwarded identically on
every registered backend.
"""

import dataclasses

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.data import load_split
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer
from repro.serve import ModelRegistry, Server
from repro.train import save_checkpoint
from repro.train.checkpoint import read_checkpoint_meta
from repro.train.parallel import ParallelTrainEngine
from repro.utils.pool import SpawnPool

WIDTH = 4
ALL_BACKENDS = backend.available_backends()


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 32, seed=7)


def tiny_cfg():
    return dataclasses.replace(get_config("fast").dataset("digits"),
                               model_width=WIDTH, batch_size=32)


@pytest.fixture(scope="module")
def parallel_checkpoint(split, tmp_path_factory):
    """A zk-gandef archive trained with ``--workers 2`` (spawn pool)."""
    path = tmp_path_factory.mktemp("hotswap") / "parallel.npz"
    trainer = build_trainer("zk-gandef", tiny_cfg(), seed=3)
    trainer.epochs = 1
    with SpawnPool(2) as pool:
        engine = ParallelTrainEngine(trainer, workers=2,
                                     pool=pool).attach()
        try:
            trainer.fit(split.train)
            save_checkpoint(trainer, path)
        finally:
            engine.close()
    return path, trainer


def direct_rows(model, images, backend_name):
    with backend.use(backend_name) as b:
        with nn.inference_mode(model), nn.no_grad():
            return b.to_numpy(model(nn.Tensor(images)).data)


def test_archive_records_the_worker_count(parallel_checkpoint):
    path, _ = parallel_checkpoint
    meta = read_checkpoint_meta(path)
    assert meta["trainer"] == "zk-gandef" and meta["workers"] == 2


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_parallel_checkpoint_serves_bitwise(backend_name, split,
                                            parallel_checkpoint):
    """Served rows == direct forwards of the trainer that produced the
    archive, per composed batch, on every backend."""
    path, trainer = parallel_checkpoint
    registry = ModelRegistry()
    entry = registry.load("m", path, dataset="digits", width=WIDTH,
                          backend=backend_name)
    assert entry.backend == backend_name
    assert entry.has_discriminator            # gandef serves its gate
    server = Server(registry, max_batch=8, deadline_ms=0.0, gate="none")
    x = split.test.images[:8]                 # one exactly-full batch
    handle = server.submit("m", x)
    assert server.pump(force=True) >= 1
    np.testing.assert_array_equal(
        handle.logits, direct_rows(trainer.model, x, backend_name))


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_parallel_checkpoint_promotes_into_live_server(
        backend_name, split, parallel_checkpoint, tmp_path):
    """Promote the --workers 2 archive over a serving model: rows flip
    bitwise from the old weights to the parallel-trained ones."""
    path, trainer = parallel_checkpoint
    base = tmp_path / "base.npz"
    base_trainer = build_trainer("vanilla", tiny_cfg(), seed=7)
    base_trainer.epochs = 1
    base_trainer.fit(split.train)
    save_checkpoint(base_trainer, base)

    registry = ModelRegistry()
    registry.load("m", base, dataset="digits", width=WIDTH,
                  backend=backend_name)
    server = Server(registry, max_batch=8, deadline_ms=0.0, gate="none")
    x = split.test.images[:8]
    before = server.submit("m", x)
    assert server.pump(force=True) >= 1
    np.testing.assert_array_equal(
        before.logits, direct_rows(base_trainer.model, x, backend_name))

    registry.promote("m", path, dataset="digits", width=WIDTH,
                     backend=backend_name)
    after = server.submit("m", x)
    assert server.pump(force=True) >= 1
    want = direct_rows(trainer.model, x, backend_name)
    np.testing.assert_array_equal(after.logits, want)
    assert not np.array_equal(before.logits, after.logits)
