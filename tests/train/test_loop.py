"""TrainLoop: event dispatch, history recording, stop control, mode
restore invariants."""

import numpy as np
import pytest

from repro.defenses import VanillaTrainer
from repro.train import (
    Callback,
    DivergenceGuard,
    LambdaCallback,
    TrainLoop,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


def make_trainer(**kwargs):
    defaults = dict(epochs=3, batch_size=16, seed=42)
    defaults.update(kwargs)
    return VanillaTrainer(TinyNet(num_classes=4, seed=3), **defaults)


class Recorder(Callback):
    def __init__(self):
        self.events = []

    def on_train_start(self, loop):
        self.events.append("train_start")

    def on_epoch_start(self, loop, epoch):
        self.events.append(f"epoch_start:{epoch}")

    def on_batch_end(self, loop, epoch, batch_index, loss):
        self.events.append(f"batch:{epoch}.{batch_index}")

    def on_epoch_end(self, loop, epoch, logs):
        self.events.append(f"epoch_end:{epoch}")

    def on_train_end(self, loop):
        self.events.append("train_end")


class TestEventOrdering:
    def test_full_event_sequence(self, blobs4):
        trainer = make_trainer(epochs=2, batch_size=32)
        rec = Recorder()
        trainer.fit(blobs4, callbacks=[rec])
        # 64 examples / 32 per batch = 2 batches per epoch
        assert rec.events == [
            "train_start",
            "epoch_start:0", "batch:0.0", "batch:0.1", "epoch_end:0",
            "epoch_start:1", "batch:1.0", "batch:1.1", "epoch_end:1",
            "train_end",
        ]

    def test_epoch_logs_contents(self, blobs4):
        seen = []
        trainer = make_trainer(epochs=1)
        trainer.fit(blobs4, callbacks=[
            LambdaCallback(on_epoch_end=lambda loop, e, logs:
                           seen.append(logs))])
        (logs,) = seen
        assert logs.epoch == 0
        assert np.isfinite(logs.loss)
        assert logs.seconds > 0
        assert logs.lr == pytest.approx(trainer.optimizer.lr)

    def test_history_matches_logs(self, blobs4):
        losses = []
        trainer = make_trainer()
        h = trainer.fit(blobs4, callbacks=[
            LambdaCallback(on_epoch_end=lambda loop, e, logs:
                           losses.append(logs.loss))])
        assert h.losses == losses
        assert h.epochs == 3


class TestRunControl:
    def test_request_stop_halts_after_epoch(self, blobs4):
        class StopAtOne(Callback):
            def on_epoch_end(self, loop, epoch, logs):
                if epoch == 1:
                    loop.request_stop("enough")

        trainer = make_trainer(epochs=5)
        h = trainer.fit(blobs4, callbacks=[StopAtOne()])
        assert h.epochs == 2
        assert h.stop_reason == "enough"
        assert trainer.completed_epochs == 2

    def test_completed_trainer_refit_is_noop(self, blobs4):
        trainer = make_trainer()
        h = trainer.fit(blobs4)
        losses = list(h.losses)
        h2 = trainer.fit(blobs4)
        assert h2.losses == losses  # nothing re-ran or was appended

    def test_fresh_run_clears_stale_stop_reason(self, blobs4):
        trainer = make_trainer(epochs=2)
        trainer.history.stop_reason = "stale"
        h = trainer.fit(blobs4)
        assert h.stop_reason is None

    def test_record_history_off_leaves_history_empty(self, blobs4):
        trainer = make_trainer(epochs=1)
        TrainLoop(trainer, record_history=False).run(blobs4)
        assert trainer.history.epochs == 0
        assert trainer.completed_epochs == 1


class TestModeRestore:
    def test_model_left_in_eval_mode_after_run(self, blobs4):
        trainer = make_trainer(epochs=1)
        trainer.fit(blobs4)
        assert trainer.model.training is False

    def test_raise_mid_epoch_restores_eval_and_history(self, blobs4):
        trainer = make_trainer(epochs=3)
        calls = []

        original = trainer.train_step

        def explode(images, labels):
            if calls:
                raise RuntimeError("killed mid-epoch")
            calls.append(1)
            return original(images, labels)

        trainer.train_step = explode
        with pytest.raises(RuntimeError):
            trainer.fit(blobs4)
        # The satellite invariant: no train-mode leak, no partial epoch.
        assert trainer.model.training is False
        assert trainer.history.epochs == 0
        assert trainer.completed_epochs == 0


class TestDivergenceGuard:
    def test_halts_on_nan_loss(self, blobs4):
        trainer = make_trainer(epochs=5)
        original = trainer.train_step
        trainer.train_step = lambda x, y: float("nan") \
            if trainer.completed_epochs >= 1 else original(x, y)
        h = trainer.fit(blobs4, callbacks=[DivergenceGuard()])
        assert h.epochs == 2  # one good epoch + the nan epoch, then halt
        assert h.diverged()
        assert "diverged" in h.stop_reason

    def test_patience_tolerates_transients(self, blobs4):
        trainer = make_trainer(epochs=4)
        original = trainer.train_step
        # Only epoch 1 is non-finite; patience=1 must ride it out.
        trainer.train_step = lambda x, y: float("inf") \
            if trainer.completed_epochs == 1 else original(x, y)
        h = trainer.fit(blobs4, callbacks=[DivergenceGuard(patience=1)])
        assert h.epochs == 4
        assert h.stop_reason is None

    def test_finite_run_untouched(self, blobs4):
        h = make_trainer().fit(blobs4, callbacks=[DivergenceGuard()])
        assert h.epochs == 3
        assert h.stop_reason is None

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            DivergenceGuard(patience=-1)


class TestLoopEquivalence:
    def test_callbacks_do_not_change_training(self, blobs4):
        """A pile of passive callbacks must not perturb the run."""
        plain = make_trainer()
        h_plain = plain.fit(blobs4)
        watched = make_trainer()
        h_watched = watched.fit(
            blobs4, callbacks=[Recorder(), DivergenceGuard(),
                               LambdaCallback()])
        assert h_plain.losses == h_watched.losses
        for p, q in zip(plain.model.parameters(),
                        watched.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)
