"""LR schedulers: schedule math and in-loop application."""

import pytest

from repro.defenses import VanillaTrainer
from repro.train import (
    CosineLR,
    LambdaCallback,
    StepLR,
    WarmupLR,
    build_scheduler,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


class TestStepLR:
    def test_decay_boundaries(self):
        s = StepLR(step_size=2, gamma=0.1, base_lr=1.0)
        assert [s.lr_at(e, 6) for e in range(6)] == \
            pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(step_size=0)
        with pytest.raises(ValueError):
            StepLR(step_size=2, gamma=0.0)
        with pytest.raises(ValueError):
            StepLR(step_size=2, base_lr=-1.0)


class TestCosineLR:
    def test_endpoints(self):
        s = CosineLR(total_epochs=11, min_lr=0.001, base_lr=0.1)
        assert s.lr_at(0, 11) == pytest.approx(0.1)
        assert s.lr_at(10, 11) == pytest.approx(0.001)

    def test_midpoint(self):
        s = CosineLR(total_epochs=11, min_lr=0.0, base_lr=1.0)
        assert s.lr_at(5, 11) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        s = CosineLR(total_epochs=20, base_lr=0.1)
        rates = [s.lr_at(e, 20) for e in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_span_defaults_to_trainer_epochs(self):
        s = CosineLR(base_lr=1.0)
        assert s.lr_at(4, 5) == pytest.approx(0.0)


class TestWarmupLR:
    def test_linear_ramp(self):
        s = WarmupLR(warmup_epochs=4, base_lr=0.8)
        assert [s.lr_at(e, 10) for e in range(4)] == \
            pytest.approx([0.2, 0.4, 0.6, 0.8])

    def test_holds_base_after_warmup_without_inner(self):
        s = WarmupLR(warmup_epochs=2, base_lr=0.5)
        assert s.lr_at(7, 10) == pytest.approx(0.5)

    def test_inner_schedule_rebased(self):
        inner = CosineLR(total_epochs=4, min_lr=0.0, base_lr=1.0)
        s = WarmupLR(warmup_epochs=2, after=inner, base_lr=1.0)
        assert s.lr_at(2, 6) == pytest.approx(1.0)   # inner epoch 0
        assert s.lr_at(5, 6) == pytest.approx(0.0)   # inner epoch 3 (last)


class TestBuildScheduler:
    def test_none_returns_none(self):
        assert build_scheduler("none", base_lr=0.1, total_epochs=5) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            build_scheduler("exotic", base_lr=0.1, total_epochs=5)

    @pytest.mark.parametrize("kind,cls", [
        ("step", StepLR), ("cosine", CosineLR),
        ("warmup-cosine", WarmupLR),
    ])
    def test_kinds(self, kind, cls):
        s = build_scheduler(kind, base_lr=0.1, total_epochs=10,
                            warmup_epochs=2)
        assert isinstance(s, cls)
        assert s.base_lr == pytest.approx(0.1)


class TestInLoopApplication:
    def test_scheduler_sets_rate_per_epoch(self, blobs4):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=4,
                                 batch_size=32, lr=1.0)
        seen = []
        trainer.fit(blobs4, callbacks=[
            StepLR(step_size=2, gamma=0.1),
            LambdaCallback(on_epoch_end=lambda loop, e, logs:
                           seen.append(logs.lr))])
        assert seen == pytest.approx([1.0, 1.0, 0.1, 0.1])

    def test_base_lr_captured_from_optimizer(self, blobs4):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=2,
                                 batch_size=32, lr=0.25)
        scheduler = StepLR(step_size=1, gamma=0.5)
        trainer.fit(blobs4, callbacks=[scheduler])
        assert scheduler.base_lr == pytest.approx(0.25)
        assert trainer.optimizer.lr == pytest.approx(0.125)

    def test_cosine_anneals_over_run(self, blobs4):
        trainer = VanillaTrainer(TinyNet(num_classes=4), epochs=5,
                                 batch_size=32, lr=0.1)
        seen = []
        trainer.fit(blobs4, callbacks=[
            CosineLR(min_lr=0.0),
            LambdaCallback(on_epoch_end=lambda loop, e, logs:
                           seen.append(logs.lr))])
        assert seen[0] == pytest.approx(0.1)
        assert seen[-1] == pytest.approx(0.0, abs=1e-9)
        assert seen[2] == pytest.approx(0.05)
