"""Checkpoint archives: round-trips, atomicity, validation."""

import os

import numpy as np
import pytest

from repro.defenses import VanillaTrainer, ZKGanDefTrainer
from repro.train import (
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


def vanilla_trainer(blobs4, **kwargs):
    model = TinyNet(num_classes=4, seed=3)
    model(blobs4.images[:1])  # materialize lazy head before optimizer build
    defaults = dict(epochs=3, batch_size=16, seed=42)
    defaults.update(kwargs)
    return VanillaTrainer(model, **defaults)


def gandef_trainer(blobs4, **kwargs):
    model = TinyNet(num_classes=4, seed=3)
    model(blobs4.images[:1])  # materialize lazy head before optimizer build
    defaults = dict(num_logits=4, sigma=0.3, epochs=3, batch_size=16,
                    warmup_epochs=1, lr=0.01, seed=42)
    defaults.update(kwargs)
    return ZKGanDefTrainer(model, **defaults)


class TestRoundTrip:
    def test_everything_survives(self, blobs4, tmp_path):
        a = vanilla_trainer(blobs4)
        a.fit(blobs4)
        path = tmp_path / "ck.npz"
        save_checkpoint(a, path)
        b = vanilla_trainer(blobs4, seed=42)
        load_checkpoint(b, path)
        assert b.completed_epochs == 3
        assert b.history.losses == a.history.losses
        assert b.history.epoch_seconds == a.history.epoch_seconds
        assert b.optimizer.steps == a.optimizer.steps
        for p, q in zip(a.model.parameters(), b.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_rng_streams_survive(self, blobs4, tmp_path):
        a = vanilla_trainer(blobs4)
        a.fit(blobs4)
        path = tmp_path / "ck.npz"
        save_checkpoint(a, path)
        b = vanilla_trainer(blobs4)
        load_checkpoint(b, path)
        # Identical draws after restore == identical generator state.
        np.testing.assert_array_equal(a.batch_rng.integers(0, 1 << 30, 16),
                                      b.batch_rng.integers(0, 1 << 30, 16))

    def test_gandef_dual_optimizer_round_trip(self, blobs4, tmp_path):
        a = gandef_trainer(blobs4)
        a.fit(blobs4)
        path = tmp_path / "ck.npz"
        save_checkpoint(a, path)
        b = gandef_trainer(blobs4)
        load_checkpoint(b, path)
        for p, q in zip(a.discriminator.parameters(),
                        b.discriminator.parameters()):
            np.testing.assert_array_equal(p.data, q.data)
        assert b.disc_optimizer.steps == a.disc_optimizer.steps
        for buf in ("_m", "_v"):
            for x, y in zip(getattr(a.disc_optimizer, buf),
                            getattr(b.disc_optimizer, buf)):
                np.testing.assert_array_equal(x, y)
        assert b.history.extra["disc_loss"] == a.history.extra["disc_loss"]

    def test_history_stop_reason_survives(self, blobs4, tmp_path):
        a = vanilla_trainer(blobs4)
        a.fit(blobs4)
        a.history.stop_reason = "diverged: test"
        save_checkpoint(a, tmp_path / "ck.npz")
        b = vanilla_trainer(blobs4)
        load_checkpoint(b, tmp_path / "ck.npz")
        assert b.history.stop_reason == "diverged: test"


class TestValidation:
    def test_wrong_trainer_kind_rejected(self, blobs4, tmp_path):
        a = vanilla_trainer(blobs4)
        save_checkpoint(a, tmp_path / "ck.npz")
        b = gandef_trainer(blobs4)
        with pytest.raises(ValueError, match="vanilla"):
            load_checkpoint(b, tmp_path / "ck.npz")

    def test_weights_only_archive_rejected(self, blobs4, tmp_path):
        from repro.nn.serialization import save_state
        a = vanilla_trainer(blobs4)
        save_state(a.model, tmp_path / "weights.npz")
        with pytest.raises(ValueError, match="not a training checkpoint"):
            load_checkpoint(a, tmp_path / "weights.npz")

    def test_missing_file_raises(self, blobs4, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(vanilla_trainer(blobs4), tmp_path / "nope.npz")


class TestCheckpointerCallback:
    def test_saves_every_epoch_by_default(self, blobs4, tmp_path):
        trainer = vanilla_trainer(blobs4)
        ck = Checkpointer(tmp_path)
        trainer.fit(blobs4, callbacks=[ck])
        assert ck.saves == 3
        assert ck.exists()

    def test_cadence_still_saves_final_epoch(self, blobs4, tmp_path):
        trainer = vanilla_trainer(blobs4, epochs=5)
        ck = Checkpointer(tmp_path, every=2)
        trainer.fit(blobs4, callbacks=[ck])
        # epochs 2, 4 by cadence + epoch 5 because it is last
        assert ck.saves == 3
        b = vanilla_trainer(blobs4)
        ck.try_resume(b)
        assert b.completed_epochs == 5

    def test_checkpoint_contains_current_epoch_history(self, blobs4,
                                                       tmp_path):
        trainer = vanilla_trainer(blobs4, epochs=2)
        ck = Checkpointer(tmp_path)
        trainer.fit(blobs4, callbacks=[ck])
        b = vanilla_trainer(blobs4)
        load_checkpoint(b, ck.path)
        assert b.history.epochs == 2  # checkpointer ran after the recorder

    def test_try_resume_without_checkpoint(self, blobs4, tmp_path):
        ck = Checkpointer(tmp_path / "empty")
        assert ck.try_resume(vanilla_trainer(blobs4)) is False

    def test_no_temp_debris(self, blobs4, tmp_path):
        trainer = vanilla_trainer(blobs4)
        trainer.fit(blobs4, callbacks=[Checkpointer(tmp_path)])
        assert os.listdir(tmp_path) == ["checkpoint.npz"]

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, every=0)

    def test_fresh_run_invalidates_stale_checkpoint(self, blobs4, tmp_path):
        """A from-scratch run must not leave a previous run's checkpoint
        resurrectable: were the old archive kept until the first new save,
        a kill inside that window + --resume would restore the old run."""
        old = vanilla_trainer(blobs4)
        old.fit(blobs4, callbacks=[Checkpointer(tmp_path)])
        fresh = vanilla_trainer(blobs4, epochs=5)
        ck = Checkpointer(tmp_path, every=3)

        class KillBeforeFirstSave(Exception):
            pass

        original = fresh.train_step

        def explode(images, labels):
            raise KillBeforeFirstSave()

        fresh.train_step = explode
        with pytest.raises(KillBeforeFirstSave):
            fresh.fit(blobs4, callbacks=[ck])
        assert not ck.exists()  # stale epoch-3 archive is gone
        fresh.train_step = original

    def test_epoch_seconds_exclude_callback_time(self, blobs4, tmp_path):
        """Slow callbacks (checkpoint saves, probes) must not leak into
        the next epoch's ``epoch_seconds`` — that column is Figure 5."""
        import time

        from repro.train import LambdaCallback

        trainer = vanilla_trainer(blobs4, epochs=3)
        h = trainer.fit(blobs4, callbacks=[
            LambdaCallback(on_epoch_end=lambda loop, e, logs:
                           time.sleep(0.2))])
        # Training an epoch on 64 tiny images takes ~ms; with the 0.2s
        # callback charged to the next epoch it would read >= 0.2s.
        assert all(s < 0.15 for s in h.epoch_seconds[1:]), h.epoch_seconds
