"""Data-parallel training with a real spawn pool.

The in-process suite (test_parallel.py) pins the windowing math and the
``workers=1`` baseline cheaply; these tests pin the tentpole claim: a
training run is **bit-identical at any worker count** — parameters,
optimizer effects (via the parameters), reported losses and every RNG
stream — for every defense trainer, across ragged shards, more workers
than shards, and a mid-run kill that resumes under a different worker
count.  Kept small: each pool spawn costs interpreter startups, so the
pools are module-scoped and shared (which also exercises engine reuse of
an external pool — the ``repro train`` wiring).
"""

import numpy as np
import pytest

from repro.defenses.clp import CLPTrainer
from repro.defenses.cls import CLSTrainer
from repro.defenses.gandef import ZKGanDefTrainer
from repro.defenses.vanilla import VanillaTrainer
from repro.train import Checkpointer
from repro.train.parallel import ParallelTrainEngine
from repro.utils.pool import SpawnPool
from tests.conftest import make_blobs_dataset
from tests.train.test_parallel import dropout_model

#: batch 12 with shard 5 -> shards of 5, 5, 2: every step has a ragged
#: final shard, and the 4-worker pool has more workers than shards.
SHARD_SIZE = 5
BATCH = 12


@pytest.fixture(scope="module")
def pool2():
    with SpawnPool(2) as pool:
        yield pool


@pytest.fixture(scope="module")
def pool4():
    with SpawnPool(4) as pool:
        yield pool


def make_trainer(kind, seed=0, epochs=2):
    model = dropout_model(seed)
    common = dict(epochs=epochs, batch_size=BATCH, seed=seed)
    if kind == "vanilla":
        return VanillaTrainer(model, **common)
    if kind == "cls":
        return CLSTrainer(model, lam=0.1, sigma=0.1, **common)
    if kind == "clp":
        return CLPTrainer(model, lam=0.1, sigma=0.1, **common)
    if kind == "zk-gandef":
        # warmup 1 of 2 epochs: both the gamma=0 and the gamma>0
        # classifier programs run, plus the discriminator half-steps.
        return ZKGanDefTrainer(model, num_logits=4, gamma=0.5,
                               warmup_epochs=1, sigma=0.5, **common)
    raise KeyError(kind)


def fingerprint(trainer):
    """Everything the bit-identity claim covers, as comparable values."""
    params = {
        f"{mod}.{name}": np.asarray(p.data).copy()
        for mod, module in trainer.checkpoint_modules().items()
        for name, p in module.named_parameters()
    }
    streams = {name: gen.bit_generator.state
               for name, gen in trainer.rng_streams().items()}
    return params, streams


def assert_identical(a, b, label):
    (params_a, streams_a), (params_b, streams_b) = a, b
    assert params_a.keys() == params_b.keys()
    for name in params_a:
        assert np.array_equal(params_a[name], params_b[name]), \
            f"{label}: param {name}"
    assert streams_a == streams_b, f"{label}: rng streams"


def run_training(kind, workers, pool=None, epochs=2):
    data = make_blobs_dataset(n=24, seed=7)
    trainer = make_trainer(kind, epochs=epochs)
    engine = ParallelTrainEngine(trainer, workers=workers,
                                 shard_size=SHARD_SIZE, pool=pool).attach()
    try:
        history = trainer.fit(data)
    finally:
        engine.close()
    return fingerprint(trainer), list(history.losses)


@pytest.mark.parametrize("kind", ["vanilla", "cls", "clp", "zk-gandef"])
def test_bit_identity_across_worker_counts(kind, pool2, pool4):
    base_fp, base_losses = run_training(kind, workers=1)
    assert all(np.isfinite(v) for v in base_losses)
    for pool in (pool2, pool4):
        got_fp, got_losses = run_training(kind, workers=pool.workers,
                                          pool=pool)
        label = f"{kind} @ {pool.workers} workers"
        assert got_losses == base_losses, label
        assert_identical(base_fp, got_fp, label)


def test_kill_and_resume_across_worker_count_change(pool2, pool4,
                                                    tmp_path):
    data = make_blobs_dataset(n=24, seed=7)

    # The uninterrupted reference: 3 epochs, in-process engine.
    ref = make_trainer("vanilla", epochs=3)
    engine = ParallelTrainEngine(ref, workers=1,
                                 shard_size=SHARD_SIZE).attach()
    ref.fit(data)
    engine.close()

    # Killed after 2 epochs at 2 workers...
    first = make_trainer("vanilla", epochs=2)
    engine = ParallelTrainEngine(first, workers=2, shard_size=SHARD_SIZE,
                                 pool=pool2).attach()
    first.fit(data, callbacks=[Checkpointer(tmp_path, every=1)])
    engine.close()

    # ...resumed under 4 workers: the checkpointed worker count is
    # provenance only, never load-bearing.
    resumed = make_trainer("vanilla", epochs=3)
    checkpointer = Checkpointer(tmp_path, every=1)
    assert checkpointer.try_resume(resumed)
    assert resumed.completed_epochs == 2
    engine = ParallelTrainEngine(resumed, workers=4,
                                 shard_size=SHARD_SIZE,
                                 pool=pool4).attach()
    resumed.fit(data, callbacks=[checkpointer])
    engine.close()

    assert resumed.history.losses == ref.history.losses
    assert_identical(fingerprint(ref), fingerprint(resumed),
                     "resume across worker-count change")


def test_run_train_shares_one_pool_with_probes(tmp_path):
    """``repro train --workers 2`` end-to-end: the gradient engine and
    the robustness probes drive the same pool, the run checkpoints its
    worker count, and the losses match the in-process engine run."""
    from repro.experiments import run_train
    from repro.train.checkpoint import read_checkpoint_meta

    pooled = run_train("digits", preset="fast", defense="vanilla", seed=0,
                       epochs=1, checkpoint_dir=tmp_path / "w2",
                       probe_every=1, workers=2)
    assert pooled.completed_epochs == 1
    assert len(pooled.probes) == 1
    meta = read_checkpoint_meta(pooled.checkpoint_path)
    assert meta["workers"] == 2

    baseline = run_train("digits", preset="fast", defense="vanilla",
                         seed=0, epochs=1, workers=1)
    assert pooled.history.losses == baseline.history.losses
