"""RobustnessProbe and JSONL metrics streaming."""

import json

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.defenses import VanillaTrainer
from repro.eval.engine import AttackSuite
from repro.train import (
    JsonlWriter,
    MetricsLogger,
    RobustnessProbe,
    read_jsonl,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


def make_trainer(**kwargs):
    defaults = dict(epochs=4, batch_size=16, seed=42)
    defaults.update(kwargs)
    return VanillaTrainer(TinyNet(num_classes=4, seed=3), **defaults)


def make_probe(blobs4, **kwargs):
    suite = AttackSuite({"fgsm": FGSM(eps=0.2)})
    return RobustnessProbe(suite, blobs4.images[:16], blobs4.labels[:16],
                           **kwargs)


class TestRobustnessProbe:
    def test_probes_every_k_and_final_epoch(self, blobs4):
        probe = make_probe(blobs4, every=3)
        trainer = make_trainer(epochs=4)
        trainer.fit(blobs4, callbacks=[probe])
        # epoch 3 by cadence, epoch 4 because it is last
        assert probe.probe_epochs == [2, 3]
        assert len(probe.results) == 2

    def test_history_series(self, blobs4):
        probe = make_probe(blobs4, every=2)
        trainer = make_trainer(epochs=4)
        h = trainer.fit(blobs4, callbacks=[probe])
        assert h.extra["probe_epoch"] == [1.0, 3.0]
        assert len(h.extra["probe_clean"]) == 2
        assert len(h.extra["probe_fgsm"]) == 2
        assert all(0.0 <= v <= 1.0 for v in h.extra["probe_clean"])

    def test_probe_does_not_perturb_training(self, blobs4):
        plain = make_trainer()
        h_plain = plain.fit(blobs4)
        probed = make_trainer()
        h_probed = probed.fit(blobs4,
                              callbacks=[make_probe(blobs4, every=1)])
        assert h_plain.losses == h_probed.losses
        for p, q in zip(plain.model.parameters(),
                        probed.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_model_back_in_eval_after_probe(self, blobs4):
        trainer = make_trainer(epochs=2)
        trainer.fit(blobs4, callbacks=[make_probe(blobs4, every=1)])
        assert trainer.model.training is False

    def test_writer_records(self, blobs4, tmp_path):
        writer = JsonlWriter(tmp_path / "m.jsonl")
        probe = make_probe(blobs4, every=2, writer=writer)
        make_trainer(epochs=4).fit(blobs4, callbacks=[probe])
        records = read_jsonl(tmp_path / "m.jsonl", event="probe")
        assert [r["epoch"] for r in records] == [1, 3]
        for r in records:
            assert 0.0 <= r["clean_accuracy"] <= 1.0
            assert set(r["robust_accuracy"]) == {"fgsm"}

    def test_validation(self, blobs4):
        with pytest.raises(ValueError):
            make_probe(blobs4, every=0)
        with pytest.raises(ValueError):
            RobustnessProbe(AttackSuite({}), np.empty((0, 1, 8, 8)),
                            np.empty((0,)))


class TestMetricsLogger:
    def test_epoch_stream(self, blobs4, tmp_path):
        path = tmp_path / "metrics.jsonl"
        trainer = make_trainer(epochs=3)
        trainer.fit(blobs4, callbacks=[MetricsLogger(path)])
        start = read_jsonl(path, event="train_start")
        epochs = read_jsonl(path, event="epoch")
        end = read_jsonl(path, event="train_end")
        assert len(start) == 1 and start[0]["epochs"] == 3
        assert [r["epoch"] for r in epochs] == [0, 1, 2]
        assert [r["loss"] for r in epochs] == trainer.history.losses
        assert end[0]["epochs_completed"] == 3
        assert end[0]["stop_reason"] is None

    def test_lines_are_valid_json(self, blobs4, tmp_path):
        path = tmp_path / "metrics.jsonl"
        make_trainer(epochs=2).fit(blobs4, callbacks=[MetricsLogger(path)])
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_resume_appends(self, blobs4, tmp_path):
        path = tmp_path / "metrics.jsonl"
        trainer = make_trainer(epochs=2)
        trainer.fit(blobs4, callbacks=[MetricsLogger(path)])
        # Same trainer, extended budget: a resumed (mid-run) start appends.
        trainer.epochs = 4
        trainer.fit(blobs4, callbacks=[MetricsLogger(path)])
        assert len(read_jsonl(path, event="train_start")) == 2
        assert [r["epoch"] for r in read_jsonl(path, event="epoch")] == \
            [0, 1, 2, 3]

    def test_fresh_run_truncates_stale_log(self, blobs4, tmp_path):
        path = tmp_path / "metrics.jsonl"
        make_trainer(epochs=4).fit(blobs4, callbacks=[MetricsLogger(path)])
        # From-scratch rerun with a shorter budget must not leave the old
        # run's tail epochs behind to be stitched into rebuilt curves.
        make_trainer(epochs=2).fit(blobs4, callbacks=[MetricsLogger(path)])
        assert len(read_jsonl(path, event="train_start")) == 1
        assert [r["epoch"] for r in read_jsonl(path, event="epoch")] == \
            [0, 1]
