"""In-process half of the data-parallel training engine's guarantees.

Everything here runs without a worker pool: the windowed-RNG replay math,
the ``workers=1`` engine path (the bit-identity baseline the
multi-process suite compares against), the non-finite skip, and the
checkpoint provenance.  The real spawn-pool equalities live in
test_parallel_multiprocess.py.
"""

import numpy as np
import pytest

from repro import nn
from repro.defenses.cls import CLSTrainer
from repro.defenses.vanilla import VanillaTrainer
from repro.train.checkpoint import read_checkpoint_meta, save_checkpoint
from repro.train.parallel import ParallelTrainEngine, _WindowedRNG
from repro.utils.pool import plan_shards
from repro.utils.rng import derive_rng


def dropout_model(seed=0):
    """A small, fully-materialized classifier with an internal dropout
    layer — the case where naive per-worker reseeding would diverge."""
    rng = derive_rng(seed, "init")
    return nn.Sequential(
        nn.Flatten(),
        nn.Dense(64, 16, rng=rng), nn.ReLU(),
        nn.Dropout(0.5, rng=derive_rng(seed, "drop")),
        nn.Dense(16, 4, rng=rng))


def batch(n=20, seed=3):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(n, 1, 8, 8)).astype(np.float32),
            rng.integers(0, 4, size=n))


class TestWindowedRNG:
    def test_shard_windows_replay_the_full_batch_draw(self):
        base = derive_rng(0, "w")
        full = derive_rng(0, "w").random((10, 3))
        for shard in plan_shards(10, 4):
            proxy = _WindowedRNG(base.bit_generator.state,
                                 shard.start, shard.total)
            got = proxy.random((shard.size, 3))
            assert np.array_equal(got, full[shard.start:shard.stop])
            assert proxy.consumed == 30   # the *full* batch's draws

    def test_naive_reseed_diverges(self):
        # The failure mode the windowing exists to prevent: a worker that
        # just clones the stream state (no row advance) replays shard 0's
        # draws for every shard.
        base = derive_rng(0, "w")
        full = derive_rng(0, "w").random((10, 3))
        naive = np.random.Generator(np.random.PCG64())
        naive.bit_generator.state = base.bit_generator.state
        assert not np.array_equal(naive.random((4, 3)), full[4:8])

    def test_second_draw_offsets_past_the_whole_first(self):
        # Programs with several forwards (CLP) draw the same stream more
        # than once per step; each shard's second draw must window into
        # the full batch's *second* draw.
        base = derive_rng(1, "w")
        ref = derive_rng(1, "w")
        first = ref.random((6, 2))
        second = ref.random((6, 5))
        proxy = _WindowedRNG(base.bit_generator.state, 2, 6)
        assert np.array_equal(proxy.random((3, 2)), first[2:5])
        assert np.array_equal(proxy.random((3, 5)), second[2:5])
        assert proxy.consumed == 6 * 2 + 6 * 5


class TestInProcessEngine:
    def test_single_shard_matches_legacy_eager(self):
        # With one shard covering the whole batch (scale exactly 1.0) the
        # engine runs the legacy computation — including the dropout
        # draws — so even the eager path is reproduced bit-for-bit.
        x, y = batch()
        legacy = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        legacy.model.train()
        legacy_losses = [legacy.train_step(x, y) for _ in range(3)]

        sharded = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        engine = ParallelTrainEngine(sharded, workers=1,
                                     shard_size=len(x)).attach()
        sharded.model.train()
        engine_losses = [sharded.train_step(x, y) for _ in range(3)]

        assert engine_losses == legacy_losses
        for (name, a), (_, b) in zip(legacy.model.named_parameters(),
                                     sharded.model.named_parameters()):
            assert np.array_equal(np.asarray(a.data),
                                  np.asarray(b.data)), name
        for key in legacy.rng_streams():
            assert legacy.rng_streams()[key].bit_generator.state == \
                sharded.rng_streams()[key].bit_generator.state, key

    def test_ragged_shards_train_and_advance_streams(self):
        x, y = batch(n=20)
        trainer = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        ParallelTrainEngine(trainer, workers=1, shard_size=6).attach()
        trainer.model.train()
        before = {k: g.bit_generator.state
                  for k, g in trainer.rng_streams().items()}
        loss = trainer.train_step(x, y)
        assert np.isfinite(loss)
        dropout_streams = [k for k in before if "dropout" in k]
        assert dropout_streams
        for key in dropout_streams:
            assert trainer.rng_streams()[key].bit_generator.state != \
                before[key]

    def test_skip_non_finite_skips_the_step(self):
        x, y = batch()
        trainer = CLSTrainer(dropout_model(), lam=0.4, epochs=1, seed=0)
        ParallelTrainEngine(trainer, workers=1, shard_size=8).attach()
        trainer.model.train()
        snap = [np.asarray(p.data).copy()
                for p in trainer.model.parameters()]
        steps_before = trainer.optimizer.steps
        bad = np.full_like(x, np.nan)
        value = trainer.train_step(bad, y)
        assert not np.isfinite(value)
        assert trainer.optimizer.steps == steps_before
        for p, old in zip(trainer.model.parameters(), snap):
            assert np.array_equal(np.asarray(p.data), old)
            assert p.grad is None

    def test_attach_and_close_detach(self):
        trainer = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        engine = ParallelTrainEngine(trainer, workers=1).attach()
        assert trainer.parallel_engine is engine
        engine.close()
        assert trainer.parallel_engine is None

    def test_workers_validated(self):
        trainer = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        with pytest.raises(ValueError):
            ParallelTrainEngine(trainer, workers=0)


class TestCheckpointProvenance:
    def test_worker_count_recorded_but_not_load_bearing(self, tmp_path):
        trainer = VanillaTrainer(dropout_model(), epochs=1, seed=0)
        path = tmp_path / "plain.npz"
        save_checkpoint(trainer, path)
        assert read_checkpoint_meta(path)["workers"] is None

        ParallelTrainEngine(trainer, workers=1, shard_size=8).attach()
        path = tmp_path / "engine.npz"
        save_checkpoint(trainer, path)
        assert read_checkpoint_meta(path)["workers"] == 1

        # Loading never consults the key: a fresh trainer with no engine
        # restores an engine-produced checkpoint.
        fresh = VanillaTrainer(dropout_model(1), epochs=1, seed=0)
        fresh.load_state_dict(read_checkpoint_meta(path)["state"])
        for (name, a), (_, b) in zip(trainer.model.named_parameters(),
                                     fresh.model.named_parameters()):
            assert np.array_equal(np.asarray(a.data),
                                  np.asarray(b.data)), name
