"""Kill-and-resume equivalence — the checkpoint subsystem's headline
guarantee, pinned on tiny models so it runs in the CI fast lane.

For each trainer family: train N epochs uninterrupted; train the same
seeded configuration with a simulated kill at epoch k (checkpoint saved,
process state discarded); resume a *fresh* trainer from the checkpoint
and finish.  Losses must match bit-for-bit and final parameters exactly
— which only holds if weights, optimizer moments, every RNG stream and
the epoch counter all round-trip.
"""

import numpy as np
import pytest

from repro.defenses import (
    CLPTrainer,
    CLSTrainer,
    VanillaTrainer,
    ZKGanDefTrainer,
)
from repro.train import Callback, Checkpointer, load_checkpoint
from tests.conftest import TinyNet, make_blobs_dataset

EPOCHS = 6
KILL_AT = 3


@pytest.fixture(scope="module")
def blobs4():
    return make_blobs_dataset(n=64, num_classes=4)


class KillAfter(Callback):
    """Simulate the process dying after epoch ``n`` (post-checkpoint)."""

    def __init__(self, n):
        self.n = n

    def on_epoch_end(self, loop, epoch, logs):
        if epoch + 1 >= self.n:
            loop.request_stop(f"simulated kill after epoch {self.n}")


def run_uninterrupted(make_trainer, blobs4):
    trainer = make_trainer()
    history = trainer.fit(blobs4)
    return trainer, history


def run_killed_and_resumed(make_trainer, blobs4, tmp_path):
    victim = make_trainer()
    checkpointer = Checkpointer(tmp_path)
    victim.fit(blobs4, callbacks=[KillAfter(KILL_AT), checkpointer])
    assert victim.completed_epochs == KILL_AT
    # A brand-new process: fresh trainer, state only from the archive.
    resumed = make_trainer()
    load_checkpoint(resumed, checkpointer.path)
    assert resumed.completed_epochs == KILL_AT
    history = resumed.fit(blobs4, callbacks=[Checkpointer(tmp_path)])
    return resumed, history


def assert_equivalent(full_trainer, full_history, res_trainer, res_history):
    assert res_history.losses == full_history.losses  # bit-for-bit
    assert res_trainer.completed_epochs == EPOCHS
    assert res_history.stop_reason is None
    for p, q in zip(full_trainer.model.parameters(),
                    res_trainer.model.parameters()):
        np.testing.assert_array_equal(p.data, q.data)


def tiny_model(blobs4):
    model = TinyNet(num_classes=4, seed=3)
    model(blobs4.images[:1])  # materialize lazy head before optimizer build
    return model


def vanilla_factory(blobs4):
    def make():
        return VanillaTrainer(tiny_model(blobs4),
                              epochs=EPOCHS, batch_size=16, seed=42)
    return make


def cls_factory(blobs4):
    def make():
        return CLSTrainer(tiny_model(blobs4), lam=0.1,
                          sigma=0.5, epochs=EPOCHS, batch_size=16, seed=42)
    return make


def clp_factory(blobs4):
    def make():
        return CLPTrainer(tiny_model(blobs4), lam=0.1,
                          sigma=0.5, epochs=EPOCHS, batch_size=16, seed=42)
    return make


def gandef_factory(blobs4, **overrides):
    def make():
        model = TinyNet(num_classes=4, seed=3)
        model(blobs4.images[:1])  # materialize lazy head
        kwargs = dict(num_logits=4, sigma=0.3, epochs=EPOCHS,
                      batch_size=16, warmup_epochs=4, lr=0.01, seed=42)
        kwargs.update(overrides)
        return ZKGanDefTrainer(model, **kwargs)
    return make


class TestResumeEquivalence:
    def test_vanilla(self, blobs4, tmp_path):
        full, h_full = run_uninterrupted(vanilla_factory(blobs4), blobs4)
        res, h_res = run_killed_and_resumed(vanilla_factory(blobs4),
                                            blobs4, tmp_path)
        assert_equivalent(full, h_full, res, h_res)

    def test_vanilla_sgd_momentum(self, blobs4, tmp_path):
        def factory():
            return VanillaTrainer(tiny_model(blobs4),
                                  optimizer="sgd", lr=0.05, momentum=0.9,
                                  epochs=EPOCHS, batch_size=16, seed=42)
        full, h_full = run_uninterrupted(factory, blobs4)
        res, h_res = run_killed_and_resumed(factory, blobs4, tmp_path)
        assert_equivalent(full, h_full, res, h_res)

    def test_cls(self, blobs4, tmp_path):
        """CLS adds the Gaussian augmentation stream to the state."""
        full, h_full = run_uninterrupted(cls_factory(blobs4), blobs4)
        res, h_res = run_killed_and_resumed(cls_factory(blobs4),
                                            blobs4, tmp_path)
        assert_equivalent(full, h_full, res, h_res)

    def test_clp(self, blobs4, tmp_path):
        """CLP's paired-batch loop rides the same machinery."""
        full, h_full = run_uninterrupted(clp_factory(blobs4), blobs4)
        res, h_res = run_killed_and_resumed(clp_factory(blobs4),
                                            blobs4, tmp_path)
        assert_equivalent(full, h_full, res, h_res)

    def test_gandef_dual_optimizer(self, blobs4, tmp_path):
        """GanDef must restore both networks, both Adam states, and the
        mix stream; the kill at epoch 3 lands inside the warm-up window
        (warmup_epochs=4), so the resumed run must also re-enter the
        gamma schedule correctly."""
        factory = gandef_factory(blobs4)
        full, h_full = run_uninterrupted(factory, blobs4)
        res, h_res = run_killed_and_resumed(factory, blobs4, tmp_path)
        assert_equivalent(full, h_full, res, h_res)
        for p, q in zip(full.discriminator.parameters(),
                        res.discriminator.parameters()):
            np.testing.assert_array_equal(p.data, q.data)
        assert res.history.extra["disc_loss"] == \
            full.history.extra["disc_loss"]

    def test_resume_is_not_restart(self, blobs4, tmp_path):
        """Guard the guard: a *restarted* (not resumed) second half must
        diverge from the uninterrupted run, proving the equivalence
        above is earned by state restoration rather than insensitivity."""
        full, h_full = run_uninterrupted(vanilla_factory(blobs4), blobs4)
        victim = vanilla_factory(blobs4)()
        checkpointer = Checkpointer(tmp_path)
        victim.fit(blobs4, callbacks=[KillAfter(KILL_AT), checkpointer])
        restarted = vanilla_factory(blobs4)()
        # Restore only the weights — the seed-code failure mode.
        restarted.model.load_state_dict(victim.model.state_dict())
        restarted.completed_epochs = KILL_AT
        h_res = restarted.fit(blobs4)
        assert h_res.losses[-(EPOCHS - KILL_AT):] != \
            h_full.losses[-(EPOCHS - KILL_AT):]
