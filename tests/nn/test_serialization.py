"""Weight persistence round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import load_state, save_state
from repro.utils.rng import derive_rng


def small_model(seed):
    r = derive_rng(seed, "ser")
    return nn.Sequential(nn.Dense(3, 5, rng=r), nn.ReLU(),
                         nn.Dense(5, 2, rng=r))


def test_roundtrip(tmp_path):
    a = small_model(0)
    b = small_model(1)
    path = tmp_path / "weights"
    save_state(a, path)
    load_state(b, path)
    x = np.random.randn(2, 3).astype(np.float32)
    np.testing.assert_array_equal(a(x).data, b(x).data)


def test_extension_appended(tmp_path):
    a = small_model(0)
    save_state(a, tmp_path / "w")
    assert (tmp_path / "w.npz").exists()


def test_load_into_wrong_architecture_fails(tmp_path):
    a = small_model(0)
    save_state(a, tmp_path / "w")
    wrong = nn.Sequential(nn.Dense(4, 4))
    with pytest.raises(KeyError):
        load_state(wrong, tmp_path / "w")


def test_load_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(small_model(0), tmp_path / "nope")
