"""Weight persistence round-trips."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import atomic_savez, load_state, save_state
from repro.utils.rng import derive_rng


def small_model(seed):
    r = derive_rng(seed, "ser")
    return nn.Sequential(nn.Dense(3, 5, rng=r), nn.ReLU(),
                         nn.Dense(5, 2, rng=r))


def test_roundtrip(tmp_path):
    a = small_model(0)
    b = small_model(1)
    path = tmp_path / "weights"
    save_state(a, path)
    load_state(b, path)
    x = np.random.randn(2, 3).astype(np.float32)
    np.testing.assert_array_equal(a(x).data, b(x).data)


def test_extension_appended(tmp_path):
    a = small_model(0)
    save_state(a, tmp_path / "w")
    assert (tmp_path / "w.npz").exists()


def test_load_into_wrong_architecture_fails(tmp_path):
    a = small_model(0)
    save_state(a, tmp_path / "w")
    wrong = nn.Sequential(nn.Dense(4, 4))
    with pytest.raises(KeyError):
        load_state(wrong, tmp_path / "w")


def test_load_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(small_model(0), tmp_path / "nope")


class TestAtomicity:
    def test_no_temp_files_left_after_save(self, tmp_path):
        save_state(small_model(0), tmp_path / "w")
        assert sorted(os.listdir(tmp_path)) == ["w.npz"]

    def test_save_overwrites_atomically(self, tmp_path):
        a, b = small_model(0), small_model(1)
        path = tmp_path / "w"
        save_state(a, path)
        save_state(b, path)  # replace, not append/merge
        c = small_model(2)
        load_state(c, path)
        x = np.random.randn(2, 3).astype(np.float32)
        np.testing.assert_array_equal(b(x).data, c(x).data)

    def test_atomic_savez_creates_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "arrays.npz"
        atomic_savez(target, {"x": np.arange(3)})
        with np.load(target) as archive:
            np.testing.assert_array_equal(archive["x"], np.arange(3))

    def test_failed_save_leaves_no_debris(self, tmp_path):
        class Exploding:
            def __array__(self, dtype=None):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_savez(tmp_path / "bad.npz", {"x": Exploding()})
        assert os.listdir(tmp_path) == []


class TestShapeMismatch:
    def test_shape_mismatch_raises_with_file_context(self, tmp_path):
        a = small_model(0)
        save_state(a, tmp_path / "w")
        wrong = nn.Sequential(nn.Dense(3, 5), nn.ReLU(), nn.Dense(5, 3))
        before = {id(p): p.data.copy() for p in wrong.parameters()}
        with pytest.raises((KeyError, ValueError)) as err:
            load_state(wrong, tmp_path / "w")
        assert "w.npz" in str(err.value)
        # nothing was silently broadcast or partially applied
        for p in wrong.parameters():
            np.testing.assert_array_equal(before[id(p)], p.data)
