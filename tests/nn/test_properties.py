"""Property-based tests (hypothesis) on the autodiff core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False, width=32)


def small_arrays(max_dims=3, max_side=5):
    return arrays(np.float32,
                  array_shapes(min_dims=1, max_dims=max_dims,
                               max_side=max_side),
                  elements=finite_floats)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_softmax_rows_are_distributions(a):
    out = F.softmax(Tensor(a), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1),
                               np.ones(out.shape[:-1]), rtol=1e-3)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_log_softmax_never_positive(a):
    out = F.log_softmax(Tensor(a), axis=-1).data
    assert np.all(out <= 1e-5)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_relu_idempotent(a):
    once = F.relu(Tensor(a)).data
    twice = F.relu(Tensor(once)).data
    np.testing.assert_array_equal(once, twice)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_add_backward_shape_matches_input(a):
    x = Tensor(a, requires_grad=True)
    (x + 1.0).sum().backward()
    assert x.grad.shape == a.shape


@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_broadcast_grad_always_matches_parent_shape(a, b):
    # Whatever the broadcast, the gradient lands in the parent's shape.
    try:
        np.broadcast_shapes(a.shape, b.shape)
    except ValueError:
        return  # incompatible shapes — nothing to test
    x = Tensor(a, requires_grad=True)
    y = Tensor(b, requires_grad=True)
    (x * y).sum().backward()
    assert x.grad.shape == a.shape
    assert y.grad.shape == b.shape


@given(small_arrays(), st.floats(min_value=-1.0, max_value=0.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_clip_output_inside_box(a, low, high):
    out = F.clip(Tensor(a), low, high).data
    assert np.all(out >= low - 1e-6)
    assert np.all(out <= high + 1e-6)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_sigmoid_bounded(a):
    out = F.sigmoid(Tensor(a)).data
    assert np.all((out >= 0) & (out <= 1))


@given(small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_sum_then_backward_gives_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_array_equal(x.grad, np.ones_like(a))


@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_maximum_at_least_both(a, b):
    if a.shape != b.shape:
        return
    out = F.maximum(Tensor(a), Tensor(b)).data
    assert np.all(out >= a - 1e-6)
    assert np.all(out >= b - 1e-6)
