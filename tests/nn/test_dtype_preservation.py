"""float32 is the canonical dtype — end to end, on every backend.

Numpy's promotion rules have historically leaked float64 into float32
pipelines (python-scalar mixing under value-based casting, float64 scalar
operands, ``mean`` accumulators).  The substrate's contract is that every
differentiable op takes float32 in and hands float32 out — forward data,
backward gradients, and optimizer state alike — because the paper's
training ran on float32 GPU frameworks and a silent float64 upgrade both
halves throughput and changes the numerics.

This suite is the regression fence from the dtype audit: each test feeds a
deliberately promotion-prone mix (python scalars, float64 scalars, float64
arrays, large reductions) through one layer of the stack and asserts the
canonical dtype survived.
"""

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.nn import functional as F


@pytest.fixture(params=["numpy", "fast"], autouse=True)
def each_cpu_backend(request):
    with backend.use(request.param):
        yield request.param


def t(shape=(3, 4), seed=0, requires_grad=False):
    rng = np.random.default_rng(seed)
    return nn.Tensor(rng.normal(size=shape).astype(np.float32),
                     requires_grad=requires_grad)


def assert_f32(tensor):
    assert tensor.dtype == np.float32, f"forward promoted to {tensor.dtype}"


def assert_grad_f32(tensor):
    assert tensor.grad is not None
    assert tensor.grad.dtype == np.float32, \
        f"gradient promoted to {tensor.grad.dtype}"


class TestConstructionCanonicalizes:
    def test_float64_input_is_downcast(self):
        assert nn.Tensor(np.ones((2, 2), dtype=np.float64)).dtype \
            == np.float32

    def test_python_scalars_are_downcast(self):
        assert nn.Tensor(3.14).dtype == np.float32
        assert nn.as_tensor([1.0, 2.0]).dtype == np.float32

    def test_integer_arrays_keep_their_dtype(self):
        assert nn.Tensor(np.arange(3)).dtype == np.int64


class TestArithmeticOps:
    @pytest.mark.parametrize("scalar", [2, 2.5, np.float64(2.5),
                                        np.float32(2.5)],
                             ids=["int", "float", "np64", "np32"])
    def test_scalar_mixing(self, scalar):
        x = t(requires_grad=True)
        for out in (x + scalar, scalar + x, x * scalar, x - scalar,
                    scalar - x, x / scalar, scalar / x):
            assert_f32(out)
        out = (x * scalar).sum()
        out.backward()
        assert_grad_f32(x)

    def test_float64_array_operand_is_canonicalized(self):
        x = t(requires_grad=True)
        other = np.full((3, 4), 0.5, dtype=np.float64)
        out = x * other
        assert_f32(out)
        out.sum().backward()
        assert_grad_f32(x)

    def test_pow_matmul_neg(self):
        x = t(requires_grad=True)
        assert_f32(x ** 2)
        assert_f32(x ** 0.5 if False else -x)
        w = t((4, 2), seed=1, requires_grad=True)
        out = x @ w
        assert_f32(out)
        out.sum().backward()
        assert_grad_f32(x)
        assert_grad_f32(w)


class TestReductions:
    def test_mean_on_large_array_stays_f32(self):
        # The classic leak: float64 accumulators on big reductions.
        big = nn.Tensor(np.ones((64, 1024), dtype=np.float32),
                        requires_grad=True)
        m = big.mean()
        assert_f32(m)
        m.backward()
        assert_grad_f32(big)

    def test_sum_max_axis_variants(self):
        x = t((4, 5, 6), requires_grad=True)
        assert_f32(x.sum(axis=1))
        assert_f32(x.max(axis=(0)))
        assert_f32(x.mean(axis=(1, 2), keepdims=True))
        x.max(axis=2).sum().backward()
        assert_grad_f32(x)

    def test_backward_with_float64_seed(self):
        x = t(requires_grad=True)
        (x * 2.0).backward(np.ones((3, 4), dtype=np.float64))
        assert_grad_f32(x)


class TestFunctional:
    @pytest.mark.parametrize("fn", [
        F.relu, F.leaky_relu, F.sigmoid, F.tanh, F.exp,
        lambda x: F.log(F.exp(x)), F.abs,
        lambda x: F.sqrt(F.abs(x)),
        lambda x: F.clip(x, -0.5, 0.5),
        lambda x: F.softmax(x, axis=-1),
        lambda x: F.log_softmax(x, axis=-1),
        lambda x: F.maximum(x, 0.0),
        lambda x: F.minimum(x, np.float64(0.25)),
        lambda x: F.where(x.data > 0, x, x * 2.0),
    ], ids=["relu", "leaky", "sigmoid", "tanh", "exp", "log", "abs",
            "sqrt", "clip", "softmax", "log_softmax", "maximum",
            "minimum", "where"])
    def test_forward_and_grad_stay_f32(self, fn):
        x = t(requires_grad=True)
        out = fn(x)
        assert_f32(out)
        out.sum().backward()
        assert_grad_f32(x)

    def test_dropout_and_pad(self):
        x = t((2, 3, 4, 4), requires_grad=True)
        rng = np.random.default_rng(0)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert_f32(out)
        out = F.pad2d(out, 1)
        assert_f32(out)
        out.sum().backward()
        assert_grad_f32(x)

    def test_one_hot_is_f32(self):
        assert F.one_hot(np.array([0, 2, 1]), 3).dtype == np.float32


class TestConvAndPool:
    def test_conv_forward_weight_and_input_grads(self):
        x = t((2, 3, 8, 8), requires_grad=True)
        w = t((4, 3, 3, 3), seed=1, requires_grad=True)
        b = t((4,), seed=2, requires_grad=True)
        out = nn.conv2d(x, w, b, stride=2, padding=1)
        assert_f32(out)
        out.sum().backward()
        for p in (x, w, b):
            assert_grad_f32(p)

    @pytest.mark.parametrize("pool", [nn.max_pool2d, nn.avg_pool2d],
                             ids=["max", "avg"])
    def test_pooling(self, pool):
        x = t((2, 3, 8, 8), requires_grad=True)
        out = pool(x, 2)
        assert_f32(out)
        out.sum().backward()
        assert_grad_f32(x)

    def test_stack_concat(self):
        xs = [t(seed=i, requires_grad=True) for i in range(3)]
        assert_f32(nn.stack(xs))
        assert_f32(nn.concat(xs, axis=0))


class TestLossesAndOptim:
    def test_losses_stay_f32(self):
        logits = t((6, 4), requires_grad=True)
        labels = np.array([0, 1, 2, 3, 0, 1])
        for loss in (nn.softmax_cross_entropy(logits, labels),
                     nn.cls_loss(logits, labels, lam=0.4),
                     nn.mse(logits, np.zeros((6, 4), dtype=np.float64)),
                     nn.l2_penalty(logits)):
            assert_f32(loss)
        nn.softmax_cross_entropy(logits, labels).backward()
        assert_grad_f32(logits)

    def test_bce_variants(self):
        z = t((5, 1), requires_grad=True)
        targets = np.array([[0.], [1.], [0.], [1.], [0.]])
        assert_f32(nn.bce_with_logits(z, targets))
        assert_f32(nn.bce_on_probs(F.sigmoid(z), targets))

    @pytest.mark.parametrize("make_opt", [
        lambda p: nn.SGD(p, lr=0.1, momentum=0.9, weight_decay=1e-4),
        lambda p: nn.Adam(p, lr=1e-3, weight_decay=1e-4),
    ], ids=["sgd", "adam"])
    def test_optimizer_steps_keep_param_and_moment_dtypes(self, make_opt):
        p = nn.Parameter(np.ones((4, 3), dtype=np.float32))
        opt = make_opt([p])
        for _ in range(3):
            p.grad = np.full((4, 3), 0.1, dtype=np.float32)
            opt.step()
        assert p.data.dtype == np.float32
        for buffers in opt.state_dict()["buffers"].values():
            for buf in buffers:
                assert buf is None or buf.dtype == np.float32


class TestEndToEnd:
    def test_training_step_keeps_every_parameter_f32(self):
        from tests.conftest import TinyNet, make_blobs_dataset

        blobs = make_blobs_dataset(n=16, num_classes=4)
        model = TinyNet(num_classes=4, seed=0)
        logits = model(blobs.images)
        assert_f32(logits)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        loss = nn.softmax_cross_entropy(logits, blobs.labels)
        assert_f32(loss)
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad.dtype == np.float32, name
        opt.step()
        for name, p in model.named_parameters():
            assert p.data.dtype == np.float32, name
