"""Module system: layers, discovery, modes, serialization dicts."""

import numpy as np
import pytest

from repro import nn
from repro.utils.rng import derive_rng


def make_mlp(seed=0):
    r = derive_rng(seed, "mlp")
    return nn.Sequential(
        nn.Dense(4, 8, rng=r), nn.ReLU(), nn.Dropout(0.5, rng=r),
        nn.Dense(8, 3, rng=r),
    )


class TestDense:
    def test_shapes(self):
        layer = nn.Dense(4, 8)
        out = layer(np.zeros((2, 4), dtype=np.float32))
        assert out.shape == (2, 8)

    def test_no_bias(self):
        layer = nn.Dense(4, 8, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_init(self):
        a = nn.Dense(4, 8, rng=derive_rng(0, "x"))
        b = nn.Dense(4, 8, rng=derive_rng(0, "x"))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConv2DLayer:
    def test_shapes(self):
        layer = nn.Conv2D(3, 8, kernel_size=3, stride=2, padding=1)
        out = layer(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (2, 8, 4, 4)

    def test_param_count(self):
        layer = nn.Conv2D(3, 8, kernel_size=3)
        assert layer.num_parameters() == 8 * 3 * 3 * 3 + 8


class TestDiscovery:
    def test_parameters_unique(self):
        mlp = make_mlp()
        params = mlp.parameters()
        assert len(params) == 4  # two weights + two biases
        assert len({id(p) for p in params}) == 4

    def test_named_parameters_paths(self):
        mlp = make_mlp()
        names = [n for n, _ in mlp.named_parameters()]
        assert any("layers.0" in n for n in names)
        assert any("layers.3" in n for n in names)

    def test_modules_walk(self):
        mlp = make_mlp()
        kinds = [type(m).__name__ for m in mlp.modules()]
        assert "Dropout" in kinds and "Sequential" in kinds

    def test_zero_grad(self):
        mlp = make_mlp()
        out = mlp(np.ones((2, 4), dtype=np.float32))
        out.sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestModes:
    def test_train_eval_propagate(self):
        mlp = make_mlp()
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_dropout_active_only_in_train(self):
        mlp = make_mlp()
        x = np.ones((4, 4), dtype=np.float32)
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_array_equal(a, b)  # deterministic in eval


class TestStateDict:
    def test_roundtrip(self):
        a = make_mlp(seed=1)
        b = make_mlp(seed=2)
        b.load_state_dict(a.state_dict())
        x = np.random.randn(2, 4).astype(np.float32)
        a.eval(); b.eval()
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_missing_key_rejected(self):
        a = make_mlp()
        state = a.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        a = make_mlp()
        state = a.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        a = make_mlp()
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_is_copy(self):
        a = make_mlp()
        state = a.state_dict()
        key = next(iter(state))
        state[key][...] = 123.0
        assert not np.any(dict(a.named_parameters())[key].data == 123.0)


class TestSequential:
    def test_list_constructor(self):
        seq = nn.Sequential([nn.ReLU(), nn.ReLU()])
        assert len(seq) == 2

    def test_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Tanh())
        assert len(seq) == 2

    def test_iteration(self):
        seq = nn.Sequential(nn.ReLU(), nn.Sigmoid())
        assert [type(m).__name__ for m in seq] == ["ReLU", "Sigmoid"]


class TestActivationsAndPoolModules:
    def test_activation_modules(self):
        x = np.array([[-1.0, 1.0]], dtype=np.float32)
        assert nn.ReLU()(x).data[0, 0] == 0.0
        assert nn.LeakyReLU(0.1)(x).data[0, 0] == pytest.approx(-0.1)
        assert 0.0 < nn.Sigmoid()(x).data[0, 0] < 0.5
        assert nn.Tanh()(x).data[0, 0] == pytest.approx(np.tanh(-1.0),
                                                        rel=1e-5)

    def test_pool_modules(self):
        x = np.random.randn(1, 2, 4, 4).astype(np.float32)
        assert nn.MaxPool2D(2)(x).shape == (1, 2, 2, 2)
        assert nn.AvgPool2D(2)(x).shape == (1, 2, 2, 2)
        assert nn.GlobalAvgPool2D()(x).shape == (1, 2)
        assert nn.Flatten()(x).shape == (1, 32)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)
