"""Convolution / pooling: forward vs naive reference, gradients, geometry."""

import numpy as np
import pytest

from repro.nn.conv import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_output_size,
    im2col,
    max_pool2d,
)
from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor


def naive_conv2d(x, w, b, stride, padding):
    """Loop reference implementation."""
    n, c, h, wdt = x.shape
    oc, ic, kh, kw = w.shape
    x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (wdt + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, out_h, out_w), dtype=np.float64)
    for i in range(n):
        for o in range(oc):
            for y in range(out_h):
                for xx in range(out_w):
                    patch = x[i, :, y * stride:y * stride + kh,
                              xx * stride:xx * stride + kw]
                    out[i, o, y, xx] = (patch * w[o]).sum()
            if b is not None:
                out[i, o] += b[o]
    return out


class TestGeometry:
    def test_output_size(self):
        assert conv_output_size(28, 5, 1, 2) == 28
        assert conv_output_size(32, 3, 2, 1) == 16

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_channel_mismatch_rejected(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)


class TestIm2Col:
    def test_roundtrip_adjointness(self):
        # <im2col(x), c> == <x, col2im(c)> for random x, c (adjoint test)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols_shape = im2col(x, 3, 3, 2, 2, 1, 1).shape
        c = rng.standard_normal(cols_shape).astype(np.float32)
        lhs = (im2col(x, 3, 3, 2, 2, 1, 1) * c).sum()
        rhs = (x * col2im(c, x.shape, 3, 3, 2, 2, 1, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-4)


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
class TestConvForward:
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b),
                     stride=stride, padding=padding)
        ref = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)


class TestConvBackward:
    def test_grad_wrt_input(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((2, 1, 3, 3)) * 0.5
        check_gradient(
            lambda x: conv2d(x, Tensor(w.astype(np.float32)), stride=1,
                             padding=1),
            [rng.standard_normal((1, 1, 5, 5))],
        )

    def test_grad_wrt_weight(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 1, 5, 5))
        check_gradient(
            lambda w: conv2d(Tensor(x.astype(np.float32)), w, stride=2,
                             padding=1),
            [rng.standard_normal((2, 1, 3, 3)) * 0.5],
        )

    def test_grad_wrt_bias(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((2, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 1, 3, 3)).astype(np.float32) * 0.5)
        check_gradient(lambda b: conv2d(x, w, b, padding=1),
                       [rng.standard_normal(3)])


def naive_conv2d_general(x, w, stride_hw, padding_hw):
    """Loop reference supporting non-square kernels / strides / padding."""
    sh, sw = stride_hw
    ph, pw = padding_hw
    n, c, h, wdt = x.shape
    oc, ic, kh, kw = w.shape
    x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((n, oc, out_h, out_w), dtype=np.float64)
    for i in range(n):
        for o in range(oc):
            for y in range(out_h):
                for xx in range(out_w):
                    patch = x[i, :, y * sh:y * sh + kh, xx * sw:xx * sw + kw]
                    out[i, o, y, xx] = (patch * w[o]).sum()
    return out


class TestConvEdgeCases:
    """Geometries the attack gradients depend on but the main models do not
    exercise: non-square kernels, stride > 1 with padding, and the im2col /
    col2im adjoint pair that carries every input gradient."""

    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 2), (1, 1), (0, 0)),
        ((2, 4), (1, 1), (1, 1)),
        ((3, 2), (2, 1), (1, 0)),
        ((1, 3), (1, 2), (0, 1)),
    ])
    def test_non_square_forward_matches_naive(self, kernel, stride, padding):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 2, 7, 8)).astype(np.float32)
        w = rng.standard_normal((3, 2) + kernel).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        ref = naive_conv2d_general(x, w, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)

    def test_non_square_kernel_gradcheck_input(self):
        rng = np.random.default_rng(10)
        w = (rng.standard_normal((2, 1, 3, 2)) * 0.5).astype(np.float32)
        check_gradient(
            lambda x: conv2d(x, Tensor(w), stride=(2, 1), padding=(1, 0)),
            [rng.standard_normal((1, 1, 6, 5))],
        )

    def test_non_square_kernel_gradcheck_weight(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((1, 1, 6, 5))
        check_gradient(
            lambda w: conv2d(Tensor(x.astype(np.float32)), w,
                             stride=(1, 2), padding=(0, 1)),
            [rng.standard_normal((2, 1, 2, 3)) * 0.5],
        )

    def test_stride2_with_padding_gradcheck_input(self):
        rng = np.random.default_rng(12)
        w = (rng.standard_normal((3, 2, 3, 3)) * 0.5).astype(np.float32)
        check_gradient(
            lambda x: conv2d(x, Tensor(w), stride=2, padding=1),
            [rng.standard_normal((2, 2, 6, 6))],
        )

    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 3), (1, 1), (1, 1)),
        ((3, 2), (2, 1), (1, 0)),
        ((2, 2), (2, 2), (0, 0)),
        ((4, 1), (3, 1), (2, 0)),
    ])
    def test_col2im_is_adjoint_of_im2col(self, kernel, stride, padding):
        """<im2col(x), c> == <x, col2im(c)> for every geometry — the exact
        property the conv backward pass (and hence every white-box input
        gradient) relies on."""
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        rng = np.random.default_rng(13)
        x = rng.standard_normal((2, 3, 7, 6)).astype(np.float64)
        cols = im2col(x, kh, kw, sh, sw, ph, pw)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, kh, kw, sh, sw, ph, pw)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_im2col_identity_when_non_overlapping(self):
        """With stride == kernel and no padding the patches tile the image,
        so the roundtrip reproduces it exactly."""
        rng = np.random.default_rng(14)
        x = rng.standard_normal((1, 2, 6, 4)).astype(np.float64)
        cols = im2col(x, 3, 2, 3, 2, 0, 0)
        back = col2im(cols, x.shape, 3, 2, 3, 2, 0, 0)
        np.testing.assert_array_equal(back, x)

    def test_col2im_accumulates_overlaps(self):
        """Overlapping patches must *sum* on fold — the adjoint, not an
        average: col2im(im2col(ones)) counts patch coverage per pixel."""
        x = np.ones((1, 1, 4, 4), dtype=np.float64)
        cols = im2col(x, 3, 3, 1, 1, 0, 0)
        back = col2im(cols, x.shape, 3, 3, 1, 1, 0, 0)
        expected = np.array([[1, 2, 2, 1],
                             [2, 4, 4, 2],
                             [2, 4, 4, 2],
                             [1, 2, 2, 1]], dtype=np.float64)
        np.testing.assert_array_equal(back[0, 0], expected)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool_gradcheck(self):
        # Use distinct values to avoid tie ambiguity in numeric diff.
        rng = np.random.default_rng(3)
        x = rng.permutation(36).reshape(1, 1, 6, 6).astype(np.float64)
        check_gradient(lambda t: max_pool2d(t, 2), [x * 0.1])

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(4)
        check_gradient(lambda t: avg_pool2d(t, 2),
                       [rng.standard_normal((1, 2, 4, 4))])

    def test_pool_with_stride(self):
        x = Tensor(np.random.randn(1, 1, 6, 6).astype(np.float32))
        assert max_pool2d(x, 2, stride=1).shape == (1, 1, 5, 5)
