"""Activation / normalization functions: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor


class TestActivations:
    def test_relu_forward(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        check_gradient(F.relu, [np.array([-1.0, 0.5, 2.0])])

    def test_leaky_relu_forward(self):
        out = F.leaky_relu(Tensor([-2.0, 2.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0], rtol=1e-6)

    def test_leaky_relu_grad(self):
        check_gradient(lambda x: F.leaky_relu(x, 0.1),
                       [np.array([-1.0, 0.5, 2.0])])

    def test_sigmoid_range_and_stability(self):
        out = F.sigmoid(Tensor([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)

    def test_sigmoid_grad(self):
        check_gradient(F.sigmoid, [np.random.randn(5)])

    def test_tanh_grad(self):
        check_gradient(F.tanh, [np.random.randn(5)])

    def test_exp_log_roundtrip(self):
        x = np.random.rand(4) + 0.5
        out = F.log(F.exp(Tensor(x)))
        np.testing.assert_allclose(out.data, x, rtol=1e-5)

    def test_log_grad(self):
        check_gradient(lambda t: F.log(t), [np.random.rand(4) + 0.5])

    def test_log_eps_clamps(self):
        out = F.log(Tensor([0.0]), eps=1e-6)
        assert np.isfinite(out.data).all()

    def test_sqrt_grad(self):
        check_gradient(F.sqrt, [np.random.rand(4) + 0.5])

    def test_abs_grad(self):
        check_gradient(F.abs, [np.array([-2.0, 3.0, -0.5])])


class TestClipWhereMinMax:
    def test_clip_forward(self):
        out = F.clip(Tensor([-2.0, 0.5, 2.0]), -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_clip_grad_masks_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_where_forward(self):
        out = F.where(np.array([True, False]), Tensor([1.0, 1.0]),
                      Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_where_grad_routes(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        F.where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_maximum_forward(self):
        out = F.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_maximum_grad(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_splits(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])

    def test_minimum(self):
        out = F.minimum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(np.random.randn(4, 10)))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4),
                                   rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()

    def test_softmax_grad(self):
        weights = np.random.rand(3, 5)
        check_gradient(lambda x: F.softmax(x) * weights,
                       [np.random.randn(3, 5)])

    def test_log_softmax_matches_log_of_softmax(self):
        z = np.random.randn(4, 6).astype(np.float32)
        a = F.log_softmax(Tensor(z)).data
        b = np.log(F.softmax(Tensor(z)).data)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_log_softmax_grad(self):
        weights = np.random.rand(3, 5)
        check_gradient(lambda x: F.log_softmax(x) * weights,
                       [np.random.randn(3, 5)])

    def test_log_softmax_stable(self):
        out = F.log_softmax(Tensor([[1e4, -1e4]]))
        assert np.isfinite(out.data).all()


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((8, 8)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_identity_at_zero_rate(self):
        x = Tensor(np.ones((8, 8)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(4)), 1.0, training=True)

    def test_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.4, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_grad_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((5, 5)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # gradient must be zero exactly where output is zero
        np.testing.assert_array_equal(x.grad == 0.0, out.data == 0.0)


class TestPadOneHot:
    def test_pad2d_shape(self):
        out = F.pad2d(Tensor(np.ones((1, 1, 4, 4))), 2)
        assert out.shape == (1, 1, 8, 8)

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        assert F.pad2d(x, 0) is x

    def test_pad2d_grad(self):
        check_gradient(lambda x: F.pad2d(x, 1) * 3.0,
                       [np.random.randn(1, 1, 3, 3)])

    def test_one_hot_values(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([5]), 3)

    def test_one_hot_requires_vector(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)
