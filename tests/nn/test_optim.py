"""Optimizers: update math and convergence behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules import Parameter


def quadratic_problem():
    """Minimize ||w - target||^2."""
    w = Parameter(np.zeros(3, dtype=np.float32))
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    return w, target


def loss_and_grad(w, target):
    diff = w - nn.Tensor(target)
    loss = (diff * diff).sum()
    loss.backward()
    return loss


class TestSGD:
    def test_plain_step_math(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        w.grad = np.array([0.5], dtype=np.float32)
        nn.SGD([w], lr=0.1).step()
        np.testing.assert_allclose(w.data, [0.95])

    def test_momentum_accumulates(self):
        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.SGD([w], lr=1.0, momentum=0.5)
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1, w=-1
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(w.data, [-2.5])

    def test_weight_decay(self):
        w = Parameter(np.array([2.0], dtype=np.float32))
        w.grad = np.array([0.0], dtype=np.float32)
        nn.SGD([w], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(w.data, [1.9])

    def test_skips_params_without_grad(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        nn.SGD([w], lr=0.1).step()
        np.testing.assert_allclose(w.data, [1.0])

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = nn.SGD([w], lr=0.1, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            loss_and_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.Adam([w], lr=0.01)
        w.grad = np.array([3.0], dtype=np.float32)
        opt.step()
        assert w.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = nn.Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_and_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_weight_decay_applied(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert w.data[0] < 1.0

    def test_default_lr_matches_paper_discriminator(self):
        opt = nn.Adam([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(0.001)


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad_clears(self):
        w = Parameter(np.zeros(2))
        w.grad = np.ones(2, dtype=np.float32)
        opt = nn.SGD([w], lr=0.1)
        opt.zero_grad()
        assert w.grad is None

    def test_step_counter(self):
        w = Parameter(np.zeros(1))
        opt = nn.Adam([w])
        w.grad = np.ones(1, dtype=np.float32)
        opt.step()
        opt.step()
        assert opt.steps == 2


class TestStateDictRoundTrip:
    """Checkpoint round-trips: moments must continue bit-for-bit."""

    @staticmethod
    def _drive(opt, w, target, steps):
        for _ in range(steps):
            opt.zero_grad()
            loss_and_grad(w, target)
            opt.step()

    def _clone_and_resume(self, make_opt, steps_before, steps_after):
        # Uninterrupted run.
        w_full, target = quadratic_problem()
        full = make_opt(w_full)
        self._drive(full, w_full, target, steps_before + steps_after)
        # Interrupted-and-restored run.
        w_a, _ = quadratic_problem()
        a = make_opt(w_a)
        self._drive(a, w_a, target, steps_before)
        state = a.state_dict()
        w_b, _ = quadratic_problem()
        w_b.data = w_a.data.copy()
        b = make_opt(w_b)
        b.load_state_dict(state)
        self._drive(b, w_b, target, steps_after)
        np.testing.assert_array_equal(w_full.data, w_b.data)
        return full, b

    def test_sgd_momentum_buffers_resume(self):
        full, resumed = self._clone_and_resume(
            lambda w: nn.SGD([w], lr=0.05, momentum=0.9), 3, 4)
        assert resumed.steps == full.steps
        for vf, vr in zip(full._velocity, resumed._velocity):
            np.testing.assert_array_equal(vf, vr)

    def test_adam_m_v_t_resume(self):
        full, resumed = self._clone_and_resume(
            lambda w: nn.Adam([w], lr=0.05), 3, 4)
        assert resumed.steps == full.steps  # the bias-correction "t"
        for buf in ("_m", "_v"):
            for bf, br in zip(getattr(full, buf), getattr(resumed, buf)):
                np.testing.assert_array_equal(bf, br)

    def test_untouched_buffers_round_trip_as_none(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = nn.SGD([w], lr=0.1, momentum=0.9)
        state = opt.state_dict()
        assert state["buffers"]["velocity"] == [None]
        opt.load_state_dict(state)
        assert opt._velocity == [None]

    def test_state_dict_copies_are_independent(self):
        w, target = quadratic_problem()
        opt = nn.Adam([w], lr=0.05)
        self._drive(opt, w, target, 2)
        state = opt.state_dict()
        state["buffers"]["m"][0][:] = 99.0
        assert not np.array_equal(opt._m[0], state["buffers"]["m"][0])

    def test_lr_and_steps_restored(self):
        w, target = quadratic_problem()
        opt = nn.Adam([w], lr=0.05)
        self._drive(opt, w, target, 5)
        state = opt.state_dict()
        w2, _ = quadratic_problem()
        fresh = nn.Adam([w2], lr=0.001)
        fresh.load_state_dict(state)
        assert fresh.lr == pytest.approx(0.05)
        assert fresh.steps == 5

    def test_missing_buffer_rejected(self):
        w, _ = quadratic_problem()
        opt = nn.Adam([w])
        with pytest.raises(KeyError):
            opt.load_state_dict({"lr": 0.1, "steps": 0, "buffers": {}})

    def test_wrong_param_count_rejected(self):
        w, _ = quadratic_problem()
        opt = nn.SGD([w], momentum=0.9)
        with pytest.raises(ValueError):
            opt.load_state_dict({"lr": 0.1, "steps": 0,
                                 "buffers": {"velocity": [None, None]}})

    def test_wrong_buffer_shape_rejected(self):
        w, _ = quadratic_problem()
        opt = nn.SGD([w], momentum=0.9)
        bad = np.zeros(7, dtype=np.float32)
        with pytest.raises(ValueError):
            opt.load_state_dict({"lr": 0.1, "steps": 0,
                                 "buffers": {"velocity": [bad]}})

    def test_failed_load_leaves_state_untouched(self):
        w, target = quadratic_problem()
        opt = nn.SGD([w], lr=0.05, momentum=0.9)
        self._drive(opt, w, target, 2)
        velocity_before = [v.copy() for v in opt._velocity]
        with pytest.raises(ValueError):
            opt.load_state_dict({"lr": 0.1, "steps": 0,
                                 "buffers": {"velocity": [np.zeros(9)]}})
        assert opt.steps == 2
        for vb, v in zip(velocity_before, opt._velocity):
            np.testing.assert_array_equal(vb, v)
