"""Optimizers: update math and convergence behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules import Parameter


def quadratic_problem():
    """Minimize ||w - target||^2."""
    w = Parameter(np.zeros(3, dtype=np.float32))
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    return w, target


def loss_and_grad(w, target):
    diff = w - nn.Tensor(target)
    loss = (diff * diff).sum()
    loss.backward()
    return loss


class TestSGD:
    def test_plain_step_math(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        w.grad = np.array([0.5], dtype=np.float32)
        nn.SGD([w], lr=0.1).step()
        np.testing.assert_allclose(w.data, [0.95])

    def test_momentum_accumulates(self):
        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.SGD([w], lr=1.0, momentum=0.5)
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1, w=-1
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(w.data, [-2.5])

    def test_weight_decay(self):
        w = Parameter(np.array([2.0], dtype=np.float32))
        w.grad = np.array([0.0], dtype=np.float32)
        nn.SGD([w], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(w.data, [1.9])

    def test_skips_params_without_grad(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        nn.SGD([w], lr=0.1).step()
        np.testing.assert_allclose(w.data, [1.0])

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = nn.SGD([w], lr=0.1, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            loss_and_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.Adam([w], lr=0.01)
        w.grad = np.array([3.0], dtype=np.float32)
        opt.step()
        assert w.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = nn.Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_and_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_weight_decay_applied(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert w.data[0] < 1.0

    def test_default_lr_matches_paper_discriminator(self):
        opt = nn.Adam([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(0.001)


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad_clears(self):
        w = Parameter(np.zeros(2))
        w.grad = np.ones(2, dtype=np.float32)
        opt = nn.SGD([w], lr=0.1)
        opt.zero_grad()
        assert w.grad is None

    def test_step_counter(self):
        w = Parameter(np.zeros(1))
        opt = nn.Adam([w])
        w.grad = np.ones(1, dtype=np.float32)
        opt.step()
        opt.step()
        assert opt.steps == 2
