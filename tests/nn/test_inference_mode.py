"""nn.inference_mode: exact per-module mode snapshot/restore."""

import numpy as np
import pytest

from repro import nn


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Dense(4, 8, rng=rng),
        nn.ReLU(),
        nn.Dropout(0.5, rng=rng),
        nn.Dense(8, 2, rng=rng),
    )


def flags(module):
    return [m._training for m in module.modules()]


def test_eval_inside_restore_outside():
    net = small_net().train()
    with nn.inference_mode(net) as inside:
        assert inside is net
        assert not any(flags(net))     # everything in eval
    assert all(flags(net))             # everything back in train


def test_heterogeneous_flags_survive():
    """The save-one-flag dance this replaces would lose this state."""
    net = small_net().train()
    dropout = net.layers[2]
    dropout._training = False          # deliberately frozen submodule
    before = flags(net)
    assert True in before and False in before
    with nn.inference_mode(net):
        assert not any(flags(net))
    assert flags(net) == before        # exact restoration, not train()


def test_restores_on_exception():
    net = small_net().eval()
    net.layers[0]._training = True
    before = flags(net)
    with pytest.raises(RuntimeError, match="boom"):
        with nn.inference_mode(net):
            raise RuntimeError("boom")
    assert flags(net) == before


def test_multiple_modules():
    a, b = small_net(0).train(), small_net(1).eval()
    with nn.inference_mode(a, b) as (got_a, got_b):
        assert got_a is a and got_b is b
        assert not any(flags(a)) and not any(flags(b))
    assert all(flags(a)) and not any(flags(b))


def test_dropout_is_inert_inside():
    net = small_net().train()
    x = np.ones((4, 4), dtype=np.float32)
    with nn.inference_mode(net), nn.no_grad():
        one = net(nn.Tensor(x)).data
        two = net(nn.Tensor(x)).data
    np.testing.assert_array_equal(one, two)  # no stochastic masks


def test_needs_at_least_one_module():
    with pytest.raises(ValueError):
        nn.inference_mode()


def test_nested_contexts():
    net = small_net().train()
    with nn.inference_mode(net):
        with nn.inference_mode(net):
            assert not any(flags(net))
        assert not any(flags(net))     # inner restore: still all-eval
    assert all(flags(net))
