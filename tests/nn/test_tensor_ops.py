"""Autodiff correctness for the core tensor ops."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor, as_tensor, concat, stack


class TestConstruction:
    def test_float_data_is_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_int_labels_allowed_without_grad(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind in "iu"

    def test_int_with_grad_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])

    def test_rtruediv(self):
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** np.array([1.0, 2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([3.0])).data, [-3.0])

    def test_matmul(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_comparisons_return_numpy(self):
        mask = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])


class TestBackward:
    def test_add_grad(self):
        check_gradient(lambda a, b: a + b,
                       [np.random.randn(3, 4), np.random.randn(3, 4)], wrt=0)

    def test_mul_grad_both_sides(self):
        inputs = [np.random.randn(3, 4), np.random.randn(3, 4)]
        check_gradient(lambda a, b: a * b, inputs, wrt=0)
        check_gradient(lambda a, b: a * b, inputs, wrt=1)

    def test_div_grad(self):
        a = np.random.rand(3, 3) + 0.5
        b = np.random.rand(3, 3) + 0.5
        check_gradient(lambda x, y: x / y, [a, b], wrt=0)
        check_gradient(lambda x, y: x / y, [a, b], wrt=1)

    def test_pow_grad(self):
        check_gradient(lambda x: x ** 3, [np.random.rand(4) + 0.5])

    def test_matmul_grad(self):
        a = np.random.randn(2, 3)
        b = np.random.randn(3, 4)
        check_gradient(lambda x, y: x @ y, [a, b], wrt=0)
        check_gradient(lambda x, y: x @ y, [a, b], wrt=1)

    def test_broadcast_add_grad(self):
        a = np.random.randn(4, 3)
        bias = np.random.randn(3)
        check_gradient(lambda x, b: x + b, [a, bias], wrt=1)

    def test_broadcast_mul_grad(self):
        a = np.random.randn(4, 3)
        s = np.random.randn(1, 3)
        check_gradient(lambda x, y: x * y, [a, s], wrt=1)

    def test_reused_tensor_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        out = x * x + x  # d/dx = 2x + 1 = 5
        out.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_custom_seed(self):
        x = Tensor([1.0, 1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 0.0]))
        np.testing.assert_allclose(x.grad, [2.0, 0.0])

    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = x * 2
        assert not out.requires_grad
        assert nn.is_grad_enabled()


class TestShapeOps:
    def test_reshape_grad(self):
        check_gradient(lambda x: (x.reshape(6) * 2), [np.random.randn(2, 3)])

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros((2, 3))).reshape((3, 2))
        assert t.shape == (3, 2)

    def test_transpose_grad(self):
        check_gradient(lambda x: x.transpose(1, 0) * 2, [np.random.randn(2, 3)])

    def test_T_property(self):
        assert Tensor(np.zeros((2, 5))).T.shape == (5, 2)

    def test_getitem_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        x[0].sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0])

    def test_flatten_batch(self):
        t = Tensor(np.zeros((4, 2, 3, 3)))
        assert t.flatten_batch().shape == (4, 18)


class TestReductions:
    def test_sum_all_grad(self):
        check_gradient(lambda x: x.sum(), [np.random.randn(3, 4)])

    def test_sum_axis_grad(self):
        check_gradient(lambda x: x.sum(axis=1), [np.random.randn(3, 4)])

    def test_sum_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_matches_numpy(self):
        a = np.random.randn(3, 4).astype(np.float32)
        np.testing.assert_allclose(Tensor(a).mean(axis=0).data,
                                   a.mean(axis=0), rtol=1e-5)

    def test_mean_grad(self):
        check_gradient(lambda x: x.mean(axis=0), [np.random.randn(3, 4)])

    def test_mean_multi_axis(self):
        a = np.random.randn(2, 3, 4).astype(np.float32)
        np.testing.assert_allclose(Tensor(a).mean(axis=(1, 2)).data,
                                   a.mean(axis=(1, 2)), rtol=1e-5)

    def test_max_grad_unique(self):
        a = np.array([[1.0, 5.0, 2.0]])
        x = Tensor(a, requires_grad=True)
        x.max(axis=1).backward()
        np.testing.assert_allclose(x.grad, [[0, 1, 0]])

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_argmax(self):
        assert Tensor(np.array([[1.0, 9.0, 2.0]])).argmax(axis=1)[0] == 1


class TestStackConcat:
    def test_stack_forward_and_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3) * 2, requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_concat_grad_partition(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
