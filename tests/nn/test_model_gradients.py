"""End-to-end gradient checks through the real architectures."""

import numpy as np

from repro import nn
from repro.defenses import Discriminator
from repro.models import AllCNN, LeNet
from repro.nn.gradcheck import numeric_gradient
from repro.utils.rng import derive_rng


def _input_grad_matches_numeric(model, x, labels, tol=5e-2):
    # Tolerance allows for ReLU / max-pool kinks crossed by the finite
    # difference; per-op exactness is covered by the dedicated gradchecks.
    model.eval()

    def fn(inp):
        return nn.softmax_cross_entropy(model(inp), labels, reduction="sum")

    t = nn.Tensor(x, requires_grad=True)
    fn(t).backward()
    analytic = t.grad
    numeric = numeric_gradient(fn, [x], eps=1e-2)
    # Compare on a deterministic subsample of pixels for speed/robustness.
    flat_a = analytic.reshape(-1)
    flat_n = numeric.reshape(-1)
    idx = np.arange(0, flat_a.size, max(1, flat_a.size // 64))
    np.testing.assert_allclose(flat_a[idx], flat_n[idx], atol=tol, rtol=0.05)


def test_lenet_input_gradient_is_exact():
    rng = derive_rng(0, "t")
    model = LeNet(width=2, dense_units=8, image_size=8, rng=rng)
    x = rng.standard_normal((2, 1, 8, 8)).astype(np.float32) * 0.5
    _input_grad_matches_numeric(model, x, np.array([1, 3]))


def test_allcnn_input_gradient_is_exact():
    rng = derive_rng(1, "t")
    model = AllCNN(width=2, input_dropout=0.0, rng=rng)
    x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32) * 0.5
    _input_grad_matches_numeric(model, x, np.array([2]))


def test_discriminator_gradient_flows_to_logits():
    d = Discriminator(num_logits=10, rng=derive_rng(2, "t"))
    z = nn.Tensor(np.random.randn(4, 10).astype(np.float32),
                  requires_grad=True)
    probs = d(z)
    nn.bce_on_probs(probs, np.ones(4, dtype=np.float32)).backward()
    assert z.grad is not None
    assert np.any(z.grad != 0)


def test_parameter_gradients_populate_whole_lenet():
    rng = derive_rng(3, "t")
    model = LeNet(width=2, dense_units=8, image_size=8, rng=rng)
    x = rng.standard_normal((2, 1, 8, 8)).astype(np.float32)
    loss = nn.softmax_cross_entropy(model(nn.Tensor(x)), np.array([0, 1]))
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None, f"no grad for {name}"
