"""Loss functions: values against manual references, gradients, edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self):
        z = np.array([[2.0, 1.0, 0.0]], dtype=np.float32)
        t = np.array([0])
        expected = -np.log(np.exp(2.0) / np.exp([2.0, 1.0, 0.0]).sum())
        loss = nn.softmax_cross_entropy(Tensor(z), t)
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_accepts_one_hot(self):
        z = np.random.randn(4, 3).astype(np.float32)
        labels = np.array([0, 1, 2, 1])
        onehot = np.eye(3, dtype=np.float32)[labels]
        a = nn.softmax_cross_entropy(Tensor(z), labels).item()
        b = nn.softmax_cross_entropy(Tensor(z), onehot).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_wrong_one_hot_width(self):
        with pytest.raises(ValueError):
            nn.softmax_cross_entropy(Tensor(np.zeros((2, 3))),
                                     np.zeros((2, 4), dtype=np.float32))

    def test_batch_mismatch(self):
        with pytest.raises(ValueError):
            nn.softmax_cross_entropy(Tensor(np.zeros((2, 3))),
                                     np.array([0, 1, 2]))

    def test_gradcheck(self):
        labels = np.array([0, 2, 1])
        check_gradient(
            lambda z: nn.softmax_cross_entropy(z, labels, reduction="sum"),
            [np.random.randn(3, 4)],
        )

    def test_reduction_modes(self):
        z = Tensor(np.random.randn(4, 3).astype(np.float32))
        t = np.array([0, 1, 2, 0])
        total = nn.softmax_cross_entropy(z, t, reduction="sum").item()
        mean = nn.softmax_cross_entropy(z, t, reduction="mean").item()
        assert total == pytest.approx(mean * 4, rel=1e-5)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            nn.softmax_cross_entropy(Tensor(np.zeros((1, 2))),
                                     np.array([0]), reduction="bogus")

    def test_non_negative(self):
        z = Tensor(np.random.randn(8, 10).astype(np.float32) * 5)
        t = np.random.randint(0, 10, size=8)
        assert nn.softmax_cross_entropy(z, t).item() >= 0.0


class TestBCE:
    def test_with_logits_matches_manual(self):
        z = np.array([0.5, -1.0], dtype=np.float32)
        t = np.array([1.0, 0.0], dtype=np.float32)
        p = 1.0 / (1.0 + np.exp(-z))
        expected = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        loss = nn.bce_with_logits(Tensor(z), t)
        assert loss.item() == pytest.approx(expected, rel=1e-4)

    def test_with_logits_stable_extremes(self):
        loss = nn.bce_with_logits(Tensor([1000.0, -1000.0]),
                                  np.array([1.0, 0.0], dtype=np.float32))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-3

    def test_with_logits_gradcheck(self):
        t = np.array([1.0, 0.0, 1.0], dtype=np.float32)
        check_gradient(lambda z: nn.bce_with_logits(z, t, reduction="sum"),
                       [np.random.randn(3)])

    def test_on_probs_clamps(self):
        loss = nn.bce_on_probs(Tensor([0.0, 1.0]),
                               np.array([1.0, 0.0], dtype=np.float32))
        assert np.isfinite(loss.item())

    def test_on_probs_gradcheck(self):
        t = np.array([1.0, 0.0], dtype=np.float32)
        check_gradient(lambda p: nn.bce_on_probs(p, t, reduction="sum"),
                       [np.array([0.3, 0.7])])


class TestPenaltiesAndPaperLosses:
    def test_l2_penalty_value(self):
        x = Tensor(np.array([[3.0, 4.0], [0.0, 0.0]], dtype=np.float32))
        # mean over batch of squared l2 norms: (25 + 0) / 2
        assert nn.l2_penalty(x).item() == pytest.approx(12.5)

    def test_cls_loss_decomposition(self):
        z = Tensor(np.random.randn(4, 3).astype(np.float32))
        t = np.array([0, 1, 2, 0])
        lam = 0.4
        combined = nn.cls_loss(z, t, lam).item()
        manual = nn.softmax_cross_entropy(z, t).item() \
            + lam * nn.l2_penalty(z).item()
        assert combined == pytest.approx(manual, rel=1e-5)

    def test_clp_loss_decomposition(self):
        za = Tensor(np.random.randn(4, 3).astype(np.float32))
        zb = Tensor(np.random.randn(4, 3).astype(np.float32))
        ta = np.array([0, 1, 2, 0])
        tb = np.array([1, 1, 0, 2])
        lam = 0.5
        combined = nn.clp_loss(za, ta, zb, tb, lam).item()
        manual = nn.softmax_cross_entropy(za, ta).item() \
            + nn.softmax_cross_entropy(zb, tb).item() \
            + lam * nn.l2_penalty(za - zb).item()
        assert combined == pytest.approx(manual, rel=1e-5)

    def test_cls_lambda_zero_is_plain_ce(self):
        z = Tensor(np.random.randn(4, 3).astype(np.float32))
        t = np.array([0, 1, 2, 0])
        assert nn.cls_loss(z, t, 0.0).item() == pytest.approx(
            nn.softmax_cross_entropy(z, t).item(), rel=1e-6)

    def test_mse(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert nn.mse(a, np.array([0.0, 0.0], dtype=np.float32)).item() == \
            pytest.approx(2.5)
