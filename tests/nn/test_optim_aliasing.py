"""The fused optimizer steps must never mutate the gradient buffer.

The data-parallel training engine adopts worker-returned (or in-process
copied) gradient arrays as ``p.grad`` and hands them straight to the
fused ``sgd_step``/``adam_step`` through the ``ArrayOps`` seam.  If a
backend's fused step scribbled on the gradient in place — say, folding
weight decay into it — the engine's all-reduce buffers would corrupt
silently.  This suite pins the contract on every backend, across the
branchy configurations (momentum/weight-decay on and off), including a
repeated-step run so moment-buffer fast paths are exercised too.
"""

import numpy as np
import pytest

from repro import backend, nn
from repro.nn.modules import Parameter

BACKENDS = ["numpy", "fast", "compiled"]

CONFIGS = [
    ("sgd", dict(momentum=0.0, weight_decay=0.0)),
    ("sgd", dict(momentum=0.9, weight_decay=0.0)),
    ("sgd", dict(momentum=0.9, weight_decay=0.01)),
    ("adam", dict(weight_decay=0.0)),
    ("adam", dict(weight_decay=0.01)),
]


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("kind,options", CONFIGS)
def test_fused_step_leaves_gradient_untouched(backend_name, kind,
                                              options):
    with backend.use(backend_name):
        b = backend.active()
        rng = np.random.default_rng(11)
        param = Parameter(rng.normal(size=(7, 5)).astype(np.float32))
        opt = nn.SGD([param], lr=0.05, **options) if kind == "sgd" \
            else nn.Adam([param], lr=0.05, **options)
        for _ in range(3):   # repeat: moment buffers exist from step 2 on
            grad = rng.normal(size=(7, 5)).astype(np.float32)
            snapshot = grad.copy()
            param.grad = b.asarray(grad)
            before = np.asarray(b.to_numpy(param.grad)).copy()
            opt.step()
            # Neither the adopted backend array nor the numpy buffer it
            # may alias moved a single bit.
            assert np.array_equal(np.asarray(b.to_numpy(param.grad)),
                                  before)
            assert np.array_equal(grad, snapshot)
            param.grad = None
        # ... and the step itself did something.
        assert not np.array_equal(
            np.asarray(b.to_numpy(param.data)),
            np.zeros((7, 5), dtype=np.float32))
