"""Metrics registry semantics: instruments, merge, render, lifecycle."""

import gc
import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, MetricsSnapshotter, Sample


class TestInstruments:
    def test_counter_get_or_create_is_identity(self):
        a = obs.counter("x_total", help="h")
        b = obs.counter("x_total")
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3

    def test_labels_key_distinct_series(self):
        a = obs.counter("y_total", labels={"stage": "a"})
        b = obs.counter("y_total", labels={"stage": "b"})
        assert a is not b
        # label order never splits a series
        assert obs.counter("z_total", labels={"p": "1", "q": "2"}) is \
            obs.counter("z_total", labels={"q": "2", "p": "1"})

    def test_kind_mismatch_raises(self):
        obs.counter("w_total")
        with pytest.raises(TypeError):
            obs.gauge("w_total")

    def test_gauge_set_and_inc(self):
        g = obs.gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value == 3


class TestHistogram:
    def test_window_bounds_percentiles_not_totals(self):
        h = obs.histogram("lat_seconds", window=4)
        h.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        # deque-compat surface: bounded window...
        assert len(h) == 4
        assert list(h) == [3.0, 4.0, 5.0, 6.0]
        # ...but cumulative totals survive eviction
        assert h.count == 6
        assert h.sum == pytest.approx(21.0)

    def test_percentile_nearest_rank(self):
        h = obs.histogram("p_seconds")
        h.extend([0.010, 0.020, 0.030, 0.040, 0.050])
        assert h.percentile(50) == pytest.approx(0.030)
        assert h.percentile(99) == pytest.approx(0.050)
        assert obs.histogram("empty_seconds").percentile(50) == 0.0

    def test_buckets_are_cumulative(self):
        h = obs.histogram("b_seconds", buckets=(0.1, 1.0, 10.0))
        h.extend([0.05, 0.5, 0.5, 5.0, 50.0])
        snap = h.snapshot()
        assert dict(snap.buckets) == {0.1: 1, 1.0: 3, 10.0: 4}
        assert snap.count == 5

    def test_snapshot_merge(self):
        h1 = obs.histogram("m_seconds", buckets=(1.0, 2.0))
        h2 = obs.histogram("m2_seconds", buckets=(1.0, 2.0))
        h1.extend([0.5, 1.5])
        h2.extend([1.5, 5.0])
        merged = h1.snapshot().merge(h2.snapshot())
        assert dict(merged.buckets) == {1.0: 1, 2.0: 3}
        assert merged.count == 4
        assert merged.total == pytest.approx(8.5)


class TestRegistryCollect:
    def test_collector_samples_merge_across_owners(self):
        reg = obs.registry()

        class Owner:
            def __init__(self, n):
                self.n = n

            def collect(self):
                return [Sample.make("shared_total", "counter", self.n)]

        a, b = Owner(3), Owner(4)
        reg.register(a, Owner.collect)
        reg.register(b, Owner.collect)
        samples = {(s.name, s.labels): s.value for s in reg.collect()}
        assert samples[("shared_total", ())] == 7

    def test_dead_owners_prune(self):
        reg = obs.registry()

        class Owner:
            def collect(self):
                return [Sample.make("alive_total", "counter", 1)]

        owner = Owner()
        reg.register(owner, Owner.collect)
        assert any(s.name == "alive_total" for s in reg.collect())
        del owner
        gc.collect()
        assert not any(s.name == "alive_total" for s in reg.collect())

    def test_derived_gauge_from_totals(self):
        obs.counter("hits_total").inc(3)
        obs.counter("misses_total").inc(1)
        obs.derive("hit_ratio",
                   lambda v: v.get("hits_total", 0.0)
                   / max(v.get("hits_total", 0.0)
                         + v.get("misses_total", 0.0), 1.0))
        samples = {s.name: s.value for s in obs.registry().collect()}
        assert samples["hit_ratio"] == pytest.approx(0.75)

    def test_derive_sums_labels_out(self):
        obs.counter("lab_total", labels={"k": "a"}).inc(2)
        obs.counter("lab_total", labels={"k": "b"}).inc(6)
        seen = {}
        obs.derive("lab_ratio", lambda v: seen.update(v) or 0.0)
        obs.registry().collect()
        assert seen["lab_total"] == 8


class TestRender:
    def test_prometheus_text_shape(self):
        obs.counter("req_total", help="requests").inc(2)
        obs.gauge("depth", labels={"lane": "a"}).set(1.5)
        h = obs.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.extend([0.05, 0.5])
        text = obs.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 2" in text
        assert 'depth{lane="a"} 1.5' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.55" in text

    def test_label_value_escaping(self):
        obs.counter("esc_total", labels={"v": 'a"b\\c\nd'}).inc()
        text = obs.render_prometheus()
        assert 'v="a\\"b\\\\c\\nd"' in text

    def test_snapshot_flat_keys(self):
        obs.counter("c_total").inc(4)
        h = obs.histogram("h_seconds")
        h.observe(0.25)
        snap = obs.snapshot()
        assert snap["c_total"] == 4
        assert snap["h_seconds_count"] == 1
        assert snap["h_seconds_sum"] == pytest.approx(0.25)
        assert snap["h_seconds_p50"] == pytest.approx(0.25)


class TestScrapeUnderLoad:
    def test_concurrent_inc_and_render_never_tears(self):
        done = threading.Event()
        c = obs.counter("hot_total")

        def hammer():
            while not done.is_set():
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(20):
                text = obs.render_prometheus()
                assert "hot_total" in text
        finally:
            done.set()
            for t in threads:
                t.join()
        # every increment is eventually visible
        final = c.value
        assert obs.snapshot()["hot_total"] == final


class TestSnapshotter:
    def test_write_once_emits_parseable_line(self, tmp_path):
        obs.counter("snap_total").inc(7)
        path = tmp_path / "metrics.jsonl"
        snapper = MetricsSnapshotter(path, registry=obs.registry(),
                                     period_s=0.0)
        snapper.write_once()
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["kind"] == "metrics"
        assert record["metrics"]["snap_total"] == 7

    def test_registry_isolation_seam(self):
        mine = MetricsRegistry()
        old = obs.set_registry(mine)
        try:
            obs.counter("iso_total").inc()
            assert "iso_total" in obs.render_prometheus()
            assert not any(s.name == "iso_total" for s in old.collect())
        finally:
            obs.set_registry(old)
