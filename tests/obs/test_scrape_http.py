"""/v1/metrics over real sockets: coverage and consistency under load."""

import threading

import numpy as np
import pytest

from repro.data import load_split
from repro.models import build_classifier
from repro.serve import (
    ApiKeyAuth,
    HttpClient,
    HttpFrontend,
    HttpServer,
    ModelRegistry,
    Server,
    build_mixed_load,
    run_http_load,
)
from repro.serve.http_run import REQUIRED_METRIC_SERIES


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 48, seed=7)


def build_http(**frontend_kwargs):
    registry = ModelRegistry()
    registry.add("m", build_classifier("digits", width=4, seed=0),
                 backend="numpy")
    server = Server(registry, max_batch=8, deadline_ms=1.0,
                    gate="confidence", gate_threshold=0.5)
    frontend = HttpFrontend(server, auth=ApiKeyAuth({"ci": "key"}),
                            **frontend_kwargs)
    return HttpServer(frontend, host="127.0.0.1", port=0)


def parse_exposition(text):
    """Prometheus text -> {series-with-labels: float} (no meta lines)."""
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values


def scrape(client):
    response = client.metrics()
    assert response.status == 200
    return response.payload["raw"]


def test_metrics_endpoint_serves_required_series(split):
    httpd = build_http()
    with httpd:
        host, port = httpd.address
        traffic = build_mixed_load(split.test.images[:24],
                                   split.test.images[24:48],
                                   num_requests=20, seed=3)
        run_http_load(host, port, traffic, model="m", concurrency=4,
                      api_key="key")
        with HttpClient(host, port, api_key="key") as client:
            text = scrape(client)
    for series in REQUIRED_METRIC_SERIES:
        assert series in text, series
    values = parse_exposition(text)
    assert values["repro_http_requests_total"] >= 20
    assert values["repro_http_served_requests_total"] == 20
    assert values["repro_serve_requests_total"] == 20
    # gate + prediction-path coverage demanded by the acceptance list
    assert "repro_serve_gate_examples_total" in text
    assert "repro_serve_batch_size_bucket" in text
    assert "repro_serve_stage_latency_seconds" in text


def test_metrics_scrape_unauthenticated(split):
    httpd = build_http()
    with httpd:
        host, port = httpd.address
        with HttpClient(host, port) as anon:     # no API key on purpose
            response = anon.metrics()
    assert response.status == 200
    assert "repro_http_requests_total" in response.payload["raw"]


def test_concurrent_scrapes_are_consistent_snapshots(split):
    httpd = build_http()
    with httpd:
        host, port = httpd.address
        traffic = build_mixed_load(split.test.images[:24],
                                   split.test.images[24:48],
                                   num_requests=60, max_request_size=4,
                                   seed=5)
        scrapes = []
        stop = threading.Event()

        def scraper():
            with HttpClient(host, port, api_key="key") as client:
                while not stop.is_set():
                    scrapes.append(scrape(client))

        thread = threading.Thread(target=scraper)
        thread.start()
        try:
            report = run_http_load(host, port, traffic, model="m",
                                   concurrency=8, api_key="key")
        finally:
            stop.set()
            thread.join()
        with HttpClient(host, port, api_key="key") as client:
            scrapes.append(scrape(client))

    assert report.completed == 60
    assert len(scrapes) >= 2
    last_http = 0.0
    for text in scrapes:
        values = parse_exposition(text)
        # per-subsystem snapshots are internally consistent: completions
        # can never outrun admissions within one scrape
        assert values["repro_serve_requests_completed_total"] <= \
            values["repro_serve_requests_total"]
        assert values["repro_http_served_requests_total"] <= \
            values["repro_http_requests_total"]
        # counters are monotone across scrapes
        assert values["repro_http_requests_total"] >= last_http
        last_http = values["repro_http_requests_total"]
        # histogram invariant: +Inf bucket == count
        assert values['repro_serve_batch_size_bucket{le="+Inf"}'] == \
            values["repro_serve_batch_size_count"]
    final = parse_exposition(scrapes[-1])
    served = sum(len(r.images) for r in traffic)
    assert final["repro_serve_examples_total"] == served
    assert final["repro_http_served_examples_total"] == served
