"""Obs-test isolation: every test gets a fresh registry and starts with
tracing disabled, and leaves the process exactly as it found it."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def fresh_obs():
    old = obs.set_registry(obs.MetricsRegistry())
    obs.disable()
    yield
    obs.disable()
    obs.set_registry(old)
