"""The zero-perturbation guarantee: observability on vs off is bitwise
invisible to served predictions and trained weights, on every backend."""

import numpy as np
import pytest

import repro.backend as backend
from repro import obs
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.models import build_classifier
from repro.serve import ModelRegistry, Server
from tests.conftest import TinyNet, make_blobs_dataset

ALL_BACKENDS = backend.available_backends()


@pytest.fixture(scope="module")
def split():
    return load_split("digits", 64, 48, seed=7)


def serve_rows(backend_name, split, traced_to=None):
    """One fixed request schedule through a fresh server; returns the
    concatenated served logits."""
    if traced_to is not None:
        obs.enable(trace=traced_to)
    else:
        obs.disable()
    with backend.use(backend_name):
        model = build_classifier("digits", width=4, seed=0)
        registry = ModelRegistry()
        registry.add("m", model, backend=backend_name)
    server = Server(registry, max_batch=8, gate="confidence",
                    gate_threshold=0.5)
    sizes = [3, 5, 4, 4, 7, 1]
    cuts = np.cumsum([0] + sizes)
    handles = [server.submit("m", split.test.images[a:b])
               for a, b in zip(cuts, cuts[1:])]
    server.drain()
    flags = np.concatenate([h.flagged for h in handles])
    return np.concatenate([h.logits for h in handles]), flags


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_served_rows_identical_obs_on_off(backend_name, split, tmp_path):
    base_rows, base_flags = serve_rows(backend_name, split)
    trace = tmp_path / "trace.jsonl"
    traced_rows, traced_flags = serve_rows(backend_name, split,
                                           traced_to=trace)
    np.testing.assert_array_equal(base_rows, traced_rows)
    np.testing.assert_array_equal(base_flags, traced_flags)
    # and the traced run really did trace
    content = trace.read_text()
    assert '"serve.request"' in content
    assert '"serve.batch"' in content


def train_weights(backend_name, traced_to=None):
    if traced_to is not None:
        obs.enable(trace=traced_to)
    else:
        obs.disable()
    data = make_blobs_dataset(n=64, num_classes=4)
    with backend.use(backend_name) as b:
        trainer = VanillaTrainer(TinyNet(num_classes=4, seed=3),
                                 epochs=2, batch_size=16, seed=42)
        trainer.fit(data)
        return [np.array(b.to_numpy(p.data))
                for p in trainer.model.parameters()]


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_training_identical_obs_on_off(backend_name, tmp_path):
    base = train_weights(backend_name)
    trace = tmp_path / "trace.jsonl"
    traced = train_weights(backend_name, traced_to=trace)
    assert len(base) == len(traced)
    for want, got in zip(base, traced):
        np.testing.assert_array_equal(want, got)
    assert '"train.epoch"' in trace.read_text()
