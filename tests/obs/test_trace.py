"""Span tracing: id generation, JSONL appender safety, report CLI."""

import json
import os
import threading

from repro import obs
from repro.obs.report import aggregate_trace, format_report, load_spans, \
    run_obs_cli
from repro.obs.trace import JsonlAppender, Tracer, new_trace_id


class TestTraceIds:
    def test_unique_and_rng_free(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        prefix = f"{os.getpid():x}-"
        assert all(i.startswith(prefix) for i in ids)


class TestJsonlAppender:
    def test_thread_safety_no_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlAppender(path)
        threads = [
            threading.Thread(target=lambda k=k: [
                writer.write({"t": k, "i": i, "pad": "x" * 200})
                for i in range(200)])
            for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = path.read_text().splitlines()
        assert len(lines) == 1600
        records = [json.loads(line) for line in lines]  # every line parses
        assert sorted((r["t"], r["i"]) for r in records) == sorted(
            (k, i) for k in range(8) for i in range(200))

    def test_write_many_batches_and_reset_truncates(self, tmp_path):
        path = tmp_path / "b.jsonl"
        writer = JsonlAppender(path)
        writer.write_many([{"i": i} for i in range(5)])
        assert len(path.read_text().splitlines()) == 5
        writer.reset()
        assert path.read_text() == ""


class TestTracer:
    def test_emit_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tr = Tracer(path)
        tr.emit("serve.request", 0.25, trace="abc", examples=3)
        tr.emit("train.epoch", 1.0, epoch=0)
        spans = load_spans(path)
        assert [s["name"] for s in spans] == ["serve.request", "train.epoch"]
        first = spans[0]
        assert first["kind"] == "span"
        assert first["dur_s"] == 0.25
        assert first["trace"] == "abc"
        assert first["examples"] == 3
        assert first["pid"] == os.getpid()
        assert "trace" not in spans[1]  # only present when threaded

    def test_enable_disable_binding(self, tmp_path):
        assert obs.tracer() is None
        tr = obs.enable(trace=tmp_path / "t.jsonl")
        assert obs.tracer() is tr
        assert obs.enabled()
        obs.disable()
        assert obs.tracer() is None


class TestReport:
    def test_aggregate_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tr = Tracer(path)
        for i in range(4):
            tr.emit("http.request", 0.010 * (i + 1), trace=f"t{i}")
            tr.emit("serve.forward", 0.002)
        with open(path, "a") as handle:
            handle.write("NOT JSON\n")
            handle.write('{"kind": "metrics", "metrics": {}}\n')
        agg = aggregate_trace(load_spans(path))
        assert agg["spans"] == 8
        assert agg["stages"]["http.request"]["count"] == 4
        assert agg["stages"]["serve.forward"]["total_s"] == \
            __import__("pytest").approx(0.008)
        assert agg["throughput"]["request_span"] == "http.request"
        text = format_report(agg)
        assert "http.request" in text and "serve.forward" in text

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        Tracer(path).emit("serve.request", 0.1)
        assert run_obs_cli(["report", str(path)]) == 0
        assert "serve.request" in capsys.readouterr().out
        assert run_obs_cli([]) == 2
        assert run_obs_cli(["report"]) == 2
        assert run_obs_cli(["bogus", str(path)]) == 2
        assert run_obs_cli(["report", str(tmp_path / "missing.jsonl")]) == 2
