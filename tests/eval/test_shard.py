"""Shard-merge equality: sharded evaluation == the single-process engine.

The contract under test, per backend and per attack:

* the shard **layout** is a pure function of (batch size, shard_size) —
  never of the worker count — so any worker count schedules the same
  computation;
* per-shard RNG windows replay exactly the draws the full-batch stream
  assigns to each shard's rows (PGD's random starts);
* the order-preserving merge + parent-side scoring reproduce the
  single-process ``SuiteResult`` exactly: clean accuracy, per-attack
  accuracy, flip counts, evaluated counts.

Layout cases include ragged last shards, one-example shards, and a
single shard larger than the batch (the ``workers > num_examples``
degenerate case).  Crafted batches merge bitwise for the whole
signed-gradient family and CW; DeepFool iterates to decision boundaries
where sub-ULP forward jitter across batch compositions can nudge a
pixel, so its guarantee is the scored result, not the raw pixels (same
caveat the serving layer documents).
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro import backend
from repro.attacks import BIM, CarliniWagner, DeepFool, FGSM, MIM, PGD
from repro.eval.cache import AdversarialCache
from repro.eval.engine import AttackSuite
from repro.eval.shard import DEFAULT_SHARD_SIZE, ShardedCrafter, plan_shards
from repro.eval.transfer import transfer_attack_accuracy
from tests.conftest import TinyNet, make_blobs_dataset

EPS = 0.3

ATTACKS = {
    "fgsm": FGSM(eps=EPS),
    "bim": BIM(eps=EPS, step=0.12, iterations=3, early_stop=True),
    "pgd": PGD(eps=EPS, step=0.12, iterations=3, seed=5, early_stop=True),
    "pgd-naive": PGD(eps=EPS, step=0.12, iterations=3, seed=5,
                     early_stop=False),
    "pgd-restarts": PGD(eps=EPS, step=0.12, iterations=2, restarts=2,
                        seed=5, early_stop=True),
    "mim": MIM(eps=EPS, step=0.12, iterations=3, early_stop=True),
    "deepfool": DeepFool(eps=EPS, iterations=3),
    "cw": CarliniWagner(eps=EPS, iterations=4, early_stop=True),
}

#: Attacks whose merged shard pixels are pinned bitwise-identical to the
#: full-batch call (everything except the boundary-seeking DeepFool).
BITWISE_ATTACKS = [k for k in ATTACKS if k != "deepfool"]


@pytest.fixture(params=list(backend.available_backends()))
def on_backend(request):
    with backend.use(request.param):
        yield request.param


@pytest.fixture
def victim():
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))  # build the lazy head
    return model


@pytest.fixture
def batch():
    data = make_blobs_dataset(n=23, seed=3)  # prime: every layout ragged
    return data.images, data.labels


def result_key(result):
    """Everything a SuiteResult measures (timings excluded)."""
    return (result.model_name, result.dataset, result.clean_accuracy,
            [(r.attack, r.accuracy, r.flipped, r.evaluated, r.from_cache)
             for r in result.records])


class TestPlanShards:
    def test_layout_is_deterministic_and_covering(self):
        shards = plan_shards(23, 5)
        assert [s.size for s in shards] == [5, 5, 5, 5, 3]  # ragged tail
        assert shards[0].start == 0 and shards[-1].stop == 23
        assert all(s.total == 23 for s in shards)
        assert [s.index for s in shards] == list(range(5))
        assert plan_shards(23, 5) == shards

    def test_oversized_shard_is_single(self):
        # shard_size >= n — the workers > num_examples degenerate layout.
        (only,) = plan_shards(3, 100)
        assert (only.start, only.stop, only.total) == (0, 3, 3)

    def test_default_size(self):
        assert plan_shards(200)[0].size == DEFAULT_SHARD_SIZE

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_shards(0, 4)
        with pytest.raises(ValueError):
            plan_shards(10, 0)


class TestShardWindowedAttacks:
    """attack.for_shard(start, total) replays the full-batch rows."""

    @pytest.mark.parametrize("name", list(ATTACKS))
    def test_merged_shards_match_full_batch(self, on_backend, victim,
                                            batch, name):
        x, y = batch
        attack = ATTACKS[name]
        full = backend.active().to_numpy(attack(victim, x, y))
        merged = np.concatenate([
            backend.active().to_numpy(
                attack.for_shard(s.start, s.total)(
                    victim, x[s.start:s.stop], y[s.start:s.stop]))
            for s in plan_shards(len(x), 9)
        ])
        if name in BITWISE_ATTACKS:
            np.testing.assert_array_equal(merged, full)
        else:
            np.testing.assert_allclose(merged, full, atol=1e-6)

    def test_pgd_window_validation(self):
        attack = ATTACKS["pgd"]
        with pytest.raises(ValueError):
            attack.for_shard(-1, 10)
        windowed = attack.for_shard(8, 10)
        with pytest.raises(ValueError):
            # a 5-row batch cannot start at row 8 of a 10-row stream
            windowed(TinyNet(num_classes=4, seed=0),
                     np.zeros((5, 1, 8, 8), dtype=np.float32),
                     np.zeros(5, dtype=np.int64))

    def test_deterministic_attacks_shard_to_self(self):
        assert ATTACKS["fgsm"].for_shard(3, 10) is ATTACKS["fgsm"]
        assert ATTACKS["bim"].for_shard(3, 10) is ATTACKS["bim"]

    def test_pgd_window_changes_cache_identity(self):
        from repro.eval.cache import fingerprint_attack
        base = ATTACKS["pgd"]
        assert fingerprint_attack(base.for_shard(0, 23)) != \
            fingerprint_attack(base)


class TestSuiteEquality:
    """Sharded AttackSuite == single-process AttackSuite, per backend."""

    # 9 → ragged tail; 1 → one-example shards; 64 → single oversized
    # shard (the workers > num_examples layout).
    @pytest.mark.parametrize("shard_size", [9, 1, 64])
    def test_sharded_serial_matches_legacy(self, on_backend, victim,
                                           batch, shard_size):
        x, y = batch
        legacy = AttackSuite(ATTACKS).run(victim, x, y)
        sharded = AttackSuite(ATTACKS, shard_size=shard_size).run(
            victim, x, y)
        assert result_key(sharded) == result_key(legacy)

    def test_workers_do_not_change_layout(self):
        """The layout — and therefore the computation — is a function of
        shard_size alone; worker counts only schedule it."""
        a = AttackSuite(ATTACKS, workers=1, shard_size=7)
        b = AttackSuite(ATTACKS, workers=3, shard_size=7)
        try:
            assert a.crafter.shard_size == b.crafter.shard_size
            assert plan_shards(23, 7) == plan_shards(23, 7)
        finally:
            b.close()

    def test_transfer_sharded_matches_legacy(self, on_backend, batch):
        x, y = batch
        victim = TinyNet(num_classes=4, seed=0)
        surrogate = TinyNet(num_classes=4, seed=1)
        for model in (victim, surrogate):
            model(np.zeros((1, 1, 8, 8), dtype=np.float32))
        attacks = {"fgsm": ATTACKS["fgsm"], "pgd": ATTACKS["pgd"]}
        legacy = transfer_attack_accuracy(victim, surrogate, attacks, x, y)
        sharded = transfer_attack_accuracy(victim, surrogate, attacks, x, y,
                                           shard_size=9)
        assert {k: (v.white_box_accuracy, v.transfer_accuracy)
                for k, v in sharded.items()} == \
            {k: (v.white_box_accuracy, v.transfer_accuracy)
             for k, v in legacy.items()}

    def test_sharded_with_cache_matches_and_replays(self, victim, batch,
                                                    tmp_path):
        x, y = batch
        legacy = AttackSuite(ATTACKS).run(victim, x, y)
        cache = AdversarialCache(tmp_path / "adv")
        suite = AttackSuite(ATTACKS, cache=cache, shard_size=9)
        cold = suite.run(victim, x, y)
        warm = suite.run(victim, x, y)
        assert result_key(cold) == result_key(legacy)
        assert all(r.from_cache for r in warm.records)
        assert [r.accuracy for r in warm.records] == \
            [r.accuracy for r in cold.records]

    def test_torn_cache_entry_is_regenerated(self, victim, batch, tmp_path):
        """A crash-torn entry (garbage .npz) must read as a miss, not
        poison the sharded run."""
        x, y = batch
        # Disk-only: the in-memory layer would mask the torn files.
        cache = AdversarialCache(tmp_path / "adv", keep_in_memory=False)
        suite = AttackSuite({"fgsm": ATTACKS["fgsm"]}, cache=cache,
                            shard_size=9)
        first = suite.run(victim, x, y)
        for entry in (tmp_path / "adv").glob("*.npz"):
            entry.write_bytes(b"not an npz archive")
        again = suite.run(victim, x, y)
        assert result_key(again) == result_key(first)
        assert not again.records[0].from_cache


class TestAsyncRuns:
    def test_sync_fallback_completes_immediately(self, victim, batch):
        x, y = batch
        suite = AttackSuite({"fgsm": ATTACKS["fgsm"]}, shard_size=9)
        pending = suite.run_async(victim, x, y)
        assert pending.ready()
        assert result_key(pending.result()) == \
            result_key(suite.run(victim, x, y))

    def test_result_scores_against_snapshot(self, victim, batch):
        """Weight updates after submission must not leak into the probe
        reading (the in-training overlap contract)."""
        x, y = batch
        suite = AttackSuite({"fgsm": ATTACKS["fgsm"]}, shard_size=9)
        expected = suite.run(victim, x, y)
        # The sync fallback runs eagerly; the contract worth pinning here
        # is snapshot isolation of the parallel path's collection step,
        # exercised via the pickled-model scoring helper.
        blob = pickle.dumps(victim)
        for p in victim.parameters():
            p.data += 0.5  # "training" moves on
        restored = pickle.loads(blob)
        scored = AttackSuite({"fgsm": ATTACKS["fgsm"]},
                             shard_size=9).run(restored, x, y)
        assert result_key(dataclasses.replace(
            scored, model_name=expected.model_name)) == result_key(expected)
