"""Sec. IV-E metrics."""

import numpy as np
import pytest

from repro import nn
from repro.eval import predict_labels
from repro.eval.metrics import AccuracyReport
from repro.eval.metrics import test_accuracy as measure_accuracy


class ConstantModel(nn.Module):
    """Always predicts class 0 — makes accuracy arithmetic explicit."""

    def forward(self, x):
        n = x.shape[0]
        logits = np.zeros((n, 10), dtype=np.float32)
        logits[:, 0] = 1.0
        return nn.Tensor(logits)


class TestAccuracy:
    def test_all_correct(self):
        model = ConstantModel()
        x = np.zeros((4, 1, 2, 2), dtype=np.float32)
        assert measure_accuracy(model, x, np.zeros(4, int)) == 1.0

    def test_all_wrong(self):
        model = ConstantModel()
        x = np.zeros((4, 1, 2, 2), dtype=np.float32)
        assert measure_accuracy(model, x, np.ones(4, int)) == 0.0

    def test_fraction(self):
        model = ConstantModel()
        x = np.zeros((4, 1, 2, 2), dtype=np.float32)
        labels = np.array([0, 0, 1, 2])
        assert measure_accuracy(model, x, labels) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_accuracy(ConstantModel(),
                             np.zeros((0, 1, 2, 2), np.float32),
                             np.zeros(0, int))


class TestPredictLabels:
    def test_batched_equals_unbatched(self, tiny_net):
        x = np.random.randn(20, 1, 8, 8).astype(np.float32)
        a = predict_labels(tiny_net, x, batch_size=7)
        b = predict_labels(tiny_net, x, batch_size=64)
        np.testing.assert_array_equal(a, b)

    def test_restores_training_mode(self, tiny_net):
        tiny_net(np.zeros((1, 1, 8, 8), np.float32))
        tiny_net.train()
        predict_labels(tiny_net, np.zeros((2, 1, 8, 8), np.float32))
        assert tiny_net.training is True

    def test_empty_input(self, tiny_net):
        tiny_net(np.zeros((1, 1, 8, 8), np.float32))
        out = predict_labels(tiny_net, np.zeros((0, 1, 8, 8), np.float32))
        assert out.shape == (0,)


def test_accuracy_report_format():
    report = AccuracyReport(defense="zk-gandef", example_type="pgd",
                            accuracy=0.4217)
    assert "zk-gandef" in str(report)
    assert "42.17%" in str(report)
