"""Text table renderers."""

from repro.eval import (
    EvaluationResult,
    format_accuracy_table,
    format_series,
    format_timing_table,
)
from repro.defenses.base import TrainingHistory


def make_result(name, acc):
    history = TrainingHistory(losses=[1.0], epoch_seconds=[2.5])
    return EvaluationResult(defense=name, dataset="digits", accuracy=acc,
                            history=history)


def test_accuracy_table_layout():
    results = [make_result("vanilla", {"original": 0.99, "fgsm": 0.08}),
               make_result("zk-gandef", {"original": 0.98, "fgsm": 0.53})]
    text = format_accuracy_table(results, ["original", "fgsm"])
    lines = text.splitlines()
    assert "original" in lines[0] and "fgsm" in lines[0]
    assert "vanilla" in text and "zk-gandef" in text
    assert "99.00%" in text and "53.00%" in text


def test_accuracy_table_missing_cell_is_nan():
    text = format_accuracy_table([make_result("x", {"original": 1.0})],
                                 ["original", "pgd"])
    assert "nan" in text.lower()


def test_timing_table():
    text = format_timing_table([make_result("pgd-adv", {})])
    assert "pgd-adv" in text
    assert "2.500" in text


def test_series_formatting_handles_nan():
    text = format_series("loss curves", {"normal": [2.0, float("nan")]})
    assert "loss curves" in text
    assert "nan" in text
