"""The Figure 3 evaluation framework wiring."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.defenses import VanillaTrainer
from repro.eval import EvaluationFramework
from repro.models import build_classifier


@pytest.fixture
def framework(tiny_split):
    return EvaluationFramework(tiny_split, {"fgsm": FGSM(eps=0.4)},
                               eval_size=16)


class TestEvaluate:
    def test_result_structure(self, framework, tiny_split):
        model = build_classifier("digits", width=2, seed=0)
        trainer = VanillaTrainer(model, epochs=1, batch_size=16)
        result = framework.evaluate(trainer)
        assert result.defense == "vanilla"
        assert result.dataset == tiny_split.name
        assert set(result.accuracy) == {"original", "fgsm"}
        assert result.history is not None
        assert result.mean_epoch_seconds > 0

    def test_defense_name_override(self, framework):
        model = build_classifier("digits", width=2, seed=0)
        trainer = VanillaTrainer(model, epochs=1, batch_size=16)
        result = framework.evaluate(trainer, defense_name="custom")
        assert result.defense == "custom"

    def test_accuracies_are_fractions(self, framework):
        model = build_classifier("digits", width=2, seed=0)
        result = framework.evaluate(VanillaTrainer(model, epochs=1,
                                                   batch_size=16))
        for value in result.accuracy.values():
            assert 0.0 <= value <= 1.0

    def test_evaluate_pretrained_skips_training(self, framework, tiny_split):
        model = build_classifier("digits", width=2, seed=0)
        VanillaTrainer(model, epochs=1, batch_size=16).fit(tiny_split.train)
        before = [p.data.copy() for p in model.parameters()]
        result = framework.evaluate_pretrained(model, "frozen")
        for old, p in zip(before, model.parameters()):
            np.testing.assert_array_equal(old, p.data)
        assert result.defense == "frozen"
        assert result.mean_epoch_seconds == 0.0


class TestValidation:
    def test_eval_size_clamped_to_test_set(self, tiny_split):
        fw = EvaluationFramework(tiny_split, {}, eval_size=10_000)
        assert len(fw._test_x) == len(tiny_split.test)

    def test_zero_eval_size_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            EvaluationFramework(tiny_split, {}, eval_size=0)
