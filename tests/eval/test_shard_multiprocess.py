"""Sharded evaluation with a real spawn pool.

The serial equality suite (test_shard.py) pins the math over every
layout cheaply; these tests pin that actual worker processes — spawn
initialization, model shipping, per-worker cache instances over one
shared directory, async collection — produce the very same bits.  Kept
small: each pool spawn costs interpreter startups.
"""

import numpy as np
import pytest

from repro.attacks import FGSM, PGD
from repro.defenses.base import TrainingHistory
from repro.eval.cache import AdversarialCache
from repro.eval.engine import AttackSuite
from repro.train.probe import RobustnessProbe
from tests.conftest import TinyNet, make_blobs_dataset

ATTACKS = {
    "fgsm": FGSM(eps=0.3),
    "pgd": PGD(eps=0.3, step=0.12, iterations=3, seed=5, early_stop=True),
}


def result_key(result):
    return (result.clean_accuracy,
            [(r.attack, r.accuracy, r.flipped, r.evaluated, r.from_cache)
             for r in result.records])


@pytest.fixture
def victim():
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))
    return model


def test_worker_pool_matches_legacy_and_shares_cache(victim, tmp_path):
    data = make_blobs_dataset(n=23, seed=3)
    x, y = data.images, data.labels
    legacy = AttackSuite(ATTACKS).run(victim, x, y)
    cache = AdversarialCache(tmp_path / "adv")
    with AttackSuite(ATTACKS, cache=cache, workers=2,
                     shard_size=9) as suite:
        cold = suite.run(victim, x, y)
        warm = suite.run(victim, x, y)
        # Async submission against a snapshot: collect after "training"
        # has moved the live weights.
        pending = suite.run_async(victim, x, y)
        for p in victim.parameters():
            p.data += 0.25
        collected = pending.result()
        for p in victim.parameters():
            p.data -= 0.25
    assert result_key(cold) == result_key(legacy)
    # Workers populated one shared directory; the rerun replays all of it.
    assert all(r.from_cache for r in warm.records)
    assert [r.accuracy for r in warm.records] == \
        [r.accuracy for r in cold.records]
    # The async run scored against its snapshot, so the accuracies (all
    # shards cached by then) match the cold run despite the weight bump.
    assert [r.accuracy for r in collected.records] == \
        [r.accuracy for r in cold.records]
    assert (tmp_path / "adv" / AdversarialCache.JOURNAL_NAME).exists()


def test_more_workers_than_examples(victim):
    """workers > num_examples: idle workers, one-example shards, same
    result."""
    data = make_blobs_dataset(n=3, seed=4)
    x, y = data.images, data.labels
    legacy = AttackSuite(ATTACKS).run(victim, x, y)
    with AttackSuite(ATTACKS, workers=4, shard_size=1) as suite:
        sharded = suite.run(victim, x, y)
    assert result_key(sharded) == result_key(legacy)


class _FakeLoop:
    """Just enough TrainLoop surface for the probe callback."""

    def __init__(self, trainer):
        self.trainer = trainer
        self.stopping = False


class _FakeTrainer:
    name = "fake"

    def __init__(self, model, epochs):
        self.model = model
        self.epochs = epochs
        self.completed_epochs = 0
        self.history = TrainingHistory()


def drive_probe(probe, model, epochs):
    """Simulate a training run: probe every epoch, weights drift between
    epochs."""
    trainer = _FakeTrainer(model, epochs)
    loop = _FakeLoop(trainer)
    for epoch in range(epochs):
        trainer.completed_epochs = epoch + 1
        probe.on_epoch_end(loop, epoch, {})
        for p in model.parameters():  # next epoch "trains"
            p.data += 0.05
    probe.on_train_end(loop)
    return trainer.history


def test_async_probe_matches_sync_probe(tmp_path):
    """Overlapping probes read the same numbers as stalling ones, in the
    same epoch order, because each submission snapshots the weights."""
    data = make_blobs_dataset(n=12, seed=5)
    histories, proberuns = [], []
    for workers in (1, 2):
        model = TinyNet(num_classes=4, seed=0)
        model(np.zeros((1, 1, 8, 8), dtype=np.float32))
        suite = AttackSuite(ATTACKS, workers=workers, shard_size=6)
        probe = RobustnessProbe(suite, data.images, data.labels, every=1)
        assert probe.overlapping == (workers > 1)
        try:
            histories.append(drive_probe(probe, model, epochs=3))
            proberuns.append((probe.probe_epochs,
                              [result_key(r) for r in probe.results]))
        finally:
            probe.close()
    assert proberuns[0] == proberuns[1]
    assert histories[0].extra == histories[1].extra
