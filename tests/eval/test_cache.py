"""Adversarial cache correctness: bit-identical replay, key invalidation."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.eval.cache import (
    AdversarialCache,
    cache_key,
    fingerprint_attack,
    fingerprint_data,
    fingerprint_model,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def setup():
    data = make_blobs_dataset(n=16, seed=2)
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))  # build the lazy head
    return model, data.images, data.labels


ATTACK = BIM(eps=0.3, step=0.1, iterations=3)


class TestBitIdenticalReplay:
    def test_hit_returns_identical_batch(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        first, hit1 = cache.get_or_generate(ATTACK, model, x, y)
        second, hit2 = cache.get_or_generate(ATTACK, model, x, y)
        assert (hit1, hit2) == (False, True)
        assert second.dtype == first.dtype
        np.testing.assert_array_equal(second, first)

    def test_disk_roundtrip_is_bit_identical(self, setup, tmp_path):
        """A fresh cache instance (no in-memory layer) replays from disk."""
        model, x, y = setup
        root = tmp_path / "adv"
        first, _ = AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        reread, hit = AdversarialCache(
            root, keep_in_memory=False).get_or_generate(ATTACK, model, x, y)
        assert hit is True
        assert reread.tobytes() == first.tobytes()

    def test_hit_miss_counters(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(FGSM(eps=0.3), model, x, y)
        assert cache.hits == 1
        assert cache.misses == 2
        assert len(cache) == 2


class TestKeyInvalidation:
    def test_mutating_weights_invalidates(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        before = fingerprint_model(model)
        next(iter(model.parameters())).data += 1e-3
        assert fingerprint_model(model) != before
        _, hit = cache.get_or_generate(ATTACK, model, x, y)
        assert hit is False

    def test_attack_config_changes_invalidate(self, setup):
        model, x, y = setup
        base = fingerprint_attack(ATTACK)
        assert fingerprint_attack(BIM(eps=0.31, step=0.1,
                                      iterations=3)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1,
                                      iterations=4)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1, iterations=3,
                                      early_stop=True)) != base
        # Different attack class at identical hyper-parameters.
        assert fingerprint_attack(FGSM(eps=0.3)) != base

    def test_data_changes_invalidate(self, setup):
        _, x, y = setup
        base = fingerprint_data(x, y)
        bumped = x.copy()
        bumped[0, 0, 0, 0] += 1e-6
        assert fingerprint_data(bumped, y) != base
        relabeled = y.copy()
        relabeled[0] = (relabeled[0] + 1) % 4
        assert fingerprint_data(x, relabeled) != base

    def test_key_is_deterministic(self, setup):
        model, x, y = setup
        assert cache_key(model, ATTACK, x, y) == \
            cache_key(model, ATTACK, x, y)

    def test_identical_config_different_instances_share_key(self, setup):
        model, x, y = setup
        twin = BIM(eps=0.3, step=0.1, iterations=3)
        assert cache_key(model, ATTACK, x, y) == cache_key(model, twin, x, y)


class TestLRUEviction:
    """The ``max_bytes`` cap: bounded footprint, uncorrupted results."""

    def attacks(self, n):
        return [BIM(eps=0.1 + 0.05 * i, step=0.1, iterations=2)
                for i in range(n)]

    def entry_bytes(self, setup, tmp_path):
        """Size of one stored entry for this batch geometry."""
        model, x, y = setup
        probe = AdversarialCache(tmp_path / "probe", max_bytes=1 << 30)
        probe.get_or_generate(ATTACK, model, x, y)
        return probe.total_bytes

    def test_footprint_stays_under_cap(self, setup, tmp_path):
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=3 * size)
        for attack in self.attacks(5):
            cache.get_or_generate(attack, model, x, y)
        assert cache.total_bytes <= 3 * size
        assert len(cache) == 3          # on disk too, not just in the index
        assert cache.evictions == 2

    def test_eviction_is_least_recently_used(self, setup, tmp_path):
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=2 * size)
        first, second, third = self.attacks(3)
        cache.get_or_generate(first, model, x, y)
        cache.get_or_generate(second, model, x, y)
        cache.get_or_generate(first, model, x, y)   # touch: first is now MRU
        cache.get_or_generate(third, model, x, y)   # evicts second, not first
        _, hit_first = cache.get_or_generate(first, model, x, y)
        assert hit_first is True
        _, hit_second = cache.get_or_generate(second, model, x, y)
        assert hit_second is False      # second was the LRU casualty

    def test_eviction_never_corrupts_results(self, setup, tmp_path):
        """The regression the cap must not introduce: under heavy
        eviction pressure every get_or_generate still returns the exact
        batch the attack produces."""
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=size)  # thrash
        attacks = self.attacks(3)
        direct = {i: attack(model, x, y)
                  for i, attack in enumerate(attacks)}
        for _ in range(2):              # every entry evicted and remade
            for i, attack in enumerate(attacks):
                got, _ = cache.get_or_generate(attack, model, x, y)
                np.testing.assert_array_equal(got, direct[i])

    def test_recency_survives_reconstruction(self, setup, tmp_path):
        """A new instance over the same directory ranks existing entries
        by mtime and keeps enforcing the cap."""
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        root = tmp_path / "adv"
        first = AdversarialCache(root, max_bytes=4 * size)
        for attack in self.attacks(3):
            first.get_or_generate(attack, model, x, y)
        reopened = AdversarialCache(root, max_bytes=2 * size)
        assert reopened.total_bytes == 3 * size     # inherited entries
        reopened.get_or_generate(self.attacks(4)[3], model, x, y)
        assert reopened.total_bytes <= 2 * size
        assert len(reopened) == 2

    def test_uncapped_cache_never_evicts(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")   # max_bytes=None
        for attack in self.attacks(4):
            cache.get_or_generate(attack, model, x, y)
        assert len(cache) == 4 and cache.evictions == 0

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            AdversarialCache(tmp_path / "adv", max_bytes=0)


class TestStorageHygiene:
    def test_load_unknown_key_returns_none(self, tmp_path):
        cache = AdversarialCache(tmp_path / "adv")
        assert cache.load("0" * 64) is None

    def test_store_creates_directory_lazily(self, setup, tmp_path):
        root = tmp_path / "deep" / "adv"
        cache = AdversarialCache(root)
        assert len(cache) == 0
        model, x, y = setup
        cache.get_or_generate(ATTACK, model, x, y)
        assert root.is_dir()
        assert len(cache) == 1

    def test_no_tmp_files_left_behind(self, setup, tmp_path):
        model, x, y = setup
        root = tmp_path / "adv"
        AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        leftovers = [f for f in root.iterdir() if ".tmp" in f.name]
        assert leftovers == []
