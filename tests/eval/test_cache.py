"""Adversarial cache correctness: bit-identical replay, key invalidation."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.eval.cache import (
    AdversarialCache,
    cache_key,
    fingerprint_attack,
    fingerprint_data,
    fingerprint_model,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def setup():
    data = make_blobs_dataset(n=16, seed=2)
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))  # build the lazy head
    return model, data.images, data.labels


ATTACK = BIM(eps=0.3, step=0.1, iterations=3)


class TestBitIdenticalReplay:
    def test_hit_returns_identical_batch(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        first, hit1 = cache.get_or_generate(ATTACK, model, x, y)
        second, hit2 = cache.get_or_generate(ATTACK, model, x, y)
        assert (hit1, hit2) == (False, True)
        assert second.dtype == first.dtype
        np.testing.assert_array_equal(second, first)

    def test_disk_roundtrip_is_bit_identical(self, setup, tmp_path):
        """A fresh cache instance (no in-memory layer) replays from disk."""
        model, x, y = setup
        root = tmp_path / "adv"
        first, _ = AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        reread, hit = AdversarialCache(
            root, keep_in_memory=False).get_or_generate(ATTACK, model, x, y)
        assert hit is True
        assert reread.tobytes() == first.tobytes()

    def test_hit_miss_counters(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(FGSM(eps=0.3), model, x, y)
        assert cache.hits == 1
        assert cache.misses == 2
        assert len(cache) == 2


class TestKeyInvalidation:
    def test_mutating_weights_invalidates(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        before = fingerprint_model(model)
        next(iter(model.parameters())).data += 1e-3
        assert fingerprint_model(model) != before
        _, hit = cache.get_or_generate(ATTACK, model, x, y)
        assert hit is False

    def test_attack_config_changes_invalidate(self, setup):
        model, x, y = setup
        base = fingerprint_attack(ATTACK)
        assert fingerprint_attack(BIM(eps=0.31, step=0.1,
                                      iterations=3)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1,
                                      iterations=4)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1, iterations=3,
                                      early_stop=True)) != base
        # Different attack class at identical hyper-parameters.
        assert fingerprint_attack(FGSM(eps=0.3)) != base

    def test_data_changes_invalidate(self, setup):
        _, x, y = setup
        base = fingerprint_data(x, y)
        bumped = x.copy()
        bumped[0, 0, 0, 0] += 1e-6
        assert fingerprint_data(bumped, y) != base
        relabeled = y.copy()
        relabeled[0] = (relabeled[0] + 1) % 4
        assert fingerprint_data(x, relabeled) != base

    def test_key_is_deterministic(self, setup):
        model, x, y = setup
        assert cache_key(model, ATTACK, x, y) == \
            cache_key(model, ATTACK, x, y)

    def test_identical_config_different_instances_share_key(self, setup):
        model, x, y = setup
        twin = BIM(eps=0.3, step=0.1, iterations=3)
        assert cache_key(model, ATTACK, x, y) == cache_key(model, twin, x, y)


class TestStorageHygiene:
    def test_load_unknown_key_returns_none(self, tmp_path):
        cache = AdversarialCache(tmp_path / "adv")
        assert cache.load("0" * 64) is None

    def test_store_creates_directory_lazily(self, setup, tmp_path):
        root = tmp_path / "deep" / "adv"
        cache = AdversarialCache(root)
        assert len(cache) == 0
        model, x, y = setup
        cache.get_or_generate(ATTACK, model, x, y)
        assert root.is_dir()
        assert len(cache) == 1

    def test_no_tmp_files_left_behind(self, setup, tmp_path):
        model, x, y = setup
        root = tmp_path / "adv"
        AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        leftovers = [f for f in root.iterdir() if ".tmp" in f.name]
        assert leftovers == []
