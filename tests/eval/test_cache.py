"""Adversarial cache correctness: bit-identical replay, key invalidation."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.eval.cache import (
    AdversarialCache,
    cache_key,
    fingerprint_attack,
    fingerprint_data,
    fingerprint_model,
)
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def setup():
    data = make_blobs_dataset(n=16, seed=2)
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))  # build the lazy head
    return model, data.images, data.labels


ATTACK = BIM(eps=0.3, step=0.1, iterations=3)


class TestBitIdenticalReplay:
    def test_hit_returns_identical_batch(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        first, hit1 = cache.get_or_generate(ATTACK, model, x, y)
        second, hit2 = cache.get_or_generate(ATTACK, model, x, y)
        assert (hit1, hit2) == (False, True)
        assert second.dtype == first.dtype
        np.testing.assert_array_equal(second, first)

    def test_disk_roundtrip_is_bit_identical(self, setup, tmp_path):
        """A fresh cache instance (no in-memory layer) replays from disk."""
        model, x, y = setup
        root = tmp_path / "adv"
        first, _ = AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        reread, hit = AdversarialCache(
            root, keep_in_memory=False).get_or_generate(ATTACK, model, x, y)
        assert hit is True
        assert reread.tobytes() == first.tobytes()

    def test_hit_miss_counters(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(ATTACK, model, x, y)
        cache.get_or_generate(FGSM(eps=0.3), model, x, y)
        assert cache.hits == 1
        assert cache.misses == 2
        assert len(cache) == 2


class TestKeyInvalidation:
    def test_mutating_weights_invalidates(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")
        cache.get_or_generate(ATTACK, model, x, y)
        before = fingerprint_model(model)
        next(iter(model.parameters())).data += 1e-3
        assert fingerprint_model(model) != before
        _, hit = cache.get_or_generate(ATTACK, model, x, y)
        assert hit is False

    def test_attack_config_changes_invalidate(self, setup):
        model, x, y = setup
        base = fingerprint_attack(ATTACK)
        assert fingerprint_attack(BIM(eps=0.31, step=0.1,
                                      iterations=3)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1,
                                      iterations=4)) != base
        assert fingerprint_attack(BIM(eps=0.3, step=0.1, iterations=3,
                                      early_stop=True)) != base
        # Different attack class at identical hyper-parameters.
        assert fingerprint_attack(FGSM(eps=0.3)) != base

    def test_data_changes_invalidate(self, setup):
        _, x, y = setup
        base = fingerprint_data(x, y)
        bumped = x.copy()
        bumped[0, 0, 0, 0] += 1e-6
        assert fingerprint_data(bumped, y) != base
        relabeled = y.copy()
        relabeled[0] = (relabeled[0] + 1) % 4
        assert fingerprint_data(x, relabeled) != base

    def test_key_is_deterministic(self, setup):
        model, x, y = setup
        assert cache_key(model, ATTACK, x, y) == \
            cache_key(model, ATTACK, x, y)

    def test_identical_config_different_instances_share_key(self, setup):
        model, x, y = setup
        twin = BIM(eps=0.3, step=0.1, iterations=3)
        assert cache_key(model, ATTACK, x, y) == cache_key(model, twin, x, y)


class TestLRUEviction:
    """The ``max_bytes`` cap: bounded footprint, uncorrupted results."""

    def attacks(self, n):
        return [BIM(eps=0.1 + 0.05 * i, step=0.1, iterations=2)
                for i in range(n)]

    def entry_bytes(self, setup, tmp_path):
        """Size of one stored entry for this batch geometry."""
        model, x, y = setup
        probe = AdversarialCache(tmp_path / "probe", max_bytes=1 << 30)
        probe.get_or_generate(ATTACK, model, x, y)
        return probe.total_bytes

    def test_footprint_stays_under_cap(self, setup, tmp_path):
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=3 * size)
        for attack in self.attacks(5):
            cache.get_or_generate(attack, model, x, y)
        assert cache.total_bytes <= 3 * size
        assert len(cache) == 3          # on disk too, not just in the index
        assert cache.evictions == 2

    def test_eviction_is_least_recently_used(self, setup, tmp_path):
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=2 * size)
        first, second, third = self.attacks(3)
        cache.get_or_generate(first, model, x, y)
        cache.get_or_generate(second, model, x, y)
        cache.get_or_generate(first, model, x, y)   # touch: first is now MRU
        cache.get_or_generate(third, model, x, y)   # evicts second, not first
        _, hit_first = cache.get_or_generate(first, model, x, y)
        assert hit_first is True
        _, hit_second = cache.get_or_generate(second, model, x, y)
        assert hit_second is False      # second was the LRU casualty

    def test_eviction_never_corrupts_results(self, setup, tmp_path):
        """The regression the cap must not introduce: under heavy
        eviction pressure every get_or_generate still returns the exact
        batch the attack produces."""
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        cache = AdversarialCache(tmp_path / "adv", max_bytes=size)  # thrash
        attacks = self.attacks(3)
        direct = {i: attack(model, x, y)
                  for i, attack in enumerate(attacks)}
        for _ in range(2):              # every entry evicted and remade
            for i, attack in enumerate(attacks):
                got, _ = cache.get_or_generate(attack, model, x, y)
                np.testing.assert_array_equal(got, direct[i])

    def test_recency_survives_reconstruction(self, setup, tmp_path):
        """A new instance over the same directory replays the recency
        journal and keeps enforcing the cap."""
        model, x, y = setup
        size = self.entry_bytes(setup, tmp_path)
        root = tmp_path / "adv"
        first = AdversarialCache(root, max_bytes=4 * size)
        for attack in self.attacks(3):
            first.get_or_generate(attack, model, x, y)
        reopened = AdversarialCache(root, max_bytes=2 * size)
        assert reopened.total_bytes == 3 * size     # inherited entries
        reopened.get_or_generate(self.attacks(4)[3], model, x, y)
        assert reopened.total_bytes <= 2 * size
        assert len(reopened) == 2

    def test_uncapped_cache_never_evicts(self, setup, tmp_path):
        model, x, y = setup
        cache = AdversarialCache(tmp_path / "adv")   # max_bytes=None
        for attack in self.attacks(4):
            cache.get_or_generate(attack, model, x, y)
        assert len(cache) == 4 and cache.evictions == 0

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            AdversarialCache(tmp_path / "adv", max_bytes=0)


class TestRecencyJournal:
    """The sidecar journal replacing mtime-ranked recency.

    mtime has ~1s granularity on some filesystems: same-second entries
    evicted in arbitrary order, and a cross-process touch racing an
    eviction could act on (and appear to resurrect) a removed key.  The
    journal is explicit, ordered and lock-guarded.
    """

    def attacks(self, n):
        return [BIM(eps=0.1 + 0.05 * i, step=0.1, iterations=2)
                for i in range(n)]

    def test_same_instant_stores_keep_true_order(self, setup, tmp_path):
        """Entries written within one filesystem-timestamp tick still
        evict strictly oldest-first (mtime could not distinguish them)."""
        model, x, y = setup
        root = tmp_path / "adv"
        writer = AdversarialCache(root, max_bytes=1 << 30)
        for attack in self.attacks(4):      # all inside the same second
            writer.get_or_generate(attack, model, x, y)
        size = writer.total_bytes // 4
        reopened = AdversarialCache(root, max_bytes=2 * size)
        reopened._evict_over_cap()
        # Probe with load() (no re-store) so the probe cannot disturb
        # the order it is checking.
        survivors = [reopened.load(cache_key(model, a, x, y)) is not None
                     for a in self.attacks(4)]
        assert survivors == [False, False, True, True]  # oldest two gone

    def test_touch_is_journaled_not_mtime(self, setup, tmp_path):
        """A hit through a *different* instance still protects the entry
        from a third instance's eviction — cross-process recency."""
        model, x, y = setup
        root = tmp_path / "adv"
        first = AdversarialCache(root, max_bytes=1 << 30)
        a, b, c = self.attacks(3)
        first.get_or_generate(a, model, x, y)
        first.get_or_generate(b, model, x, y)
        size = first.total_bytes // 2
        # Another "process" touches the older entry...
        toucher = AdversarialCache(root, keep_in_memory=False,
                                   max_bytes=1 << 30)
        assert toucher.get_or_generate(a, model, x, y)[1] is True
        # ...so a capped writer evicts b (now the true LRU), not a.
        evictor = AdversarialCache(root, keep_in_memory=False,
                                   max_bytes=2 * size)
        evictor.get_or_generate(c, model, x, y)
        assert evictor.get_or_generate(a, model, x, y)[1] is True
        assert evictor.get_or_generate(b, model, x, y)[1] is False

    def test_foreign_entry_touch_is_adopted(self, setup, tmp_path):
        """A capped instance hitting an entry stored by another process
        *after* its own construction must still journal the recency bump
        (the entry is adopted into its LRU view on first sight)."""
        model, x, y = setup
        root = tmp_path / "adv"
        a, b, c = self.attacks(3)
        capped = AdversarialCache(root, keep_in_memory=False,
                                  max_bytes=1 << 30)  # constructed first
        other = AdversarialCache(root, keep_in_memory=False,
                                 max_bytes=1 << 30)
        other.get_or_generate(a, model, x, y)   # after capped's replay
        other.get_or_generate(b, model, x, y)
        assert capped.get_or_generate(a, model, x, y)[1] is True  # bump a
        size = other.total_bytes // 2
        evictor = AdversarialCache(root, keep_in_memory=False,
                                   max_bytes=2 * size)
        evictor.get_or_generate(c, model, x, y)  # must evict b, not a
        assert evictor.get_or_generate(a, model, x, y)[1] is True
        assert evictor.get_or_generate(b, model, x, y)[1] is False

    def test_eviction_cannot_resurrect(self, setup, tmp_path):
        """An evicted key stays evicted even when another instance held
        it tracked: the journal's evict record wins over stale state."""
        model, x, y = setup
        root = tmp_path / "adv"
        a, b = self.attacks(2)
        one = AdversarialCache(root, keep_in_memory=False,
                               max_bytes=1 << 30)
        one.get_or_generate(a, model, x, y)
        size = one.total_bytes
        one.get_or_generate(b, model, x, y)
        two = AdversarialCache(root, keep_in_memory=False, max_bytes=size)
        two._evict_over_cap()               # evicts a (the LRU)
        assert one.get_or_generate(a, model, x, y)[1] is False  # regenerated
        # The regeneration re-stored it — that is a fresh journaled store,
        # not a resurrection of stale recency.
        assert one.get_or_generate(a, model, x, y)[1] is True

    def test_torn_journal_line_is_skipped(self, setup, tmp_path):
        model, x, y = setup
        root = tmp_path / "adv"
        cache = AdversarialCache(root, max_bytes=1 << 30)
        for attack in self.attacks(2):
            cache.get_or_generate(attack, model, x, y)
        with open(root / AdversarialCache.JOURNAL_NAME, "a") as handle:
            handle.write('{"key": "tru')    # crash mid-append
        reopened = AdversarialCache(root, max_bytes=1 << 30)
        assert len(reopened._lru) == 2
        assert reopened.get_or_generate(self.attacks(1)[0],
                                        model, x, y)[1] is True

    def test_unjournaled_entries_rank_oldest(self, setup, tmp_path):
        """Files that predate the journal (legacy caches) are adopted as
        least-recent and evict first."""
        model, x, y = setup
        root = tmp_path / "adv"
        a, b = self.attacks(2)
        legacy = AdversarialCache(root)     # uncapped journals stores...
        legacy.get_or_generate(a, model, x, y)
        (root / AdversarialCache.JOURNAL_NAME).unlink()  # ...erase history
        size = sum(f.stat().st_size for f in root.glob("*.npz"))
        capped = AdversarialCache(root, keep_in_memory=False,
                                  max_bytes=size)
        capped.get_or_generate(b, model, x, y)
        assert capped.get_or_generate(b, model, x, y)[1] is True
        assert capped.get_or_generate(a, model, x, y)[1] is False

    def test_compaction_preserves_order(self, setup, tmp_path,
                                        monkeypatch):
        model, x, y = setup
        root = tmp_path / "adv"
        monkeypatch.setattr(AdversarialCache, "COMPACT_THRESHOLD", 4)
        cache = AdversarialCache(root, max_bytes=1 << 30)
        attacks = self.attacks(3)
        for attack in attacks:
            cache.get_or_generate(attack, model, x, y)
        for _ in range(5):                  # touches pile up journal lines
            cache.get_or_generate(attacks[0], model, x, y)
        reopened = AdversarialCache(root, max_bytes=1 << 30)  # compacts
        lines = (root / AdversarialCache.JOURNAL_NAME) \
            .read_text().strip().splitlines()
        assert len(lines) == 3              # one record per live key
        assert list(reopened._lru) == list(cache._lru)

    def test_spec_roundtrip(self, tmp_path):
        cache = AdversarialCache(tmp_path / "adv", max_bytes=123)
        twin = AdversarialCache(**cache.spec())
        assert twin.root == cache.root and twin.max_bytes == 123


class TestStorageHygiene:
    def test_load_unknown_key_returns_none(self, tmp_path):
        cache = AdversarialCache(tmp_path / "adv")
        assert cache.load("0" * 64) is None

    def test_store_creates_directory_lazily(self, setup, tmp_path):
        root = tmp_path / "deep" / "adv"
        cache = AdversarialCache(root)
        assert len(cache) == 0
        model, x, y = setup
        cache.get_or_generate(ATTACK, model, x, y)
        assert root.is_dir()
        assert len(cache) == 1

    def test_no_tmp_files_left_behind(self, setup, tmp_path):
        model, x, y = setup
        root = tmp_path / "adv"
        AdversarialCache(root).get_or_generate(ATTACK, model, x, y)
        leftovers = [f for f in root.iterdir() if ".tmp" in f.name]
        assert leftovers == []
