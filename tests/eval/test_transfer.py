"""Black-box transfer evaluation extension."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.eval import transfer_attack_accuracy
from repro.models import build_classifier


@pytest.fixture(scope="module")
def pair():
    split = load_split("digits", 256, 64, seed=23)
    victim = build_classifier("digits", width=4, seed=0)
    surrogate = build_classifier("digits", width=4, seed=99)
    VanillaTrainer(victim, epochs=4, batch_size=32).fit(split.train)
    VanillaTrainer(surrogate, epochs=4, batch_size=32,
                   seed=99).fit(split.train)
    return victim, surrogate, split.test.images[:32], split.test.labels[:32]


class TestTransfer:
    def test_result_structure(self, pair):
        victim, surrogate, x, y = pair
        results = transfer_attack_accuracy(
            victim, surrogate, {"fgsm": FGSM(eps=0.4)}, x, y)
        assert set(results) == {"fgsm"}
        r = results["fgsm"]
        assert 0.0 <= r.white_box_accuracy <= 1.0
        assert 0.0 <= r.transfer_accuracy <= 1.0

    def test_white_box_at_least_as_strong_as_transfer(self, pair):
        """Direct gradients beat surrogate gradients (standard threat
        ordering) — allow slack for the small eval set."""
        victim, surrogate, x, y = pair
        r = transfer_attack_accuracy(
            victim, surrogate, {"fgsm": FGSM(eps=0.4)}, x, y)["fgsm"]
        assert r.white_box_accuracy <= r.transfer_accuracy + 0.15
        assert r.transfer_gap >= -0.15

    def test_empty_input_rejected(self, pair):
        victim, surrogate, _, _ = pair
        with pytest.raises(ValueError):
            transfer_attack_accuracy(
                victim, surrogate, {},
                np.zeros((0, 1, 28, 28), np.float32), np.zeros(0, int))

    def test_self_transfer_equals_white_box(self, pair):
        """Using the victim itself as surrogate makes both numbers equal."""
        victim, _, x, y = pair
        r = transfer_attack_accuracy(
            victim, victim, {"fgsm": FGSM(eps=0.4)}, x, y)["fgsm"]
        assert r.white_box_accuracy == pytest.approx(r.transfer_accuracy)


class TestTransferCache:
    def test_repeat_run_hits_cache_with_identical_numbers(self, pair,
                                                          tmp_path):
        from repro.eval import AdversarialCache
        victim, surrogate, x, y = pair
        attacks = {"fgsm": FGSM(eps=0.4)}
        cache = AdversarialCache(tmp_path / "adv")
        first = transfer_attack_accuracy(victim, surrogate, attacks, x, y,
                                         cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        second = transfer_attack_accuracy(victim, surrogate, attacks, x, y,
                                          cache=cache)
        assert cache.hits == 2
        assert second["fgsm"].white_box_accuracy == \
            first["fgsm"].white_box_accuracy
        assert second["fgsm"].transfer_accuracy == \
            first["fgsm"].transfer_accuracy
