"""The batched evaluation engine: suite runs, shared clean pass, streaming."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.eval import AdversarialCache, AttackSuite, EvaluationFramework
from repro.eval.reporting import format_accuracy_table
from tests.conftest import TinyNet, make_blobs_dataset


@pytest.fixture
def setup():
    data = make_blobs_dataset(n=24, seed=3)
    model = TinyNet(num_classes=4, seed=0)
    model(np.zeros((1, 1, 8, 8), dtype=np.float32))  # build the lazy head
    return model, data.images, data.labels


ATTACKS = {"fgsm": FGSM(eps=0.3), "bim": BIM(eps=0.3, step=0.1, iterations=3)}


class TestAttackSuite:
    def test_result_covers_grid(self, setup):
        model, x, y = setup
        result = AttackSuite(ATTACKS).run(model, x, y, model_name="tiny",
                                          dataset="blobs")
        assert result.model_name == "tiny"
        assert result.dataset == "blobs"
        assert [r.attack for r in result.records] == ["fgsm", "bim"]
        assert set(result.accuracy) == {"original", "fgsm", "bim"}
        for value in result.accuracy.values():
            assert 0.0 <= value <= 1.0

    def test_one_shared_clean_forward_pass(self, setup, monkeypatch):
        """The clean test batch is classified exactly once per run.

        Attacks still make their own differentiable passes (those carry
        gradients), but the suite must not recompute the clean *inference*
        forward per metric — one pass feeds the original accuracy and every
        flip count.
        """
        import repro.eval.engine as engine_mod
        model, x, y = setup
        calls = []
        real_predict = engine_mod.predict_labels

        def spying_predict(model, images, batch_size=256):
            calls.append(images)
            return real_predict(model, images, batch_size)

        monkeypatch.setattr(engine_mod, "predict_labels", spying_predict)
        AttackSuite(ATTACKS).run(model, x, y)
        # One clean inference pass plus one per adversarial batch; the clean
        # one is identified by identity, not value (an attack output can
        # legitimately equal the input).
        assert len(calls) == 1 + len(ATTACKS)
        clean_passes = [im for im in calls if np.shares_memory(im, x)]
        assert len(clean_passes) == 1

    def test_streaming_callback_sees_every_record(self, setup):
        model, x, y = setup
        seen = []
        AttackSuite(ATTACKS).run(model, x, y, on_record=seen.append)
        assert [r.attack for r in seen] == ["fgsm", "bim"]
        assert all(r.seconds >= 0 for r in seen)
        assert all(r.evaluated == len(x) for r in seen)

    def test_flip_counts_consistent_with_accuracy(self, setup):
        model, x, y = setup
        result = AttackSuite(ATTACKS).run(model, x, y)
        for record in result.records:
            # Flips only count clean-correct examples broken by the attack.
            assert 0 <= record.flipped <= round(
                result.clean_accuracy * len(x))

    def test_early_stop_override_applied(self):
        suite = AttackSuite({"bim": BIM(eps=0.1, early_stop=False)},
                            early_stop=True)
        assert suite.attacks["bim"].early_stop is True
        neutral = AttackSuite({"bim": BIM(eps=0.1, early_stop=False)},
                              early_stop=None)
        assert neutral.attacks["bim"].early_stop is False

    def test_empty_batch_rejected(self, setup):
        model, _, _ = setup
        with pytest.raises(ValueError):
            AttackSuite(ATTACKS).run(model, np.empty((0, 1, 8, 8)),
                                     np.empty(0, dtype=np.int64))

    def test_run_grid_one_result_per_model(self, setup):
        model, x, y = setup
        other = TinyNet(num_classes=4, seed=1)
        results = AttackSuite({"fgsm": FGSM(eps=0.2)}).run_grid(
            {"a": model, "b": other}, x, y, dataset="blobs")
        assert [r.model_name for r in results] == ["a", "b"]

    def test_streams_into_reporting_types(self, setup):
        """Suite accuracies render through the existing table formatter."""
        model, x, y = setup
        from repro.eval.framework import EvaluationResult
        suite_result = AttackSuite(ATTACKS).run(model, x, y,
                                                model_name="tiny")
        bridged = EvaluationResult(defense="tiny", dataset="blobs")
        bridged.accuracy.update(suite_result.accuracy)
        table = format_accuracy_table([bridged], ["original", "fgsm", "bim"])
        assert "tiny" in table and "%" in table

    def test_cached_run_same_accuracies(self, setup, tmp_path):
        model, x, y = setup
        cold = AttackSuite(ATTACKS,
                           cache=AdversarialCache(tmp_path / "adv"))
        first = cold.run(model, x, y)
        assert all(not r.from_cache for r in first.records)
        warm = AttackSuite(ATTACKS,
                           cache=AdversarialCache(tmp_path / "adv"))
        second = warm.run(model, x, y)
        assert all(r.from_cache for r in second.records)
        assert second.accuracy == first.accuracy


class TestFrameworkDelegation:
    def test_framework_records_suite_telemetry(self, tiny_split):
        model = TinyNet(seed=0)
        framework = EvaluationFramework(tiny_split,
                                        {"fgsm": FGSM(eps=0.3)},
                                        eval_size=8)
        result = framework.evaluate_pretrained(model, "tiny")
        assert set(result.accuracy) == {"original", "fgsm"}
        suite_result = framework.last_suite_result
        assert suite_result is not None
        assert suite_result.accuracy == result.accuracy

    def test_framework_respects_attack_flags(self, tiny_split):
        attack = BIM(eps=0.3, step=0.1, iterations=2, early_stop=False)
        framework = EvaluationFramework(tiny_split, {"bim": attack},
                                        eval_size=4)
        assert framework.suite.attacks["bim"].early_stop is False
