"""Augmentation / projection: the regulation function F and Gaussian noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.preprocessing import (
    BOX_HIGH,
    BOX_LOW,
    GaussianAugmenter,
    gaussian_perturb,
    project_box,
)
from repro.utils.rng import derive_rng


class TestProjectBox:
    def test_inside_untouched(self):
        x = np.array([0.0, -0.5, 0.5], dtype=np.float32)
        np.testing.assert_array_equal(project_box(x), x)

    def test_outside_clipped(self):
        out = project_box(np.array([-3.0, 3.0]))
        np.testing.assert_array_equal(out, [-1.0, 1.0])

    def test_returns_float32(self):
        assert project_box(np.zeros(3, dtype=np.float64)).dtype == np.float32

    @given(arrays(np.float32, (8,),
                  elements=st.floats(-100, 100, allow_nan=False, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_always_inside_box(self, x):
        out = project_box(x)
        assert np.all(out >= BOX_LOW)
        assert np.all(out <= BOX_HIGH)


class TestGaussianPerturb:
    def test_sigma_zero_is_projection_only(self):
        x = np.zeros((4, 1, 2, 2), dtype=np.float32)
        out = gaussian_perturb(x, derive_rng(0, "t"), sigma=0.0)
        np.testing.assert_array_equal(out, x)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            gaussian_perturb(np.zeros((1, 1, 2, 2), dtype=np.float32),
                             derive_rng(0, "t"), sigma=-1.0)

    def test_output_in_box(self):
        x = np.zeros((16, 1, 8, 8), dtype=np.float32)
        out = gaussian_perturb(x, derive_rng(0, "t"), sigma=5.0)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_noise_statistics(self):
        # With a wide box the raw noise std should be ~sigma.
        x = np.zeros((64, 1, 16, 16), dtype=np.float32)
        out = gaussian_perturb(x, derive_rng(0, "t"), sigma=0.1)
        noise = out - x
        assert abs(noise.std() - 0.1) < 0.01
        assert abs(noise.mean()) < 0.01

    def test_mu_shifts(self):
        x = np.zeros((64, 1, 16, 16), dtype=np.float32)
        out = gaussian_perturb(x, derive_rng(0, "t"), sigma=0.01, mu=0.5)
        assert abs((out - x).mean() - 0.5) < 0.01

    def test_deterministic_per_stream(self):
        x = np.zeros((4, 1, 4, 4), dtype=np.float32)
        a = gaussian_perturb(x, derive_rng(9, "s"), sigma=1.0)
        b = gaussian_perturb(x, derive_rng(9, "s"), sigma=1.0)
        np.testing.assert_array_equal(a, b)


class TestAugmenter:
    def test_stateful_stream_advances(self):
        aug = GaussianAugmenter(derive_rng(0, "t"), sigma=1.0)
        x = np.zeros((4, 1, 4, 4), dtype=np.float32)
        assert not np.array_equal(aug(x), aug(x))

    def test_default_paper_sigma(self):
        aug = GaussianAugmenter(derive_rng(0, "t"))
        assert aug.sigma == 1.0
        assert aug.mu == 0.0
