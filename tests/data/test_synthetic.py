"""Synthetic dataset generators: shapes, ranges, determinism, learnability."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASETS,
    NUM_CLASSES,
    SyntheticDigits,
    SyntheticFashion,
    SyntheticObjects,
    make_dataset,
)


@pytest.mark.parametrize("cls,shape", [
    (SyntheticDigits, (1, 28, 28)),
    (SyntheticFashion, (1, 28, 28)),
    (SyntheticObjects, (3, 32, 32)),
])
class TestGenerators:
    def test_shapes_and_dtype(self, cls, shape):
        images, labels = cls(seed=0).generate(20)
        assert images.shape == (20, *shape)
        assert images.dtype == np.float32
        assert labels.shape == (20,)

    def test_pixel_range(self, cls, shape):
        images, _ = cls(seed=0).generate(20)
        assert images.min() >= -1.0
        assert images.max() <= 1.0

    def test_deterministic(self, cls, shape):
        a_img, a_lab = cls(seed=5).generate(10)
        b_img, b_lab = cls(seed=5).generate(10)
        np.testing.assert_array_equal(a_img, b_img)
        np.testing.assert_array_equal(a_lab, b_lab)

    def test_seed_changes_data(self, cls, shape):
        a_img, _ = cls(seed=1).generate(10)
        b_img, _ = cls(seed=2).generate(10)
        assert not np.array_equal(a_img, b_img)

    def test_classes_balanced(self, cls, shape):
        _, labels = cls(seed=0).generate(100)
        counts = np.bincount(labels, minlength=NUM_CLASSES)
        assert counts.min() == counts.max() == 10

    def test_classes_are_visually_distinct(self, cls, shape):
        """Mean images of different classes must differ substantially —
        otherwise no classifier could separate them."""
        images, labels = cls(seed=0).generate(200)
        means = np.stack([images[labels == k].mean(axis=0)
                          for k in range(NUM_CLASSES)])
        for i in range(NUM_CLASSES):
            for j in range(i + 1, NUM_CLASSES):
                assert np.abs(means[i] - means[j]).mean() > 0.01


class TestFactory:
    def test_known_names(self):
        for name in DATASETS:
            assert make_dataset(name).name == name

    def test_paper_aliases(self):
        assert isinstance(make_dataset("mnist"), SyntheticDigits)
        assert isinstance(make_dataset("fashion-mnist"), SyntheticFashion)
        assert isinstance(make_dataset("CIFAR10"), SyntheticObjects)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")


class TestComplexityOrdering:
    def test_fashion_has_more_detail_than_digits(self):
        """Reproduce the paper's premise: Fashion images carry more
        within-image variance (texture) than digit images."""
        dig, _ = SyntheticDigits(seed=0).generate(100)
        fash, _ = SyntheticFashion(seed=0).generate(100)

        def gray_entropy(images):
            # entropy of the gray-level histogram: texture-rich images use
            # many more intermediate gray levels than near-binary strokes
            hist = np.histogram(images, bins=32)[0] / images.size
            hist = hist[hist > 0]
            return float(-(hist * np.log(hist)).sum())

        assert gray_entropy(fash) > gray_entropy(dig)
