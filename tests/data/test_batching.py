"""Batch iterators: epoch coverage, pairing, sizing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, iterate_batches, iterate_pairs, num_batches
from repro.utils.rng import derive_rng


def make_dataset(n):
    images = np.zeros((n, 1, 2, 2), dtype=np.float32)
    images[:, 0, 0, 0] = np.linspace(-1, 1, n)  # unique marker per item
    return Dataset(images, np.arange(n) % 3)


class TestNumBatches:
    def test_exact_division(self):
        assert num_batches(10, 5) == 2

    def test_remainder_kept(self):
        assert num_batches(11, 5) == 3

    def test_remainder_dropped(self):
        assert num_batches(11, 5, drop_last=True) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            num_batches(10, 0)

    def test_drop_last_smaller_than_batch_raises(self):
        """The silent-no-op regression: num_batches(5, 32, drop_last=True)
        used to return 0 and trainers ran zero-step epochs."""
        with pytest.raises(ValueError, match="zero batches"):
            num_batches(5, 32, drop_last=True)

    def test_empty_set_raises(self):
        with pytest.raises(ValueError, match="zero batches"):
            num_batches(0, 32)
        with pytest.raises(ValueError, match="zero batches"):
            num_batches(0, 32, drop_last=True)

    def test_exact_batch_size_boundary(self):
        """n == batch_size yields exactly one batch with and without
        drop_last — the boundary right above the error."""
        assert num_batches(32, 32, drop_last=True) == 1
        assert num_batches(32, 32, drop_last=False) == 1
        assert num_batches(33, 32, drop_last=True) == 1

    @given(st.integers(1, 200), st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_matches_iteration(self, n, bs):
        ds = make_dataset(n)
        count = sum(1 for _ in iterate_batches(ds, bs, derive_rng(0, "t")))
        assert count == num_batches(n, bs)


class TestIterateBatches:
    def test_covers_every_item_once(self):
        ds = make_dataset(23)
        seen = []
        for x, _ in iterate_batches(ds, 5, derive_rng(0, "t")):
            seen.extend(x[:, 0, 0, 0].tolist())
        assert sorted(seen) == sorted(ds.images[:, 0, 0, 0].tolist())

    def test_labels_follow_images(self):
        ds = make_dataset(12)
        marker_to_label = dict(zip(ds.images[:, 0, 0, 0].tolist(),
                                   ds.labels.tolist()))
        for x, y in iterate_batches(ds, 4, derive_rng(1, "t")):
            for marker, label in zip(x[:, 0, 0, 0].tolist(), y.tolist()):
                assert marker_to_label[marker] == label

    def test_drop_last(self):
        ds = make_dataset(10)
        batches = list(iterate_batches(ds, 3, derive_rng(0, "t"),
                                       drop_last=True))
        assert all(len(x) == 3 for x, _ in batches)
        assert len(batches) == 3

    def test_drop_last_empty_epoch_raises_before_consuming_rng(self):
        ds = make_dataset(5)
        rng = derive_rng(0, "t")
        before = rng.bit_generator.state
        with pytest.raises(ValueError, match="zero batches"):
            list(iterate_batches(ds, 32, rng, drop_last=True))
        # The error fires before the shuffle, so the stream is untouched
        # and a caller that catches it can retry without drop_last.
        assert rng.bit_generator.state == before

    def test_exact_batch_size_boundary_iterates_once(self):
        ds = make_dataset(8)
        batches = list(iterate_batches(ds, 8, derive_rng(0, "t"),
                                       drop_last=True))
        assert len(batches) == 1 and len(batches[0][0]) == 8

    def test_pairs_reject_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch size"):
            list(iterate_pairs(make_dataset(3), 0, derive_rng(0, "t")))

    def test_shuffling_differs_between_epochs(self):
        ds = make_dataset(32)
        rng = derive_rng(0, "t")
        first = next(iterate_batches(ds, 32, rng))[0]
        second = next(iterate_batches(ds, 32, rng))[0]
        assert not np.array_equal(first, second)


class TestIteratePairs:
    def test_two_independent_streams(self):
        ds = make_dataset(16)
        for xa, ta, xb, tb in iterate_pairs(ds, 4, derive_rng(0, "t")):
            assert xa.shape == xb.shape
            assert len(ta) == len(tb) == len(xa)

    def test_each_stream_covers_epoch(self):
        ds = make_dataset(12)
        seen_a, seen_b = [], []
        for xa, _, xb, _ in iterate_pairs(ds, 5, derive_rng(0, "t")):
            seen_a.extend(xa[:, 0, 0, 0].tolist())
            seen_b.extend(xb[:, 0, 0, 0].tolist())
        expected = sorted(ds.images[:, 0, 0, 0].tolist())
        assert sorted(seen_a) == expected
        assert sorted(seen_b) == expected
