"""Dataset container and the Separation step."""

import numpy as np
import pytest

from repro.data import Dataset, load_split


def make_images(n=10, value=0.5):
    return np.full((n, 1, 4, 4), value, dtype=np.float32)


class TestDataset:
    def test_basic(self):
        ds = Dataset(make_images(), np.arange(10) % 3)
        assert len(ds) == 10
        assert ds.image_shape == (1, 4, 4)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((10, 16), dtype=np.float32), np.zeros(10, int))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(ValueError):
            Dataset(make_images(10), np.zeros(5, int))

    def test_rejects_out_of_range_pixels(self):
        with pytest.raises(ValueError):
            Dataset(make_images(value=2.0), np.zeros(10, int))

    def test_rejects_empty(self):
        """A 0-example set used to pass construction and only fail later
        (divide-by-zero accuracy, zero-batch epochs)."""
        with pytest.raises(ValueError, match="no examples"):
            Dataset(np.zeros((0, 1, 4, 4), dtype=np.float32),
                    np.zeros(0, dtype=np.int64))

    def test_range_check_without_zero_clamp(self):
        """The old ``min(initial=0.0)`` clamped the computed bounds toward
        0: an all-positive set just above 1 slipped past the upper check
        only via its true max, and reported ranges were wrong.  Both
        all-positive and all-negative sets must be validated against
        their true extrema."""
        # all-negative pixels, genuinely out of range: must be caught
        with pytest.raises(ValueError, match="pixels outside"):
            Dataset(make_images(value=-1.5), np.zeros(10, int))
        # legal all-positive and all-negative sets still construct
        Dataset(make_images(value=0.9), np.zeros(10, int))
        Dataset(make_images(value=-0.9), np.zeros(10, int))

    def test_casts_dtype(self):
        ds = Dataset(make_images().astype(np.float64), np.zeros(10, int))
        assert ds.images.dtype == np.float32

    def test_subset(self):
        ds = Dataset(make_images(10), np.arange(10))
        sub = ds.subset(4)
        assert len(sub) == 4

    def test_subset_too_large(self):
        ds = Dataset(make_images(10), np.arange(10))
        with pytest.raises(ValueError):
            ds.subset(11)

    def test_class_counts(self):
        ds = Dataset(make_images(10), np.arange(10) % 2)
        counts = ds.class_counts()
        assert counts[0] == 5 and counts[1] == 5


class TestLoadSplit:
    def test_sizes(self):
        split = load_split("digits", 50, 20, seed=0)
        assert len(split.train) == 50
        assert len(split.test) == 20

    def test_no_overlap_between_train_and_test(self):
        split = load_split("digits", 30, 30, seed=0)
        # Different images (generation is a single stream split in two).
        assert not np.array_equal(split.train.images[:30],
                                  split.test.images[:30])

    def test_image_shape_property(self):
        split = load_split("objects", 10, 10, seed=0)
        assert split.image_shape == (3, 32, 32)

    def test_deterministic(self):
        a = load_split("fashion", 20, 10, seed=3)
        b = load_split("fashion", 20, 10, seed=3)
        np.testing.assert_array_equal(a.train.images, b.train.images)
