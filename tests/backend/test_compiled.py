"""CompiledBackend: capture/replay parity, plan invalidation, eager fallback.

The compiled backend's contract has three parts, each pinned here:

* **Parity** — a replayed plan returns bitwise-identical logits and input
  gradients to the eager tape (same ufunc sequence, same operand order,
  same accumulation order), across many replays over recycled buffers.
* **Freshness** — weight mutation (fused SGD/Adam steps), checkpoint hot
  reload (``load_state_dict`` rebinding, ``ModelRegistry.load(replace=
  True)``), and shape changes (ragged final batches) must never be served
  a stale replay: parameters are read live, shapes key the plan cache.
* **Fallback** — anything the tracer cannot express (data-dependent
  control flow, untagged ops, sub-threshold batches) silently runs the
  ordinary eager path, bit-identical to the pre-compiled code.
"""

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.attacks import BIM, PGD, DeepFool
from repro.attacks.base import logits_and_input_grad
from repro.backend.compiled import CompiledBackend, trace
from tests.conftest import TinyNet, make_blobs_dataset


def fresh_compiled():
    """A private instance so stats/plan caches never leak between tests."""
    return CompiledBackend()


def eager_pair(model, images, labels):
    """Reference logits + input gradient on the numpy backend."""
    with backend.use("numpy"):
        x = nn.Tensor(images, requires_grad=True)
        logits = model(x)
        loss = nn.softmax_cross_entropy(logits, labels)
        loss.backward()
        return logits.data.copy(), np.asarray(x.grad).copy()


class frozen_eval:
    """Attack-style scope: eval mode + frozen parameters (the state in
    which the gradient hook is allowed to compile)."""

    def __init__(self, model):
        self.model = model

    def __enter__(self):
        self.was_training = self.model.training
        self.model.eval()
        self.frozen = [p for p in self.model.parameters() if p.requires_grad]
        for p in self.frozen:
            p.requires_grad = False
        return self.model

    def __exit__(self, *exc):
        for p in self.frozen:
            p.requires_grad = True
        if self.was_training:
            self.model.train()


@pytest.fixture
def blobs():
    return make_blobs_dataset(n=12, num_classes=4, seed=9)


@pytest.fixture
def model(blobs):
    m = TinyNet(num_classes=4, seed=7)
    m(blobs.images[:1])  # materialize the lazy head
    return m


class TestTraceReplayParity:
    def test_hook_matches_eager_bitwise_across_replays(self, model, blobs):
        b = fresh_compiled()
        ref_logits, ref_grad = eager_pair(model, blobs.images, blobs.labels)
        with backend.use(b), frozen_eval(model):
            for _ in range(4):
                logits, grad = logits_and_input_grad(
                    model, blobs.images, blobs.labels)
                np.testing.assert_array_equal(logits, ref_logits)
                np.testing.assert_array_equal(grad, ref_grad)
        assert b.stats["plans_built"] == 1
        assert b.stats["replays"] == 3
        assert b.stats["eager_calls"] == 0

    def test_trace_entry_point_replays_a_plain_function(self):
        rng = np.random.default_rng(3)
        w = nn.Tensor(rng.normal(size=(16, 4)).astype(np.float32))
        x1 = rng.normal(size=(4, 16)).astype(np.float32)
        x2 = rng.normal(size=(4, 16)).astype(np.float32)

        def fn(t):
            return nn.functional.relu(t @ w).sum()

        b = fresh_compiled()
        with backend.use(b):
            out, plan = trace(fn, x1, backend=b)
            with backend.use("numpy"):
                ref = fn(nn.Tensor(x1, requires_grad=True))
            np.testing.assert_array_equal(np.asarray(out.data),
                                          np.asarray(ref.data))
            # Replay on new data matches a fresh eager tape bitwise.
            got = plan.replay(x2)
            with backend.use("numpy"):
                xt = nn.Tensor(x2, requires_grad=True)
                ref2 = fn(xt)
                ref2.backward()
            np.testing.assert_array_equal(np.asarray(got),
                                          np.asarray(ref2.data))
            np.testing.assert_array_equal(plan.input_grads()[0], xt.grad)

    def test_replays_do_not_allocate(self, model, blobs):
        b = fresh_compiled()
        with backend.use(b), frozen_eval(model):
            logits_and_input_grad(model, blobs.images, blobs.labels)
            logits_and_input_grad(model, blobs.images, blobs.labels)
            misses_before = b.pool_stats()["misses"]
            for _ in range(5):
                logits_and_input_grad(model, blobs.images, blobs.labels)
            # Steady state: every buffer is plan-owned; the pool never
            # sees another allocation-miss from the replay loop.
            assert b.pool_stats()["misses"] == misses_before
        assert b.stats["replays"] >= 6


class TestPlanInvalidation:
    @pytest.mark.parametrize("make_opt", [
        lambda params: nn.SGD(params, lr=0.05),
        lambda params: nn.Adam(params, lr=0.01),
    ], ids=["sgd", "adam"])
    def test_fused_optimizer_step_is_never_stale(self, model, blobs,
                                                 make_opt):
        b = fresh_compiled()
        with backend.use(b):
            with frozen_eval(model):
                logits_and_input_grad(model, blobs.images, blobs.labels)
                logits_and_input_grad(model, blobs.images, blobs.labels)
            opt = make_opt(model.parameters())
            x = nn.Tensor(blobs.images, requires_grad=True)
            loss = nn.softmax_cross_entropy(model(x), blobs.labels)
            loss.backward()
            opt.step()
            with frozen_eval(model):
                logits, grad = logits_and_input_grad(
                    model, blobs.images, blobs.labels)
                logits, grad = logits.copy(), grad.copy()
        ref_logits, ref_grad = eager_pair(model, blobs.images, blobs.labels)
        np.testing.assert_array_equal(logits, ref_logits,
                                      err_msg="stale logits after step")
        np.testing.assert_array_equal(grad, ref_grad,
                                      err_msg="stale gradient after step")

    def test_state_dict_hot_reload_is_never_stale(self, model, blobs):
        b = fresh_compiled()
        with backend.use(b):
            with frozen_eval(model):
                logits_and_input_grad(model, blobs.images, blobs.labels)
                logits_and_input_grad(model, blobs.images, blobs.labels)
            # Hot reload: load_state_dict rebinds every Parameter's array.
            donor = TinyNet(num_classes=4, seed=23)
            donor(blobs.images[:1])
            model.load_state_dict(donor.state_dict())
            with frozen_eval(model):
                logits, grad = logits_and_input_grad(
                    model, blobs.images, blobs.labels)
                logits, grad = logits.copy(), grad.copy()
        ref_logits, ref_grad = eager_pair(model, blobs.images, blobs.labels)
        np.testing.assert_array_equal(logits, ref_logits,
                                      err_msg="stale logits after reload")
        np.testing.assert_array_equal(grad, ref_grad,
                                      err_msg="stale gradient after reload")

    def test_registry_hot_reload_gets_its_own_plan(self, tmp_path):
        # ModelRegistry.load(replace=True) swaps in a freshly-built model
        # object; plans are keyed by model identity, so the new entry
        # must trace itself rather than inherit the old entry's plan.
        import dataclasses

        from repro.data import load_split
        from repro.experiments.config import get_config
        from repro.experiments.runners import build_trainer
        from repro.serve import ModelRegistry
        from repro.train import save_checkpoint

        split = load_split("digits", 64, 16, seed=7)
        cfg = dataclasses.replace(get_config("fast").dataset("digits"),
                                  model_width=4, batch_size=32)
        paths = []
        for seed in (3, 5):
            trainer = build_trainer("vanilla", cfg, seed=seed)
            trainer.epochs = 1
            trainer.fit(split.train)
            path = tmp_path / f"ck{seed}.npz"
            save_checkpoint(trainer, path)
            paths.append(path)

        b = fresh_compiled()
        registry = ModelRegistry()
        images = split.test.images[:8]
        labels = split.test.labels[:8]
        attack = BIM(eps=0.2, step=0.1, iterations=3)
        with backend.use(b):
            entry = registry.load("victim", paths[0], dataset="digits",
                                  width=4)
            adv_old = np.asarray(attack(entry.model, images, labels)).copy()
            plans_before = b.stats["plans_built"]
            entry = registry.load("victim", paths[1], dataset="digits",
                                  width=4, replace=True)
            adv_new = np.asarray(attack(entry.model, images, labels)).copy()
        assert b.stats["plans_built"] > plans_before, \
            "hot-reloaded model replayed a stale plan"
        with backend.use("numpy"):
            ref_new = np.asarray(attack(entry.model, images, labels)).copy()
        np.testing.assert_array_equal(adv_new, ref_new)
        assert not np.array_equal(adv_old, adv_new), \
            "different checkpoints produced identical batches"

    def test_swapped_forward_is_never_served_the_stale_plan(self, model,
                                                            blobs):
        # A monkeypatched ``forward`` (an instrumented wrapper, a defense
        # shim) is a different program: the plan key carries the forward
        # function identities, so the swap must re-capture, and restoring
        # the original must return to the original plan — never replay
        # the stale graph.
        b = fresh_compiled()
        cls = type(model)
        original_forward = cls.forward
        with backend.use(b), frozen_eval(model):
            logits_and_input_grad(model, blobs.images, blobs.labels)
            logits_and_input_grad(model, blobs.images, blobs.labels)
            assert b.stats["plans_built"] == 1 and b.stats["replays"] == 1

            def doubled_forward(self, t):
                return original_forward(self, t) * 2.0

            cls.forward = doubled_forward
            try:
                logits, _ = logits_and_input_grad(model, blobs.images,
                                                  blobs.labels)
                logits = logits.copy()
            finally:
                cls.forward = original_forward
            back, _ = logits_and_input_grad(model, blobs.images,
                                            blobs.labels)
            back = back.copy()
        assert b.stats["plans_built"] == 2      # the swap re-captured
        ref_logits, _ = eager_pair(model, blobs.images, blobs.labels)
        np.testing.assert_array_equal(logits, ref_logits * 2.0)
        np.testing.assert_array_equal(back, ref_logits)

    def test_ragged_final_batch_never_replays_full_batch_plan(self, model,
                                                              blobs):
        b = fresh_compiled()
        full = blobs.images
        ragged = blobs.images[:7]
        with backend.use(b), frozen_eval(model):
            logits_and_input_grad(model, full, blobs.labels)
            logits, grad = logits_and_input_grad(model, ragged,
                                                 blobs.labels[:7])
            logits, grad = logits.copy(), grad.copy()
        ref_logits, ref_grad = eager_pair(model, ragged, blobs.labels[:7])
        np.testing.assert_array_equal(logits, ref_logits)
        np.testing.assert_array_equal(grad, ref_grad)
        # The ragged shape either compiled its own plan or ran eagerly —
        # never a replay of the 12-row plan.
        assert b.stats["plans_built"] == 2 or b.stats["eager_calls"] >= 1


class TestEagerFallback:
    def test_sub_threshold_batches_run_eagerly(self, model, blobs):
        b = fresh_compiled()
        one = blobs.images[:1]
        with backend.use(b), frozen_eval(model):
            logits, grad = logits_and_input_grad(model, one,
                                                 blobs.labels[:1])
            logits, grad = logits.copy(), grad.copy()
        assert b.stats["eager_calls"] == 1
        assert b.stats["plans_built"] == 0
        ref_logits, ref_grad = eager_pair(model, one, blobs.labels[:1])
        np.testing.assert_array_equal(logits, ref_logits)
        np.testing.assert_array_equal(grad, ref_grad)

    def test_untraceable_op_poisons_key_and_stays_eager(self, blobs):
        class Pow(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = TinyNet(num_classes=4, seed=7)

            def forward(self, x):
                return self.inner(x) ** 1.0  # pow: untagged on the tape

        m = Pow()
        m(blobs.images[:1])
        b = fresh_compiled()
        with backend.use(b), frozen_eval(m):
            first = logits_and_input_grad(m, blobs.images, blobs.labels)
            first = (first[0].copy(), first[1].copy())
            assert b.stats["unsupported"] == 1
            second = logits_and_input_grad(m, blobs.images, blobs.labels)
            second = (second[0].copy(), second[1].copy())
        # The poisoned key is permanent: no second capture attempt.
        assert b.stats["unsupported"] == 1
        assert b.stats["plans_built"] == 0
        ref_logits, ref_grad = eager_pair(m, blobs.images, blobs.labels)
        for logits, grad in (first, second):
            np.testing.assert_array_equal(logits, ref_logits)
            np.testing.assert_array_equal(grad, ref_grad)

    def test_deepfool_matches_reference_backend(self, model, blobs):
        # DeepFool's data-dependent control flow never touches the hook;
        # under the compiled backend it must equal the numpy path exactly.
        attack = DeepFool(eps=0.25, iterations=4)
        advs = {}
        for name in ("numpy", "compiled"):
            with backend.use(name):
                advs[name] = np.asarray(
                    attack(model, blobs.images, blobs.labels)).copy()
        np.testing.assert_array_equal(advs["numpy"], advs["compiled"])

    def test_pgd_with_ragged_tail_matches_reference(self, model, blobs):
        # Shard-style crafting: a full batch then a ragged tail, both
        # bit-identical to numpy whether replayed or run eagerly.
        attack = PGD(eps=0.25, step=0.1, iterations=3, seed=0)
        outs = {}
        for name in ("numpy", "compiled"):
            with backend.use(name):
                full = attack(model, blobs.images, blobs.labels)
                tail = attack(model, blobs.images[:5], blobs.labels[:5])
                outs[name] = (np.asarray(full).copy(),
                              np.asarray(tail).copy())
        np.testing.assert_array_equal(outs["numpy"][0], outs["compiled"][0])
        np.testing.assert_array_equal(outs["numpy"][1], outs["compiled"][1])
