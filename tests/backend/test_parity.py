"""Cross-backend equivalence: NumpyBackend ⇔ FastNumpyBackend ⇔ CompiledBackend.

The fast backend claims *same numerics, different memory behaviour*; the
compiled backend claims *same numerics, captured once and replayed*.  This
suite pins both claims at every level of the stack:

* gradcheck (autodiff gradients vs numeric derivatives) under every
  registered backend,
* bit-identical forward/backward on a conv classifier,
* bit-identical optimizer trajectories (fused SGD/Adam vs reference),
* bit-identical adversarial batches for every attack family,
* identical seeded Table 3-grid accuracies through the evaluation engine
  (the @slow capstone).

``cupy``, when registered, is exercised by the gradcheck/invariant layers
only — device rounding may legitimately differ in the last bit, so the
bitwise layers pin the two CPU backends.
"""

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.attacks import BIM, FGSM, MIM, PGD, CarliniWagner, DeepFool
from repro.nn.gradcheck import check_gradient
from tests.conftest import TinyNet, make_blobs_dataset

CPU_BACKENDS = ("numpy", "fast", "compiled")


def _registered():
    return backend.available_backends()


@pytest.fixture(params=CPU_BACKENDS)
def cpu_backend(request):
    with backend.use(request.param):
        yield request.param


def _train_briefly(backend_name, steps=6, optimizer="adam"):
    """A few optimizer steps on the blobs toy problem; returns the model."""
    from repro.nn.optim import SGD, Adam

    with backend.use(backend_name):
        blobs = make_blobs_dataset(n=32, num_classes=4, seed=5)
        model = TinyNet(num_classes=4, seed=11)
        logits = model(blobs.images[:16])  # materialize the lazy head
        params = model.parameters()
        opt = Adam(params, lr=1e-3) if optimizer == "adam" \
            else SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4)
        for step in range(steps):
            lo = (step * 8) % 24
            batch = blobs.images[lo:lo + 8]
            labels = blobs.labels[lo:lo + 8]
            opt.zero_grad()
            loss = nn.softmax_cross_entropy(model(batch), labels)
            loss.backward()
            opt.step()
        return model


@pytest.fixture(params=list(backend.available_backends()))
def any_backend(request):
    """Activate each registered backend in turn (cupy rides along when
    installed)."""
    with backend.use(request.param):
        yield request.param


class TestGradcheckAcrossBackends:
    """nn/gradcheck.py under every registered backend (satellite task)."""

    def test_conv_gradient(self, any_backend):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32) * 0.3
        check_gradient(lambda a, b: nn.conv2d(a, b, padding=1),
                       [x, w], wrt=0)
        check_gradient(lambda a, b: nn.conv2d(a, b, padding=1),
                       [x, w], wrt=1)

    def test_pool_and_dense_gradients(self, any_backend):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        check_gradient(lambda a: nn.max_pool2d(a, 2), [x])
        check_gradient(lambda a: nn.avg_pool2d(a, 2), [x])
        m = rng.normal(size=(3, 5)).astype(np.float32)
        v = rng.normal(size=(5, 2)).astype(np.float32)
        check_gradient(lambda a, b: a @ b, [m, v], wrt=0)

    def test_elementwise_gradients(self, any_backend):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 7)).astype(np.float32)
        check_gradient(nn.functional.relu, [x])
        check_gradient(nn.functional.tanh, [x])
        check_gradient(lambda a: nn.functional.softmax(a, axis=-1), [x])
        check_gradient(lambda a: (a * a).sum(axis=1).mean(), [x])


class TestBitwiseForwardBackward:
    def test_model_forward_identical(self):
        blobs = make_blobs_dataset(n=16, num_classes=4, seed=3)
        outs = {}
        for name in CPU_BACKENDS:
            with backend.use(name):
                model = TinyNet(num_classes=4, seed=7)
                outs[name] = model(blobs.images).numpy().copy()
        for other in CPU_BACKENDS[1:]:
            np.testing.assert_array_equal(outs["numpy"], outs[other])

    def test_input_gradients_identical(self):
        blobs = make_blobs_dataset(n=16, num_classes=4, seed=3)
        grads = {}
        for name in CPU_BACKENDS:
            with backend.use(name):
                model = TinyNet(num_classes=4, seed=7)
                x = nn.Tensor(blobs.images, requires_grad=True)
                loss = nn.softmax_cross_entropy(model(x), blobs.labels)
                loss.backward()
                grads[name] = np.asarray(x.grad).copy()
        for other in CPU_BACKENDS[1:]:
            np.testing.assert_array_equal(grads["numpy"], grads[other])

    def test_repeated_backward_on_one_graph_survives_pool_recycling(self):
        # Gradients accumulate across repeated backward() calls on the
        # same graph; under the fast backend the conv workspace released
        # by the first pass must be re-unfolded, not read back recycled.
        rng = np.random.default_rng(4)
        x_np = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w_np = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        grads = {}
        for name in CPU_BACKENDS:
            with backend.use(name):
                x = nn.Tensor(x_np, requires_grad=True)
                w = nn.Tensor(w_np, requires_grad=True)
                out = nn.conv2d(x, w, padding=1)
                out.backward(np.ones(out.shape, dtype=np.float32))
                # Interleave another conv so a recycled buffer would be
                # overwritten before the second backward reads it.
                y = nn.Tensor(x_np * 2.0, requires_grad=True)
                nn.conv2d(y, nn.Tensor(w_np, requires_grad=True),
                          padding=1).backward(
                    np.ones(out.shape, dtype=np.float32))
                out.backward(np.ones(out.shape, dtype=np.float32))
                grads[name] = (np.asarray(x.grad).copy(),
                               np.asarray(w.grad).copy())
        for other in CPU_BACKENDS[1:]:
            np.testing.assert_array_equal(grads["numpy"][0], grads[other][0])
            np.testing.assert_array_equal(grads["numpy"][1], grads[other][1])

    def test_repeated_fast_graphs_stay_identical(self):
        # The pool hands recycled (garbage-filled) buffers to later
        # iterations; results must not depend on buffer history.
        blobs = make_blobs_dataset(n=16, num_classes=4, seed=3)
        with backend.use("fast"):
            model = TinyNet(num_classes=4, seed=7)
            runs = []
            for _ in range(3):
                x = nn.Tensor(blobs.images, requires_grad=True)
                loss = nn.softmax_cross_entropy(model(x), blobs.labels)
                loss.backward()
                runs.append(np.asarray(x.grad).copy())
            np.testing.assert_array_equal(runs[0], runs[1])
            np.testing.assert_array_equal(runs[0], runs[2])


class TestOptimizerTrajectoriesBitwise:
    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_trained_weights_identical(self, optimizer):
        states = {
            name: _train_briefly(name, optimizer=optimizer).state_dict()
            for name in CPU_BACKENDS
        }
        for other in CPU_BACKENDS[1:]:
            assert states["numpy"].keys() == states[other].keys()
            for key in states["numpy"]:
                np.testing.assert_array_equal(
                    states["numpy"][key], states[other][key],
                    err_msg=f"weight {key} diverged numpy vs {other}")


class TestAttackParityBitwise:
    """Every attack family crafts bit-identical batches on both CPU
    backends (the attack-invariant counterpart of the satellite task)."""

    @pytest.mark.parametrize("early_stop", [False, True],
                             ids=["naive", "engine"])
    @pytest.mark.parametrize("attack_cls,kwargs", [
        (FGSM, {}),
        (BIM, dict(step=0.1, iterations=4)),
        (PGD, dict(step=0.1, iterations=4, seed=0)),
        (MIM, dict(step=0.1, iterations=4)),
        (CarliniWagner, dict(iterations=5)),
        (DeepFool, dict(iterations=4)),
    ], ids=["fgsm", "bim", "pgd", "mim", "cw", "deepfool"])
    def test_adversarial_batches_identical(self, attack_cls, kwargs,
                                           early_stop):
        if attack_cls is not DeepFool:
            kwargs = dict(kwargs, early_stop=early_stop)
        elif early_stop:
            pytest.skip("deepfool has a single (early-stopping) path")
        blobs = make_blobs_dataset(n=12, num_classes=4, seed=9)
        advs = {}
        for name in CPU_BACKENDS:
            with backend.use(name):
                model = _train_briefly(name, steps=4)
                attack = attack_cls(eps=0.25, **kwargs)
                advs[name] = np.asarray(
                    attack(model, blobs.images, blobs.labels)).copy()
        for other in CPU_BACKENDS[1:]:
            np.testing.assert_array_equal(advs["numpy"], advs[other],
                                          err_msg=f"numpy vs {other}")


@pytest.mark.slow
class TestTable3GridEquivalence:
    """Seeded Table 3 accuracies are identical across CPU backends."""

    def test_accuracies_identical(self):
        from repro.experiments.table3 import run_table3

        grids = {}
        for name in CPU_BACKENDS:
            results = run_table3("digits", preset="fast",
                                 defenses=("vanilla", "cls"), seed=0,
                                 backend=name)
            grids[name] = {r.defense: r.accuracy for r in results}
        for other in CPU_BACKENDS[1:]:
            assert grids["numpy"] == grids[other]
