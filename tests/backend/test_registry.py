"""The backend registry and selection mechanics."""

import json
import subprocess
import sys

import numpy as np
import pytest

import repro.backend as backend
from repro.backend import (
    ArrayOps,
    CompiledBackend,
    FastNumpyBackend,
    NumpyBackend,
    active,
    available_backends,
    get_backend,
    use,
)


class TestRegistry:
    def test_all_cpu_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "fast" in names
        assert "compiled" in names

    def test_instances_are_cached_and_typed(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("fast"), FastNumpyBackend)
        assert isinstance(get_backend("compiled"), CompiledBackend)

    def test_compiled_is_a_fast_backend(self):
        # The compiled backend inherits the pooled kernels; everything that
        # works against FastNumpyBackend (scratch, fused steps, release
        # donation) must keep working when capture is layered on top.
        assert isinstance(get_backend("compiled"), FastNumpyBackend)

    def test_instances_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), ArrayOps)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tpu")

    def test_cupy_absent_is_graceful(self):
        # On a machine without cupy the name simply is not registered;
        # nothing in the registry import path should have died trying.
        try:
            import cupy  # noqa: F401
        except ImportError:
            assert "cupy" not in available_backends()


class TestUse:
    def test_context_manager_restores(self):
        before = active()
        with use("fast") as b:
            assert b.name == "fast"
            assert active() is b
        assert active() is before

    def test_bare_call_switches_globally(self):
        before = active()
        try:
            use("fast")
            assert active().name == "fast"
        finally:
            use(before)
        assert active() is before

    def test_nested_scopes(self):
        before = active()
        with use("fast"):
            with use("numpy"):
                assert active().name == "numpy"
            assert active().name == "fast"
        assert active() is before

    def test_accepts_instance(self):
        inst = get_backend("fast")
        with use(inst):
            assert active() is inst

    def test_context_restores_when_body_raises(self):
        # Regression: a crash inside the context (an attack blowing up
        # mid-suite) must restore the previous backend, not leave the
        # process pinned to the scoped one.
        before = active()
        with pytest.raises(RuntimeError, match="mid-attack"):
            with use("fast"):
                raise RuntimeError("mid-attack crash")
        assert active() is before

    def test_nested_contexts_restore_when_inner_raises(self):
        before = active()
        with pytest.raises(ValueError):
            with use("fast"):
                with use("compiled"):
                    raise ValueError("inner crash")
        assert active() is before

    def test_attack_suite_crash_restores_backend(self):
        # The engine-level counterpart: AttackSuite.run under a scoped
        # backend dies mid-grid; the previous backend must come back.
        from repro.eval.engine import AttackSuite
        from tests.conftest import TinyNet, make_blobs_dataset

        class Bomb:
            name = "bomb"
            eps = 0.1

            def __call__(self, model, images, labels):
                raise RuntimeError("crafting exploded")

        blobs = make_blobs_dataset(n=8, num_classes=4, seed=2)
        model = TinyNet(num_classes=4, seed=3)
        model(blobs.images[:1])
        before = active()
        suite = AttackSuite({"bomb": Bomb()})
        with pytest.raises(RuntimeError, match="crafting exploded"):
            with use("fast"):
                suite.run(model, blobs.images, blobs.labels)
        assert active() is before


def _probe_default_backend(extra_env):
    import os

    env = dict(os.environ)
    env.pop("REPRO_BACKEND", None)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env)
    out = subprocess.run(
        [sys.executable, "-c",
         "import repro.backend as b; print(b.active().name)"],
        capture_output=True, text=True, env=env,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


class TestEnvDefault:
    def test_repro_backend_env_selects_process_default(self):
        assert _probe_default_backend({"REPRO_BACKEND": "fast"}) == "fast"

    def test_default_is_numpy(self):
        assert _probe_default_backend({}) == "numpy"


class TestCheckpointProvenance:
    def test_checkpoint_records_producing_backend(self, tmp_path):
        from repro.defenses import VanillaTrainer
        from repro.train import load_checkpoint, save_checkpoint
        from tests.conftest import TinyNet, make_blobs_dataset

        blobs = make_blobs_dataset(n=32, num_classes=4)
        model = TinyNet(num_classes=4, seed=3)
        model(blobs.images[:1])
        trainer = VanillaTrainer(model, epochs=1, batch_size=16, seed=42)
        trainer.fit(blobs)
        path = tmp_path / "ck.npz"
        with use("fast"):
            save_checkpoint(trainer, path)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__checkpoint__"]).decode())
        assert meta["backend"] == "fast"

        # Provenance, not a constraint: the checkpoint resumes fine under
        # the other backend.
        model_b = TinyNet(num_classes=4, seed=3)
        model_b(blobs.images[:1])
        fresh = VanillaTrainer(model_b, epochs=1, batch_size=16, seed=42)
        with use("numpy"):
            load_checkpoint(fresh, path)
        assert fresh.completed_epochs == 1


class TestScratchPool:
    def test_fast_pool_recycles_released_buffers(self):
        b = FastNumpyBackend()
        first = b.scratch((4, 8), np.float32)
        b.release(first)
        second = b.scratch((4, 8), np.float32)
        assert np.shares_memory(first, second)

    def test_fast_pool_serves_smaller_shapes_from_larger_buffers(self):
        # The size tolerance that keeps the pool hot under the shrinking
        # active sets of early-stopping attacks.
        b = FastNumpyBackend()
        big = b.scratch((8, 8), np.float32)
        b.release(big)
        small = b.scratch((3, 5), np.float32)
        assert np.shares_memory(big, small)
        assert small.shape == (3, 5)
        assert small.flags.c_contiguous

    def test_fast_pool_zero_fills_on_request(self):
        b = FastNumpyBackend()
        buf = b.scratch((3, 3), np.float32)
        buf.fill(7.0)
        b.release(buf)
        again = b.scratch((3, 3), np.float32, zero=True)
        assert np.shares_memory(again, buf)
        assert np.all(again == 0.0)

    def test_fast_pool_release_of_view_returns_base(self):
        b = FastNumpyBackend()
        buf = b.scratch((2, 6), np.float32)
        b.release(buf.reshape(3, 4))
        assert np.shares_memory(b.scratch((2, 6), np.float32), buf)

    def test_dtypes_never_mix(self):
        b = FastNumpyBackend()
        f32 = b.scratch((4,), np.float32)
        b.release(f32)
        i64 = b.scratch((4,), np.int64)
        assert not np.shares_memory(f32, i64)
        assert i64.dtype == np.int64

    def test_double_release_never_double_lends(self):
        b = FastNumpyBackend()
        buf = b.scratch((5,), np.float32)
        b.release(buf)
        b.release(buf)
        first = b.scratch((5,), np.float32)
        second = b.scratch((5,), np.float32)
        assert not np.shares_memory(first, second)

    def test_reference_release_is_noop(self):
        b = NumpyBackend()
        buf = b.scratch((4,), np.float32)
        b.release(buf)
        assert b.scratch((4,), np.float32) is not buf

    def test_donated_ndim_array_is_carved_correctly(self):
        # Donating a whole fresh n-D array (an attack iterate, a col2im
        # gradient) stores the owning allocation; a later acquire of a
        # different shape must flatten before carving, not slice axis 0.
        b = FastNumpyBackend()
        donated = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        b.release(donated)
        got = b.scratch((4, 5), np.float32)
        assert got.shape == (4, 5)
        assert np.shares_memory(got, donated)

    def test_full_pool_keeps_the_largest_buffers(self):
        # When the free list is full, releasing a buffer bigger than the
        # smallest retained entry must displace it: compiled plans adopt
        # the big pooled workspaces permanently, and without this policy
        # a flood of small per-iteration temporaries would evict nothing
        # while every big eager acquire (im2col workspaces) missed.
        from repro.backend.fast import _POOL_DEPTH
        b = FastNumpyBackend()
        for _ in range(_POOL_DEPTH):
            b.release(np.empty(8, dtype=np.float32))
        big = np.empty(1 << 16, dtype=np.float32)
        b.release(big)
        served = b.scratch((1 << 16,), np.float32)
        assert np.shares_memory(served, big)

    def test_full_pool_drops_release_smaller_than_all_entries(self):
        # The converse: a small release into a full list of bigger
        # buffers is dropped, never displacing a more useful entry.
        from repro.backend.fast import _POOL_DEPTH
        b = FastNumpyBackend()
        keepers = [np.empty(4096, dtype=np.float32)
                   for _ in range(_POOL_DEPTH)]
        for buf in keepers:
            b.release(buf)
        tiny = np.empty(2, dtype=np.float32)
        b.release(tiny)
        for _ in range(_POOL_DEPTH):
            served = b.scratch((4096,), np.float32)
            assert any(np.shares_memory(served, k) for k in keepers)

    def test_pool_counters_track_hits_and_misses(self):
        b = FastNumpyBackend()
        start = b.pool_stats()
        first = b.scratch((6, 6), np.float32)
        stats = b.pool_stats()
        assert stats["misses"] == start["misses"] + 1
        b.release(first)
        b.scratch((6, 6), np.float32)
        stats = b.pool_stats()
        assert stats["hits"] == start["hits"] + 1
