"""Utility modules: RNG streams, stopwatch, ASCII rendering."""

import time

import numpy as np
import pytest

from repro.utils import Stopwatch, ascii_image, derive_rng, spawn_rngs


class TestRNG:
    def test_same_seed_tag_same_stream(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(1, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(1, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs(self):
        streams = spawn_rngs(0, "a", "b", "c")
        assert len(streams) == 3
        values = [r.random() for r in streams]
        assert len(set(values)) == 3


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        first = watch.lap()
        time.sleep(0.01)
        second = watch.lap()
        assert first > 0 and second > 0
        assert watch.total == pytest.approx(first + second)
        assert watch.mean == pytest.approx((first + second) / 2)

    def test_empty_mean_is_zero(self):
        assert Stopwatch().mean == 0.0


class TestAsciiImage:
    def test_renders_hw(self):
        art = ascii_image(np.zeros((4, 4)))
        assert len(art.splitlines()) == 4

    def test_renders_chw_color(self):
        art = ascii_image(np.ones((3, 4, 4)))
        assert "@" in art  # bright pixels map to the dense end of the ramp

    def test_dark_image_uses_sparse_chars(self):
        art = ascii_image(np.full((4, 4), -1.0))
        assert set(art.replace("\n", "")) == {" "}

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros((2, 3, 4, 4)))
