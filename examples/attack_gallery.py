#!/usr/bin/env python
"""Attack gallery: render every generator's perturbation as ASCII art.

Trains a small Vanilla classifier, picks one test digit, runs all five
attacks of the paper against it (FGSM, BIM, PGD, DeepFool, CW) and prints
the original image, each adversarial example, and what the classifier says.

Run:  python examples/attack_gallery.py
"""

import numpy as np

from repro.attacks import BIM, CarliniWagner, DeepFool, FGSM, PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.eval import predict_labels
from repro.models import build_classifier
from repro.utils import ascii_image


def main() -> None:
    split = load_split("digits", train_size=512, test_size=64, seed=3)
    model = build_classifier("digits", width=8, seed=0)
    print("Training a Vanilla classifier to attack ...")
    VanillaTrainer(model, epochs=5, batch_size=64).fit(split.train)

    x = split.test.images[:1]
    y = split.test.labels[:1]
    print(f"\nOriginal image (true class {y[0]}, "
          f"predicted {predict_labels(model, x)[0]}):")
    print(ascii_image(x[0, 0]))

    attacks = [
        FGSM(eps=0.6),
        BIM(eps=0.6, step=0.1, iterations=6),
        PGD(eps=0.6, step=0.1, iterations=8, seed=0),
        DeepFool(eps=0.6, iterations=10),
        CarliniWagner(eps=0.6, iterations=20, c=5.0),
    ]
    for attack in attacks:
        adv = attack(model, x, y)
        pred = predict_labels(model, adv)[0]
        pert = np.abs(adv - x).max()
        verdict = "FOOLED" if pred != y[0] else "held"
        print(f"\n=== {attack.name}: predicted {pred} ({verdict}), "
              f"l-inf perturbation {pert:.3f}")
        print(ascii_image(adv[0, 0]))


if __name__ == "__main__":
    main()
