#!/usr/bin/env python
"""Quickstart: train ZK-GanDef and watch it resist an attack.

Trains two classifiers on the synthetic digits dataset — an undefended
Vanilla model and a ZK-GanDef model (which never sees an adversarial
example during training) — then attacks both with FGSM and PGD and prints
the Sec. IV-E test accuracies side by side.

Run:  python examples/quickstart.py
"""

from repro.attacks import FGSM, PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer, ZKGanDefTrainer
from repro.eval import test_accuracy
from repro.models import build_classifier


def main() -> None:
    print("Preprocessing: generating + separating the digits dataset ...")
    split = load_split("digits", train_size=1024, test_size=256, seed=0)
    x, y = split.test.images[:128], split.test.labels[:128]

    print("Training the Vanilla baseline ...")
    vanilla = build_classifier("digits", width=8, seed=0)
    VanillaTrainer(vanilla, epochs=6, batch_size=64).fit(split.train)

    print("Training ZK-GanDef (no adversarial examples involved) ...")
    defended = build_classifier("digits", width=8, seed=0)
    trainer = ZKGanDefTrainer(defended, gamma=3.0, disc_steps=2,
                              warmup_epochs=4, epochs=16, batch_size=64)
    history = trainer.fit(split.train)
    print(f"  final classifier loss {history.losses[-1]:.3f}, "
          f"{history.mean_epoch_seconds:.2f}s per epoch")

    attacks = {
        "fgsm": FGSM(eps=0.6),
        "pgd": PGD(eps=0.6, step=0.1, iterations=8, seed=0),
    }
    header = f"{'model':12s}{'original':>10s}" + "".join(
        f"{name:>10s}" for name in attacks)
    print("\n" + header)
    print("-" * len(header))
    for name, model in [("vanilla", vanilla), ("zk-gandef", defended)]:
        cells = [test_accuracy(model, x, y)]
        for attack in attacks.values():
            cells.append(test_accuracy(model, attack(model, x, y), y))
        print(f"{name:12s}" + "".join(f"{c * 100:9.2f}%" for c in cells))

    print("\nZK-GanDef holds up under attacks it never trained against —")
    print("that is the paper's zero-knowledge claim.")


if __name__ == "__main__":
    main()
