"""The array-backend seam, end to end.

Walks the three ways to pick a backend (global switch, scoped context
manager, per-run argument), demonstrates that the reference, fast and
compiled CPU backends produce **bit-identical** results from a single
forward pass all the way to a trained-and-attacked classifier, measures
the speedup the fast backend buys on the attack hot path, and shows the
compiled backend capturing the attack gradient into a replayable plan —
including the cases where it transparently falls back to eager.

Run from the repo root:

    PYTHONPATH=src python examples/backend_switch.py
"""

import time

import numpy as np

import repro.backend as backend
from repro import nn
from repro.attacks import PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.eval.engine import AttackSuite
from repro.experiments.config import get_config
from repro.models import build_classifier

SEED = 0


def train_and_attack(backend_name):
    """One seeded train-then-attack pipeline under ``backend_name``."""
    with backend.use(backend_name):                 # scoped: restores on exit
        split = load_split("digits", 512, 128, seed=SEED)
        model = build_classifier("digits", width=8, seed=SEED)
        trainer = VanillaTrainer(model, epochs=2, batch_size=64, lr=1e-3,
                                 seed=SEED)
        trainer.fit(split.train)

        cfg = get_config("fast").dataset("digits")
        attacks = cfg.budget.build(fast=False, seed=SEED, early_stop=True)
        suite = AttackSuite(attacks)
        start = time.perf_counter()
        result = suite.run(model, split.test.images[:48],
                           split.test.labels[:48])
        seconds = time.perf_counter() - start
        return model.state_dict(), result.accuracy, seconds


def main():
    print(f"registered backends: {', '.join(backend.available_backends())}")
    print(f"active (process default): {backend.active().name}\n")

    # 1. Selection mechanics -------------------------------------------- #
    backend.use("fast")                     # bare call: global switch
    assert backend.active().name == "fast"
    with backend.use("numpy"):              # context manager: scoped
        assert backend.active().name == "numpy"
    assert backend.active().name == "fast"  # restored
    backend.use("numpy")                    # back to the reference

    # 2. Bit-identity across CPU backends ------------------------------- #
    runs = {name: train_and_attack(name)
            for name in ("numpy", "fast", "compiled")}
    weights_n, acc_n, sec_n = runs["numpy"]
    weights_f, acc_f, sec_f = runs["fast"]

    for name in ("fast", "compiled"):
        for key in weights_n:
            np.testing.assert_array_equal(weights_n[key], runs[name][0][key])
        assert acc_n == runs[name][1]
    print("trained weights:   bit-identical across numpy/fast/compiled")
    row = "  ".join(f"{k}={v * 100:5.1f}%" for k, v in acc_n.items())
    print(f"attack accuracies: identical  ({row})")

    # 3. The speedup ----------------------------------------------------- #
    # (One-shot timing on a small slice; benchmarks/bench_backend.py is
    # the controlled, steady-state measurement.)
    print(f"attack suite:      numpy {sec_n:.2f}s  vs  fast {sec_f:.2f}s  "
          f"({sec_n / sec_f:.2f}x)")

    # 4. Compiled capture and replay ------------------------------------- #
    # The first gradient call at a new input shape traces the graph into
    # a static plan; every further same-shape call replays it — no tape,
    # no dispatch, no allocation.  Ragged batches and data-dependent
    # attacks (DeepFool, CW) fall back to eager automatically.
    with backend.use("compiled"):
        b = backend.active()
        before = dict(b.stats)
        split = load_split("digits", 256, 64, seed=SEED)
        model = build_classifier("digits", width=8, seed=SEED)
        model.eval()
        pgd = PGD(eps=0.3, step=0.03, iterations=20, restarts=1,
                  early_stop=False, seed=SEED)

        start = time.perf_counter()
        pgd.generate(model, split.test.images[:8], split.test.labels[:8])
        cold = time.perf_counter() - start          # includes the trace
        start = time.perf_counter()
        pgd.generate(model, split.test.images[:8], split.test.labels[:8])
        steady = time.perf_counter() - start        # pure replay

        # A ragged tail batch has an untraced shape: it runs eagerly the
        # first time, gets its own plan, and never perturbs the first one.
        pgd.generate(model, split.test.images[:5], split.test.labels[:5])
        print(f"\ncompiled PGD:      cold {cold * 1e3:6.1f}ms (traces the "
              f"graph)  steady {steady * 1e3:6.1f}ms (pure replay)")
        delta = {k: v - before.get(k, 0) for k, v in b.stats.items()}
        print(f"compiled stats:    {delta}  (this section: one plan per "
              f"shape, everything else replayed)")

    # 5. Backend-agnostic user code -------------------------------------- #
    # Tensors live on whatever backend is active; ops read identically.
    with backend.use("fast"):
        x = nn.Tensor(np.linspace(-1, 1, 12, dtype=np.float32).reshape(3, 4),
                      requires_grad=True)
        loss = (nn.functional.tanh(x) ** 2).sum()
        loss.backward()
        print(f"\nsample grad under {backend.active().name!r}: "
              f"dtype={x.grad.dtype}, ||g||={float(np.abs(x.grad).sum()):.4f}")


if __name__ == "__main__":
    main()
