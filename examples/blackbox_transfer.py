#!/usr/bin/env python
"""Black-box stress test: do ZK-GanDef's gains survive transfer attacks?

The paper evaluates white-box attacks only; its related-work section notes
that many broken defenses only looked strong because their gradients were
masked.  This example crafts FGSM/PGD examples against an *undefended
surrogate* and replays them on the ZK-GanDef victim — if the defense's
white-box robustness were pure gradient masking, transferred examples
would hurt it more than direct ones.

Run:  python examples/blackbox_transfer.py
"""

from repro.attacks import FGSM, PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer, ZKGanDefTrainer
from repro.eval import transfer_attack_accuracy
from repro.models import build_classifier


def main() -> None:
    split = load_split("digits", train_size=1024, test_size=256, seed=0)
    x, y = split.test.images[:96], split.test.labels[:96]

    print("Training the ZK-GanDef victim ...")
    victim = build_classifier("digits", width=8, seed=0)
    ZKGanDefTrainer(victim, gamma=3.0, disc_steps=2, warmup_epochs=4,
                    epochs=16, batch_size=64).fit(split.train)

    print("Training the adversary's surrogate (undefended, different "
          "seed) ...")
    surrogate = build_classifier("digits", width=8, seed=77)
    VanillaTrainer(surrogate, epochs=6, batch_size=64, seed=77) \
        .fit(split.train)

    attacks = {
        "fgsm": FGSM(eps=0.6),
        "pgd": PGD(eps=0.6, step=0.1, iterations=8, seed=0),
    }
    results = transfer_attack_accuracy(victim, surrogate, attacks, x, y)

    print(f"\n{'attack':8s}{'white-box':>12s}{'transferred':>13s}"
          f"{'gap':>8s}")
    for name, r in results.items():
        print(f"{name:8s}{r.white_box_accuracy * 100:11.2f}%"
              f"{r.transfer_accuracy * 100:12.2f}%"
              f"{r.transfer_gap * 100:+7.2f}%")
    print("\nA positive gap means the direct white-box attack is the "
          "stronger one,\ni.e. the defense is not relying on masked "
          "gradients alone.")


if __name__ == "__main__":
    main()
