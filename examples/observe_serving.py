#!/usr/bin/env python
"""Observability tour: traced serving, a live scrape, and the report CLI.

Walks the `repro.obs` layer end to end:

1. enable span tracing (`obs.enable`) *before* building anything — the
   server, gate and caches bind the tracer at construction time;
2. train a quick classifier and serve a seeded traffic mix through the
   HTTP tier, so every request is traced admission -> queue wait ->
   batch formation -> forward -> gate -> fill;
3. scrape `GET /v1/metrics` mid-flight and show the Prometheus text a
   real scraper would collect (HTTP outcomes, queue depth, batch-size
   and latency histograms, gate flag rate, cache hit rates);
4. aggregate the trace file into the per-stage latency/throughput
   report — the same table `repro obs report <trace.jsonl>` prints.

The equivalent environment-variable setup for a deployment:

    REPRO_OBS=1 REPRO_OBS_TRACE=trace.jsonl \
        python -m repro serve-http --requests 0 --port 8080 ...

Run:  python examples/observe_serving.py
"""

import tempfile

from repro import obs
from repro.data import load_split
from repro.models import build_classifier
from repro.obs.report import aggregate_trace, format_report, load_spans
from repro.serve import (
    HttpClient,
    HttpFrontend,
    HttpServer,
    ModelRegistry,
    PredictionCache,
    Server,
    build_mixed_load,
    run_http_load,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = f"{tmp}/trace.jsonl"
        print(f"[1] enabling span tracing -> {trace_path}")
        obs.enable(trace=trace_path)

        print("[2] training a small classifier and serving it over HTTP ...")
        split = load_split("digits", train_size=64, test_size=64, seed=0)
        registry = ModelRegistry()
        registry.add("m", build_classifier("digits", width=8, seed=0),
                     backend="numpy")
        server = Server(registry, max_batch=8, deadline_ms=2.0,
                        gate="confidence", gate_threshold=0.5,
                        cache=PredictionCache(max_entries=512))
        httpd = HttpServer(HttpFrontend(server), host="127.0.0.1", port=0)
        with httpd:
            host, port = httpd.address
            traffic = build_mixed_load(split.test.images[:32],
                                       split.test.images[32:],
                                       num_requests=120,
                                       max_request_size=4, seed=3)
            report = run_http_load(host, port, traffic, model="m",
                                   concurrency=8)
            print(f"    {report.completed} requests served at "
                  f"{report.throughput_eps:.0f} examples/s")

            print("[3] scraping GET /v1/metrics (Prometheus text) ...")
            with HttpClient(host, port) as client:
                text = client.metrics().payload["raw"]
        for line in text.splitlines():
            if line.startswith(("repro_http_requests_total",
                                "repro_serve_batch_size_count",
                                "repro_serve_pending_examples",
                                "repro_serve_gate_flag_ratio",
                                "repro_serve_prediction_cache_hit_ratio")):
                print(f"    {line}")

        print("[4] aggregating the trace (== repro obs report) ...")
        obs.disable()        # flushless writer: every span is on disk
        agg = aggregate_trace(load_spans(trace_path))
        print("    " + format_report(agg).replace("\n", "\n    "))


if __name__ == "__main__":
    main()
