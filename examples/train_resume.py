#!/usr/bin/env python
"""Walkthrough: checkpointed training, a simulated kill, and a
bit-identical resume.

Three acts:

1. train ZK-GanDef for 6 epochs uninterrupted (the reference run),
2. train the same seeded configuration but "kill" it after epoch 3 —
   only the atomic checkpoint under ``runs/train-resume/`` survives,
3. start a *fresh* trainer, resume from the checkpoint, finish the
   remaining epochs, and verify the loss history and the final weights
   match the uninterrupted run exactly — optimizer moments, RNG streams
   and the GanDef discriminator all came back from disk.

Run:  python examples/train_resume.py
"""

import shutil
import tempfile

import numpy as np

from repro.data import load_split
from repro.defenses import ZKGanDefTrainer
from repro.models import build_classifier
from repro.train import (
    Callback,
    Checkpointer,
    MetricsLogger,
    RobustnessProbe,
    load_checkpoint,
    read_jsonl,
)
from repro.attacks import FGSM
from repro.eval.engine import AttackSuite

EPOCHS = 6
KILL_AFTER = 3


def make_trainer():
    """Same seeds every time — this is one configuration, run thrice."""
    model = build_classifier("digits", width=8, seed=0)
    return ZKGanDefTrainer(model, gamma=3.0, disc_steps=2, warmup_epochs=4,
                           epochs=EPOCHS, batch_size=64, seed=0)


class KillSwitch(Callback):
    """Stand-in for a preempted job / OOM kill / ctrl-C."""

    def on_epoch_end(self, loop, epoch, logs):
        if epoch + 1 >= KILL_AFTER:
            loop.request_stop("simulated kill")


def main() -> None:
    split = load_split("digits", train_size=1024, test_size=256, seed=0)
    workdir = tempfile.mkdtemp(prefix="train-resume-")

    print(f"Act 1 — uninterrupted {EPOCHS}-epoch reference run ...")
    reference = make_trainer()
    ref_history = reference.fit(split.train)

    print(f"Act 2 — same run, killed after epoch {KILL_AFTER} ...")
    victim = make_trainer()
    suite = AttackSuite({"fgsm": FGSM(eps=0.6)})
    victim.fit(split.train, callbacks=[
        KillSwitch(),
        MetricsLogger(f"{workdir}/metrics.jsonl"),
        RobustnessProbe(suite, split.test.images[-64:],
                        split.test.labels[-64:], every=1),
        Checkpointer(workdir),   # last: snapshots include this epoch
    ])
    print(f"  victim stopped at epoch {victim.completed_epochs} "
          f"({victim.history.stop_reason}); checkpoint on disk.")
    del victim  # the process is gone; only the checkpoint remains

    print("Act 3 — fresh process resumes from the checkpoint ...")
    resumed = make_trainer()
    load_checkpoint(resumed, f"{workdir}/checkpoint.npz")
    print(f"  restored at epoch {resumed.completed_epochs}; finishing ...")
    res_history = resumed.fit(split.train, callbacks=[
        MetricsLogger(f"{workdir}/metrics.jsonl"),
        Checkpointer(workdir),
    ])

    print("\nloss history   uninterrupted      killed+resumed")
    for epoch, (a, b) in enumerate(zip(ref_history.losses,
                                       res_history.losses)):
        marker = "  <- resumed here" if epoch == KILL_AFTER else ""
        print(f"  epoch {epoch + 1}:    {a:.12f}     {b:.12f}{marker}")

    assert res_history.losses == ref_history.losses, "not bit-identical!"
    for p, q in zip(reference.model.parameters(),
                    resumed.model.parameters()):
        np.testing.assert_array_equal(p.data, q.data)
    print("\nbit-identical: losses and final weights match exactly.")

    epochs_logged = len(read_jsonl(f"{workdir}/metrics.jsonl",
                                   event="epoch"))
    print(f"metrics log holds {epochs_logged} epoch records "
          f"(pre-kill + post-resume) in {workdir}/metrics.jsonl")
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
