#!/usr/bin/env python
"""Walkthrough: data-parallel training with the ordered all-reduce.

Three acts:

1. train ZK-GanDef through the sharded gradient engine in-process
   (``workers=1`` — the bit-identity baseline),
2. train the identical seeded configuration with the per-batch gradient
   shards fanned over a real 2-process spawn pool, and verify the loss
   history, the final weights and every RNG stream match the baseline
   **bit for bit** — the deterministic ordered all-reduce means worker
   count only changes wall-clock, never results,
3. kill a 2-worker run mid-way, resume it from its checkpoint with
   **4** workers, and verify it still lands on the same bits — the
   checkpointed worker count is provenance, never load-bearing.

Workers are ``spawn``-started, so run this as a file (``python
examples/train_parallel.py``), not pasted into a REPL.
"""

import shutil
import tempfile

import numpy as np

from repro.data import load_split
from repro.defenses import ZKGanDefTrainer
from repro.models import build_classifier
from repro.train import Callback, Checkpointer, ParallelTrainEngine
from repro.utils.pool import SpawnPool

EPOCHS = 4
KILL_AFTER = 2


def make_trainer(epochs=EPOCHS):
    """Same seeds every time — one configuration, run four ways."""
    model = build_classifier("digits", width=8, seed=0)
    return ZKGanDefTrainer(model, gamma=3.0, disc_steps=2, warmup_epochs=2,
                           epochs=epochs, batch_size=64, seed=0)


def fingerprint(trainer):
    return {f"{mod}.{name}": np.asarray(p.data).copy()
            for mod, module in trainer.checkpoint_modules().items()
            for name, p in module.named_parameters()}


def assert_same_bits(a, b, label):
    assert a.keys() == b.keys()
    for name in a:
        np.testing.assert_array_equal(a[name], b[name],
                                      err_msg=f"{label}: {name}")


class KillSwitch(Callback):
    def on_epoch_end(self, loop, epoch, logs):
        if epoch + 1 >= KILL_AFTER:
            loop.request_stop("simulated kill")


def main() -> None:
    split = load_split("digits", train_size=512, test_size=128, seed=0)

    print("Act 1 — sharded engine in-process (workers=1 baseline) ...")
    baseline = make_trainer()
    engine = ParallelTrainEngine(baseline, workers=1).attach()
    base_history = baseline.fit(split.train)
    engine.close()
    print(f"  final loss {base_history.losses[-1]:.12f}")

    print("Act 2 — same run, gradient shards over a 2-process pool ...")
    with SpawnPool(2) as pool:
        pooled = make_trainer()
        engine = ParallelTrainEngine(pooled, workers=2, pool=pool).attach()
        pooled_history = pooled.fit(split.train)
        engine.close()

    assert pooled_history.losses == base_history.losses
    assert_same_bits(fingerprint(baseline), fingerprint(pooled),
                     "2 workers vs in-process")
    print("  bit-identical: losses, weights (classifier + discriminator) "
          "and RNG streams all match the baseline exactly.")

    print(f"Act 3 — killed at 2 workers after epoch {KILL_AFTER}, "
          "resumed at 4 workers ...")
    workdir = tempfile.mkdtemp(prefix="train-parallel-")
    with SpawnPool(2) as pool:
        victim = make_trainer()
        engine = ParallelTrainEngine(victim, workers=2, pool=pool).attach()
        victim.fit(split.train, callbacks=[KillSwitch(),
                                           Checkpointer(workdir)])
        engine.close()
    del victim  # the process is gone; only the checkpoint remains

    with SpawnPool(4) as pool:
        resumed = make_trainer()
        checkpointer = Checkpointer(workdir)
        assert checkpointer.try_resume(resumed)
        print(f"  restored at epoch {resumed.completed_epochs}; "
              "finishing under a different worker count ...")
        engine = ParallelTrainEngine(resumed, workers=4, pool=pool).attach()
        res_history = resumed.fit(split.train, callbacks=[checkpointer])
        engine.close()

    assert res_history.losses == base_history.losses
    assert_same_bits(fingerprint(baseline), fingerprint(resumed),
                     "resume across worker-count change")
    print("  bit-identical again: the worker count in the checkpoint is "
          "provenance, not a dependency.")
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
