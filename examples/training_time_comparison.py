#!/usr/bin/env python
"""Reproduce Figure 5 (left/middle): training cost across defenses.

Times one epoch of ZK-GanDef against the three full-knowledge defenses and
prints seconds-per-epoch bars.  The paper's claim: ZK-GanDef costs about as
much as FGSM-Adv and far less than the PGD-based defenses, because it never
solves the adversarial-example optimization during training.

Run:  python examples/training_time_comparison.py [dataset]
"""

import sys

from repro.experiments import run_training_time


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "digits"
    print(f"Timing one training epoch per defense on {dataset} ...")
    timings = run_training_time(dataset, preset="fast", epochs=1)
    longest = max(timings.values())
    print(f"\n{'defense':14s}{'s/epoch':>9s}")
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        bar = "#" * max(1, int(40 * seconds / longest))
        print(f"{name:14s}{seconds:8.2f}s {bar}")
    slowest = max(timings, key=timings.get)
    saving = 100.0 * (1.0 - timings["zk-gandef"] / timings[slowest])
    print(f"\nZK-GanDef saves {saving:.1f}% of {slowest}'s epoch time "
          f"while staying adversarial-example free.")


if __name__ == "__main__":
    main()
