#!/usr/bin/env python
"""Reproduce Figure 5 (right): why CLP/CLS fail on the complex dataset.

Trains CLS under the paper's four (sigma, lambda) settings on the
CIFAR10 stand-in and prints the training-loss curves as text sparklines.
Three settings stall on the flat top curve; the weakest converges — and
that one is the setting under which CLS degenerates to a Vanilla
classifier.

Run:  python examples/convergence_study.py
"""

from repro.experiments import run_cls_convergence

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    finite = [v for v in values if v == v]
    if not finite:
        return "(all nan)"
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARKS[int((v - lo) / span * (len(_SPARKS) - 1))] if v == v else "x"
        for v in values)


def main() -> None:
    print("Training CLS on the objects dataset under four settings ...")
    curves = run_cls_convergence("objects", preset="fast", epochs=8)
    print(f"\n{'setting':28s}{'loss curve':20s}{'epoch losses'}")
    for curve in curves:
        trail = " ".join(f"{v:.2f}" for v in curve.losses)
        tag = "converges" if curve.converged() else "STALLS"
        print(f"{curve.label:28s}{sparkline(curve.losses):12s} {tag:10s}"
              f" {trail}")
    print("\nThe paper's Sec. V-D conclusion: the penalty design of CLS is")
    print("too rigid for complex data — only the weakest setting trains,")
    print("and that setting is no longer a defense.")


if __name__ == "__main__":
    main()
