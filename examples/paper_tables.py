#!/usr/bin/env python
"""Regenerate the paper's tables from the command line.

Usage:
    python examples/paper_tables.py [dataset] [preset]

``dataset`` defaults to ``digits`` (choices: digits, fashion, objects —
stand-ins for MNIST, Fashion-MNIST and CIFAR10), ``preset`` to ``fast``.
Prints the Table III block for the dataset, the Table IV row, and the
Figure 5 per-epoch training times.
"""

import sys

from repro.eval import format_timing_table
from repro.experiments import render_table3, run_table3, run_table4


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "digits"
    preset = sys.argv[2] if len(sys.argv) > 2 else "fast"

    print(f"=== Table III block for {dataset} ({preset} preset) ===")
    results = run_table3(dataset, preset=preset, verbose=True)
    print()
    print(render_table3(results))

    print(f"\n=== Figure 5 training time ({dataset}) ===")
    print(format_timing_table(results))

    print(f"\n=== Table IV row for {dataset} ===")
    result = run_table4(dataset, preset=preset)
    for kind, value in result.accuracy.items():
        print(f"  {kind:10s} {value * 100:6.2f}%")


if __name__ == "__main__":
    main()
