#!/usr/bin/env python
"""Evaluation engine tour: batched suite runs, early stopping, caching.

Trains one classifier, then evaluates it against the attack grid three
ways to show what `repro.eval.engine` buys:

1. naive — every iterative attack runs its full iteration budget;
2. engine — per-example early stopping (the default): fooled examples drop
   out of the working batch, accuracies are identical;
3. cached — a second engine run against the same weights replays the
   crafted batches bit-for-bit from the on-disk cache.

The same engine powers the experiment runners; from the command line:

    python -m repro eval-suite --dataset digits --defense pgd-adv \
        --attacks fgsm,bim,pgd,mim --cache-dir .adv-cache

Run:  python examples/eval_suite.py
"""

import tempfile

from repro.attacks import BIM, FGSM, MIM, PGD
from repro.data import load_split
from repro.defenses import VanillaTrainer
from repro.eval import AdversarialCache, AttackSuite
from repro.models import build_classifier


def main() -> None:
    print("Training a Vanilla victim on the digits dataset ...")
    split = load_split("digits", train_size=1024, test_size=256, seed=0)
    model = build_classifier("digits", width=8, seed=0)
    VanillaTrainer(model, epochs=6, batch_size=64).fit(split.train)
    x, y = split.test.images[:128], split.test.labels[:128]

    attacks = {
        "fgsm": FGSM(eps=0.6),
        "bim": BIM(eps=0.6, step=0.1, iterations=10),
        "pgd": PGD(eps=0.6, step=0.02, iterations=40, seed=0),
        "mim": MIM(eps=0.6, step=0.1, iterations=10),
    }

    print("\n[1] naive: full iteration budget on every example")
    naive = AttackSuite(attacks, early_stop=False)
    naive_result = naive.run(model, x, y, model_name="vanilla",
                             on_record=lambda r: print(f"  {r}"))

    print("\n[2] engine: per-example early stopping (same accuracies)")
    engine = AttackSuite(attacks, early_stop=True)
    engine_result = engine.run(model, x, y, model_name="vanilla",
                               on_record=lambda r: print(f"  {r}"))
    speedup = naive_result.generation_seconds \
        / engine_result.generation_seconds
    print(f"  -> {naive_result.generation_seconds:.2f}s vs "
          f"{engine_result.generation_seconds:.2f}s  ({speedup:.1f}x)")
    assert engine_result.accuracy == naive_result.accuracy

    with tempfile.TemporaryDirectory() as cache_dir:
        print("\n[3] cached: replaying crafted batches from disk")
        cache = AdversarialCache(cache_dir)
        AttackSuite(attacks, cache=cache, early_stop=True).run(model, x, y)
        cached_result = AttackSuite(attacks, cache=cache,
                                    early_stop=True).run(
            model, x, y, model_name="vanilla",
            on_record=lambda r: print(f"  {r}"))
        assert all(r.from_cache for r in cached_result.records)
        assert cached_result.accuracy == engine_result.accuracy
        print(f"  cache: {cache.hits} hits / {cache.misses} misses")


if __name__ == "__main__":
    main()
