#!/usr/bin/env python
"""Online hardening walkthrough: serve -> quarantine -> fine-tune ->
canary -> hot-swap.

The closed loop `repro harden` runs, taken apart step by step:

1. train ZK-GanDef briefly and checkpoint it — a deployment whose
   Table II discriminator still has headroom against live traffic;
2. serve a seeded clean+PGD mix through the gated `Server`, with a
   `QuarantineStore` flag sink capturing everything the gate catches;
3. `fine_tune` resumes the serving checkpoint and anchors the
   discriminator on the quarantine's **source bits** (clean = 0,
   perturbed = 1 — the Sec. III-B signal, no class labels needed),
   staging a candidate archive;
4. `run_canary` measures baseline vs candidate — clean accuracy, robust
   accuracy under the re-crafted attack suite, the gate's detection and
   false-positive rates — and applies the promote/reject policy;
5. a promoted candidate hot-swaps in through the registry's staged
   `promote` (provenance recorded in the candidate archive itself;
   `rollback` undoes it instantly).

The same loop, end to end, from the command line:

    python -m repro harden --model zk-gandef --dataset digits \
        --cycles 2 --requests 64 --finetune-epochs 1 --disc-passes 2

Run:  python examples/harden_loop.py
"""

import tempfile

from repro.harden import CanaryPolicy, HardeningLoop


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        loop = HardeningLoop(
            model="zk-gandef",          # trained on the fly, checkpointed
            dataset="digits",
            preset="fast",
            seed=0,
            requests=32,                # traffic per cycle, 50% adversarial
            base_epochs=2,              # briefly trained: gate has headroom
            finetune_epochs=1,          # continuation on the clean split
            disc_passes=2,              # anchor passes over the quarantine
            policy=CanaryPolicy(max_fpr_regression=0.05),
            workdir=workdir,
            verbose=True,
        )

        print("[1] base model + one full hardening cycle ...")
        report = loop.run(cycles=1)
        (cycle,) = report.cycles
        canary = cycle.canary

        print("\n--- what the cycle did ---")
        print(f"flagged {cycle.flagged} examples, "
              f"quarantined {cycle.quarantined} (deduped)")
        print(f"candidate: {cycle.finetune.candidate_path}")
        print(f"  detection rate   "
              f"{canary.baseline.detection_rate:7.2%} -> "
              f"{canary.candidate.detection_rate:7.2%}")
        print(f"  clean FPR        "
              f"{canary.baseline.false_positive_rate:7.2%} -> "
              f"{canary.candidate.false_positive_rate:7.2%}")
        print(f"  clean accuracy   "
              f"{canary.baseline.clean_accuracy:7.2%} -> "
              f"{canary.candidate.clean_accuracy:7.2%}")
        print(f"verdict: {cycle.verdict}"
              + (f" ({'; '.join(canary.reasons)})"
                 if canary.reasons else ""))

        if cycle.promoted:
            print(f"\n[2] promoted; serving fingerprint "
                  f"{cycle.fingerprint[:16]}")
            print("[3] rolling the promotion back (instant: the "
                  "displaced weights are still in memory) ...")
            entry = loop.rollback()
            print(f"    serving fingerprint restored to "
                  f"{entry.fingerprint[:16]}")
        else:
            print("\n[2] rejected; the old weights never stopped serving")


if __name__ == "__main__":
    main()
