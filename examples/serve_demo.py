#!/usr/bin/env python
"""Serving subsystem tour: checkpoint -> server -> gated mixed traffic.

Walks the full `repro.serve` path the way a deployment would:

1. train ZK-GanDef briefly and checkpoint it (the artifact `repro train
   --checkpoint-dir` leaves behind);
2. load the checkpoint into a `ModelRegistry` — the archive's own
   metadata rebuilds the right trainer, recovers the Table II
   discriminator, and pins the producing backend;
3. stand up a micro-batching `Server` with the discriminator gate and a
   prediction cache;
4. drive a seeded clean+PGD traffic mix through it and print what
   production cares about: throughput, p50/p95 latency, the gate's
   detection / false-positive rates, cache effectiveness.

The same path is reachable from the command line:

    python -m repro serve --model runs/gandef/checkpoint.npz \
        --dataset digits --max-batch 32 --deadline-ms 5 --gate disc

Run:  python examples/serve_demo.py
"""

import tempfile

from repro.data import load_split
from repro.experiments.config import get_config
from repro.experiments.runners import build_trainer
from repro.serve import (
    ModelRegistry,
    PredictionCache,
    Server,
    build_mixed_load,
    craft_adversarial_pool,
    run_load,
)
from repro.train import save_checkpoint


def main() -> None:
    print("[1] training ZK-GanDef on the digits stand-in ...")
    split = load_split("digits", train_size=1024, test_size=256, seed=0)
    cfg = get_config("fast").dataset("digits")
    trainer = build_trainer("zk-gandef", cfg, seed=0)
    trainer.epochs = 8
    trainer.fit(split.train)

    with tempfile.TemporaryDirectory() as rundir:
        path = f"{rundir}/checkpoint.npz"
        save_checkpoint(trainer, path)
        print(f"    checkpointed -> {path}")

        print("[2] loading the checkpoint into a ModelRegistry ...")
        registry = ModelRegistry()
        entry = registry.load("gandef", path, dataset="digits")
        print(f"    trainer={entry.trainer}  backend={entry.backend}  "
              f"discriminator={'yes' if entry.has_discriminator else 'no'}")

        print("[3] starting the server (micro-batching + disc gate + "
              "prediction cache) ...")
        server = Server(registry, max_batch=32, deadline_ms=5.0,
                        gate="disc", cache=PredictionCache(max_entries=1024))

        print("[4] serving a seeded 50/50 clean+PGD traffic mix ...")
        images = split.test.images[:96]
        labels = split.test.labels[:96]
        attack = cfg.budget.build(fast=True, seed=0)["pgd"]
        adv_pool = craft_adversarial_pool(entry.model, images, labels,
                                          attack)
        traffic = build_mixed_load(images, adv_pool, num_requests=256,
                                   max_request_size=4, adv_fraction=0.5,
                                   seed=0)
        report = run_load(server, "gandef", traffic)

        stats = server.stats
        print(f"\n    served {stats.examples} examples in {stats.batches} "
              f"batches (mean size {stats.mean_batch_size:.1f})")
        print(f"    throughput {report.throughput:9.1f} examples/s")
        print(f"    latency    p50 "
              f"{stats.latency_percentile(50) * 1e3:6.2f}ms   "
              f"p95 {stats.latency_percentile(95) * 1e3:6.2f}ms")
        cache = server.cache
        assert cache is not None
        print(f"    cache      {cache.hits} hits / {cache.misses} misses "
              f"({cache.hit_rate:.0%})")
        print(f"    gate       {report.gate_metrics}")
        labels_for = {i: int(label) for i, label in enumerate(labels)}
        print(f"    accuracy on served traffic "
              f"{report.accuracy(labels_for) * 100:.2f}%")


if __name__ == "__main__":
    main()
