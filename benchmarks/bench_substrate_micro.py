"""Microbenchmarks of the substrate hot paths.

Not a paper artifact, but the knobs that determine how far the FULL preset
is from feasible: conv2d forward/backward, a full LeNet training step, and
per-image attack cost.
"""

import numpy as np
import pytest

from repro import nn
from repro.attacks import FGSM, PGD
from repro.models import LeNet
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def lenet():
    return LeNet(width=8, rng=derive_rng(0, "bench"))


@pytest.fixture(scope="module")
def batch():
    rng = derive_rng(1, "bench")
    x = rng.standard_normal((32, 1, 28, 28)).astype(np.float32)
    y = np.arange(32) % 10
    return x, y


@pytest.mark.benchmark(group="micro")
def test_conv2d_forward(benchmark):
    rng = derive_rng(2, "bench")
    x = nn.Tensor(rng.standard_normal((32, 8, 14, 14)).astype(np.float32))
    w = nn.Tensor(rng.standard_normal((16, 8, 5, 5)).astype(np.float32))
    benchmark(lambda: nn.conv2d(x, w, padding=2))


@pytest.mark.benchmark(group="micro")
def test_lenet_forward(benchmark, lenet, batch):
    x, _ = batch
    lenet.eval()
    with nn.no_grad():
        benchmark(lambda: lenet(nn.Tensor(x)))


@pytest.mark.benchmark(group="micro")
def test_lenet_train_step(benchmark, lenet, batch):
    x, y = batch
    optimizer = nn.Adam(lenet.parameters())

    def step():
        optimizer.zero_grad()
        loss = nn.softmax_cross_entropy(lenet(nn.Tensor(x)), y)
        loss.backward()
        optimizer.step()

    benchmark(step)


@pytest.mark.benchmark(group="micro")
def test_fgsm_generation(benchmark, lenet, batch):
    x, y = batch
    attack = FGSM(eps=0.3)
    benchmark(lambda: attack(lenet, x, y))


@pytest.mark.benchmark(group="micro")
def test_pgd_generation(benchmark, lenet, batch):
    x, y = batch
    attack = PGD(eps=0.3, step=0.1, iterations=5, seed=0)
    benchmark(lambda: attack(lenet, x, y))
