"""Microbenchmarks of the substrate hot paths.

Not a paper artifact, but the knobs that determine how far the FULL preset
is from feasible: conv2d forward/backward, a full LeNet training step,
per-image attack cost, and the fused elementwise chains (the attack
ascent step and ReLU backward masking) that the fast backend collapses
into single in-place passes and the compiled backend replays over
preallocated plan buffers — each measured against its unfused,
temporary-allocating reference expression.
"""

import numpy as np
import pytest

import repro.backend as backend
from repro import nn
from repro.attacks import FGSM, PGD
from repro.backend.fast import FastNumpyBackend
from repro.models import LeNet
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def lenet():
    return LeNet(width=8, rng=derive_rng(0, "bench"))


@pytest.fixture(scope="module")
def batch():
    rng = derive_rng(1, "bench")
    x = rng.standard_normal((32, 1, 28, 28)).astype(np.float32)
    y = np.arange(32) % 10
    return x, y


@pytest.mark.benchmark(group="micro")
def test_conv2d_forward(benchmark):
    rng = derive_rng(2, "bench")
    x = nn.Tensor(rng.standard_normal((32, 8, 14, 14)).astype(np.float32))
    w = nn.Tensor(rng.standard_normal((16, 8, 5, 5)).astype(np.float32))
    benchmark(lambda: nn.conv2d(x, w, padding=2))


@pytest.mark.benchmark(group="micro")
def test_lenet_forward(benchmark, lenet, batch):
    x, _ = batch
    lenet.eval()
    with nn.no_grad():
        benchmark(lambda: lenet(nn.Tensor(x)))


@pytest.mark.benchmark(group="micro")
def test_lenet_train_step(benchmark, lenet, batch):
    x, y = batch
    optimizer = nn.Adam(lenet.parameters())

    def step():
        optimizer.zero_grad()
        loss = nn.softmax_cross_entropy(lenet(nn.Tensor(x)), y)
        loss.backward()
        optimizer.step()

    benchmark(step)


@pytest.mark.benchmark(group="micro")
def test_fgsm_generation(benchmark, lenet, batch):
    x, y = batch
    attack = FGSM(eps=0.3)
    benchmark(lambda: attack(lenet, x, y))


@pytest.mark.benchmark(group="micro")
def test_pgd_generation(benchmark, lenet, batch):
    x, y = batch
    attack = PGD(eps=0.3, step=0.1, iterations=5, seed=0)
    benchmark(lambda: attack(lenet, x, y))


# --------------------------------------------------------------------- #
# fused elementwise chains
#
# Both pairs pin the same arithmetic (asserted bit-equal before timing);
# the fused variant only changes memory behaviour — one pass over pooled
# or preallocated buffers instead of a fresh temporary per subexpression.
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def ascent_operands():
    rng = derive_rng(3, "bench")
    shape = (64, 1, 28, 28)
    adv = rng.uniform(0, 1, size=shape).astype(np.float32)
    grad = rng.standard_normal(shape).astype(np.float32)
    origin = rng.uniform(0, 1, size=shape).astype(np.float32)
    return adv, grad, origin


def _unfused_ascent(adv, grad, step, origin, eps, low, high):
    # The reference expression the attack loops spell out inline: every
    # subexpression allocates (sign, mul, add, two bounds, two clips).
    out = adv + step * np.sign(grad)
    out = np.clip(out, origin - eps, origin + eps)
    return np.clip(out, low, high).astype(np.float32, copy=False)


@pytest.mark.benchmark(group="micro-fused")
def test_signed_ascent_unfused(benchmark, ascent_operands):
    adv, grad, origin = ascent_operands
    benchmark(lambda: _unfused_ascent(adv, grad, 0.03, origin, 0.3, 0.0, 1.0))


@pytest.mark.benchmark(group="micro-fused")
def test_signed_ascent_fused(benchmark, ascent_operands):
    adv, grad, origin = ascent_operands
    b = FastNumpyBackend()
    reference = _unfused_ascent(adv, grad, 0.03, origin, 0.3, 0.0, 1.0)
    fused = b.signed_ascent(adv, grad, 0.03, origin, 0.3, 0.0, 1.0)
    np.testing.assert_array_equal(reference, fused)
    b.release(fused)

    def step():
        out = b.signed_ascent(adv, grad, 0.03, origin, 0.3, 0.0, 1.0)
        b.release(out)

    benchmark(step)


@pytest.fixture(scope="module")
def relu_operands():
    rng = derive_rng(4, "bench")
    shape = (64, 8, 28, 28)
    x = rng.standard_normal(shape).astype(np.float32)
    g = rng.standard_normal(shape).astype(np.float32)
    return x, g


def _unfused_relu_backward(x, g):
    # Eager tape: the mask is rebuilt as a fresh float array and the
    # multiply allocates the gradient — two temporaries per call.
    mask = (x > 0).astype(np.float32)
    return g * mask


@pytest.mark.benchmark(group="micro-fused")
def test_relu_backward_unfused(benchmark, relu_operands):
    x, g = relu_operands
    benchmark(lambda: _unfused_relu_backward(x, g))


@pytest.mark.benchmark(group="micro-fused")
def test_relu_backward_fused(benchmark, relu_operands):
    # The compiled plan's ReLU kernel: the boolean mask, its float cast
    # and the masked gradient all land in plan-owned buffers.
    x, g = relu_operands
    maskb = np.empty(x.shape, np.bool_)
    mask = np.empty(x.shape, np.float32)
    out = np.empty(x.shape, np.float32)

    def step():
        np.greater(x, 0, out=maskb)
        np.copyto(mask, maskb, casting="unsafe")
        np.multiply(g, mask, out=out)
        return out

    np.testing.assert_array_equal(_unfused_relu_backward(x, g), step())
    benchmark(step)


@pytest.fixture(scope="module")
def small_batch(batch):
    # The compiled backend's payoff regime: small batches, where the
    # per-iteration fixed costs it eliminates (tape construction,
    # dispatch, allocation) are the dominant slice of a gradient call.
    # Large batches are BLAS-bound and replay converges toward 1x there.
    x, y = batch
    return x[:8], y[:8]


def _frozen_gradient_bench(benchmark, lenet, small_batch, backend_name):
    # ``Attack.generate`` freezes parameters for the crafting loop; the
    # compiled backend only captures frozen graphs, so mirror that here.
    from repro.attacks.base import logits_and_input_grad
    x, y = small_batch
    lenet.eval()
    frozen = [p for p in lenet.parameters() if p.requires_grad]
    for p in frozen:
        p.requires_grad = False
    try:
        with backend.use(backend_name):
            logits_and_input_grad(lenet, x, y)  # warm (traces if compiled)
            benchmark(lambda: logits_and_input_grad(lenet, x, y))
    finally:
        for p in frozen:
            p.requires_grad = True


@pytest.mark.benchmark(group="micro-fused")
def test_attack_gradient_eager_fast(benchmark, lenet, small_batch):
    # End-to-end context for the chains above: one eager tape-built
    # gradient call vs its compiled replay (next test, same shapes).
    _frozen_gradient_bench(benchmark, lenet, small_batch, "fast")


@pytest.mark.benchmark(group="micro-fused")
def test_attack_gradient_compiled_replay(benchmark, lenet, small_batch):
    _frozen_gradient_bench(benchmark, lenet, small_batch, "compiled")
