"""Online-hardening efficacy tracking: ``python benchmarks/bench_harden.py``.

Runs one full serve → quarantine → fine-tune → canary → hot-swap cycle
against the fixed PGD attacker (the paper's Sec. IV-C budget) for every
measured CPU backend and records what the cycle bought:

* the discriminator gate's **detection rate** on the attacker's traffic,
  before vs. after the cycle — the whole point of the loop;
* the gate's **clean false-positive rate**, before vs. after — the cost
  the canary polices;
* clean and robust accuracy of baseline and candidate, the canary
  verdict, and the cycle's wall-clock phases.

Results land in ``BENCH_harden.json`` so the trajectory is comparable
across commits.  The script exits non-zero unless, on every backend,
the cycle **strictly improves** detection while the clean
false-positive rate regresses by at most ``FPR_BOUND`` — the same
bounds the canary's promote/reject policy enforces in production.

Usage::

    python benchmarks/bench_harden.py [--output PATH] [--quick]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.backend as backend  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.experiments.runners import build_trainer, \
    load_config_split  # noqa: E402
from repro.harden import CanaryPolicy, HardeningLoop  # noqa: E402
from repro.train import save_checkpoint  # noqa: E402

BACKENDS = ("numpy", "fast")
FPR_BOUND = 0.05


def train_base(epochs, workdir, backend_name, seed=0):
    """A ZK-GanDef victim at the FAST preset's geometry, checkpointed."""
    cfg = get_config("fast").dataset("digits")
    path = os.path.join(workdir, f"base_{backend_name}.npz")
    with backend.use(backend_name):
        split = load_config_split(cfg, seed=seed)
        trainer = build_trainer("zk-gandef", cfg, seed=seed)
        trainer.epochs = epochs
        trainer.fit(split.train)
        save_checkpoint(trainer, path)
    return path


def run_cycle(base_checkpoint, workdir, backend_name, requests, seed=0):
    """One hardening cycle; returns the bench record for this backend."""
    loop = HardeningLoop(
        model=base_checkpoint, dataset="digits", preset="fast",
        seed=seed, backend=backend_name, requests=requests,
        finetune_epochs=1, disc_passes=2,
        policy=CanaryPolicy(max_fpr_regression=FPR_BOUND),
        workdir=os.path.join(workdir, backend_name))
    start = time.perf_counter()
    report = loop.run(cycles=1)
    wall = time.perf_counter() - start
    (cycle,) = report.cycles
    canary = cycle.canary
    return {
        "backend": backend_name,
        "requests": requests,
        "flagged": cycle.flagged,
        "quarantined": cycle.quarantined,
        "verdict": cycle.verdict,
        "promoted": cycle.promoted,
        "reasons": canary.reasons,
        "detection_rate": {
            "before": canary.baseline.detection_rate,
            "after": canary.candidate.detection_rate,
        },
        "false_positive_rate": {
            "before": canary.baseline.false_positive_rate,
            "after": canary.candidate.false_positive_rate,
        },
        "clean_accuracy": {
            "before": canary.baseline.clean_accuracy,
            "after": canary.candidate.clean_accuracy,
        },
        "robust_accuracy": {
            "before": canary.baseline.robust_accuracy,
            "after": canary.candidate.robust_accuracy,
        },
        "cycle_seconds": wall,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_harden.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="shorter base training / lighter load")
    args = parser.parse_args(argv)

    # The base victim is deliberately briefly trained: online hardening
    # exists for the deployment whose discriminator still has headroom
    # against live traffic (a converged FAST-preset gate leaves one
    # cycle nothing measurable to improve at this scale).
    epochs = 2
    requests = 24 if args.quick else 64

    import tempfile

    failures = []
    records = []
    with tempfile.TemporaryDirectory(prefix="bench_harden_") as workdir:
        for backend_name in BACKENDS:
            print(f"[{backend_name}] training base victim "
                  f"({epochs} epochs) ...")
            base = train_base(epochs, workdir, backend_name)
            print(f"[{backend_name}] one hardening cycle "
                  f"({requests} requests) ...")
            record = run_cycle(base, workdir, backend_name, requests)
            records.append(record)
            det = record["detection_rate"]
            fpr = record["false_positive_rate"]
            print(f"[{backend_name}] detection {det['before']:.4f} -> "
                  f"{det['after']:.4f}, clean FPR {fpr['before']:.4f} -> "
                  f"{fpr['after']:.4f}, verdict={record['verdict']} "
                  f"({record['cycle_seconds']:.1f}s)")
            if det["after"] <= det["before"]:
                failures.append(
                    f"{backend_name}: detection did not strictly improve "
                    f"({det['before']:.4f} -> {det['after']:.4f})")
            if fpr["after"] > fpr["before"] + FPR_BOUND:
                failures.append(
                    f"{backend_name}: clean FPR regressed past the "
                    f"{FPR_BOUND} bound ({fpr['before']:.4f} -> "
                    f"{fpr['after']:.4f})")
            if not record["promoted"]:
                failures.append(
                    f"{backend_name}: canary rejected the candidate: "
                    f"{'; '.join(record['reasons'])}")

    payload = {
        "benchmark": "harden",
        "preset": "fast",
        "dataset": "digits",
        "base_epochs": epochs,
        "fpr_bound": FPR_BOUND,
        "results": records,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
