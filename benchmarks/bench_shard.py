"""Sharded-evaluation perf tracking: ``python benchmarks/bench_shard.py``.

Measures, for each CPU backend, the attack-suite wall-clock (PGD/BIM/MIM
at the paper's Sec. IV-C budgets against a briefly-trained digits
classifier) under ``--workers`` in {1, 2, 4}:

* ``workers=1`` is the untouched single-process engine — the baseline;
* ``workers>1`` fans the (attack, shard) grid over a spawn pool; the pool
  is started *before* timing (a persistent pool is the deployment shape —
  table3 reuses one across seven defenses) so the number tracks crafting,
  not interpreter startups;
* the **merge-equality assertion runs inline**: every worker count must
  reproduce the single-process accuracies exactly, or the bench fails —
  a speedup that changes results is a bug, not a result.

Results land in ``BENCH_shard.json``.  The ≥1.7x floor at 4 workers is
enforced (non-zero exit) whenever the host exposes at least 4 usable
CPUs; on smaller hosts — including single-core CI sandboxes — the
measured numbers are still recorded with ``floor_enforced: false`` and
the honest reason, because process parallelism cannot beat a one-core
budget and a faked number would poison the trajectory.

Usage::

    python benchmarks/bench_shard.py [--output PATH] [--quick]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.backend as backend  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.defenses import VanillaTrainer  # noqa: E402
from repro.eval.engine import AttackSuite  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.models import build_classifier  # noqa: E402

SPEEDUP_FLOOR = 1.7
FLOOR_WORKERS = 4
WORKER_COUNTS = (1, 2, 4)
BACKENDS = ("numpy", "fast")
SHARD_SIZE = 16


def usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def train_victim(epochs, train_size, test_size, seed=0):
    split = load_split("digits", train_size, test_size, seed=seed)
    model = build_classifier("digits", width=8, seed=seed)
    VanillaTrainer(model, epochs=epochs, batch_size=64, lr=1e-3,
                   seed=seed).fit(split.train)
    return model, split


def build_attacks():
    cfg = get_config("fast").dataset("digits")
    # Paper budgets: fast=False keeps the full Sec. IV-C iteration counts.
    pool = cfg.budget.build(fast=False, seed=0, early_stop=True)
    from repro.attacks import MIM

    return {"pgd": pool["pgd"], "bim": pool["bim"],
            "mim": MIM(eps=cfg.budget.eps, step=pool["bim"].step,
                       iterations=pool["bim"].iterations, early_stop=True)}


def result_key(result):
    return (result.clean_accuracy,
            [(r.attack, r.accuracy, r.flipped, r.evaluated)
             for r in result.records])


def bench_workers(model, split, eval_size, workers):
    """Wall-clock of one suite run at ``workers`` (pool pre-started)."""
    attacks = build_attacks()
    images = split.test.images[:eval_size]
    labels = split.test.labels[:eval_size]
    suite = AttackSuite(attacks, workers=workers,
                        shard_size=SHARD_SIZE if workers > 1 else None)
    try:
        if suite.crafter is not None and suite.crafter.parallel:
            suite.crafter._ensure_pool()    # spawn outside the timer
        # Two runs: cold fills the fast backend's verify-then-trust
        # caches (and the workers' counterparts); steady-state is the
        # number grid workloads see.
        results, seconds = [], []
        for _ in range(2):
            start = time.perf_counter()
            results.append(suite.run(model, images, labels,
                                     model_name="vanilla",
                                     dataset="digits"))
            seconds.append(time.perf_counter() - start)
        assert result_key(results[0]) == result_key(results[1])
        return seconds[-1], seconds[0], result_key(results[-1])
    finally:
        suite.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_shard.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller victim / eval set (smoke run)")
    args = parser.parse_args(argv)

    epochs = 2 if args.quick else 4
    train_size = 512 if args.quick else 1024
    eval_size = 48 if args.quick else 128

    cpus = usable_cpus()
    floor_enforced = cpus >= FLOOR_WORKERS
    report = {
        "config": {"epochs": epochs, "train_size": train_size,
                   "eval_size": eval_size, "shard_size": SHARD_SIZE,
                   "worker_counts": list(WORKER_COUNTS),
                   "attack_budgets": "paper (Sec. IV-C)"},
        "usable_cpus": cpus,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_workers": FLOOR_WORKERS,
        "floor_enforced": floor_enforced,
        "per_backend": {},
    }
    if not floor_enforced:
        report["floor_skip_reason"] = (
            f"host exposes {cpus} usable CPU(s); process parallelism "
            f"cannot clear {SPEEDUP_FLOOR}x at {FLOOR_WORKERS} workers "
            f"on fewer than {FLOOR_WORKERS} cores")

    failures = []
    for name in BACKENDS:
        with backend.use(name):
            model, split = train_victim(epochs, train_size,
                                        max(eval_size, 256))
            per_workers = {}
            baseline_key = None
            for workers in WORKER_COUNTS:
                steady, cold, key = bench_workers(model, split, eval_size,
                                                  workers)
                if baseline_key is None:
                    baseline_key = key
                elif key != baseline_key:
                    failures.append(
                        f"[{name}] workers={workers} changed results — "
                        "merge equality violated")
                per_workers[str(workers)] = {
                    "suite_seconds": round(steady, 4),
                    "suite_cold_seconds": round(cold, 4),
                }
            base = per_workers["1"]["suite_seconds"]
            speedups = {w: round(base / v["suite_seconds"], 3)
                        for w, v in per_workers.items()}
            report["per_backend"][name] = {
                "per_workers": per_workers,
                "speedup_vs_single_process": speedups,
                "merge_equality": "verified inline",
            }
            for w, v in per_workers.items():
                print(f"[{name:5s}] workers={w}: "
                      f"{v['suite_seconds']:7.3f}s "
                      f"(cold {v['suite_cold_seconds']:7.3f}s)  "
                      f"speedup {speedups[w]:5.2f}x")
            if floor_enforced and \
                    speedups[str(FLOOR_WORKERS)] < SPEEDUP_FLOOR:
                failures.append(
                    f"[{name}] {speedups[str(FLOOR_WORKERS)]}x at "
                    f"{FLOOR_WORKERS} workers is below the "
                    f"{SPEEDUP_FLOOR}x floor")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    floor_word = "enforced" if floor_enforced \
        else "advisory (see floor_skip_reason)"
    print(f"floor {floor_word} -> {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
