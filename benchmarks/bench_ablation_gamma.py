"""E6 — gamma trade-off ablation (Sec. III-D).

gamma = 0 reduces ZK-GanDef to plain mixture training; the sweep shows how
the discriminator term trades clean accuracy for source-invariance.
"""

import pytest

from repro.experiments import run_gamma_ablation

from conftest import run_once


@pytest.mark.benchmark(group="ablation")
def test_gamma_ablation(benchmark, preset):
    results = run_once(benchmark, run_gamma_ablation, "digits",
                       preset=preset, gammas=(0.0, 3.0))
    for r in results:
        row = "  ".join(f"{k}={v * 100:.1f}%" for k, v in r.accuracy.items())
        print(f"\n[ablation] {r.defense:20s} {row}")
    by_gamma = {r.defense: r.accuracy for r in results}
    # Both settings must train a usable classifier.
    assert by_gamma["zk-gandef(g=0.0)"]["original"] > 0.7
    assert by_gamma["zk-gandef(g=3.0)"]["original"] > 0.7
