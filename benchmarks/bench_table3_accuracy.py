"""E1 — regenerate Table III / Figure 4 (the main accuracy grid).

One benchmark per dataset: trains all seven classifiers and evaluates them
on original, FGSM, BIM and PGD examples, printing the paper-layout table
and asserting the headline shape claims.  A fourth benchmark isolates the
iterative-attack portion of the pipeline and pins the evaluation engine's
early-stopping speedup (and its exact accuracy preservation).
"""

import dataclasses
import time

import pytest

from repro.eval.metrics import test_accuracy
from repro.experiments import render_table3, run_table3
from repro.experiments.config import get_config
from repro.experiments.eval_suite import build_attack_pool
from repro.experiments.runners import build_trainer, load_config_split

from conftest import run_once


def _by_defense(results):
    return {r.defense: r.accuracy for r in results}


@pytest.mark.benchmark(group="table3")
def test_table3_digits(benchmark, preset):
    results = run_once(benchmark, run_table3, "digits", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    # Vanilla: accurate on clean data, collapses under iterative attacks.
    assert acc["vanilla"]["original"] > 0.9
    assert acc["vanilla"]["pgd"] < 0.2
    # ZK-GanDef beats the other zero-knowledge defenses on iterative
    # attacks (the paper's headline claim).
    assert acc["zk-gandef"]["pgd"] >= max(acc["clp"]["pgd"],
                                          acc["cls"]["pgd"]) - 0.02
    assert acc["zk-gandef"]["bim"] >= max(acc["clp"]["bim"],
                                          acc["cls"]["bim"]) - 0.02
    # Full-knowledge iterative training is the strongest defense.
    assert acc["pgd-adv"]["pgd"] > acc["vanilla"]["pgd"]


@pytest.mark.benchmark(group="table3")
def test_table3_fashion(benchmark, preset):
    results = run_once(benchmark, run_table3, "fashion", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    assert acc["vanilla"]["original"] > 0.9
    assert acc["vanilla"]["pgd"] < 0.2
    assert acc["pgd-adv"]["pgd"] >= acc["vanilla"]["pgd"]


# Spans the robustness spectrum: undefended (collapses in 1-2 steps),
# zero-knowledge (collapses fast), single-step trained and iteratively
# trained (examples fall gradually) — the engine must win across all of it.
PORTION_DEFENSES = ("vanilla", "cls", "fgsm-adv", "pgd-adv")


def _measure_attack_portion(preset):
    """Time the PGD/BIM/MIM generation portion of Table III, naive vs
    engine.

    Attacks run at the paper's Sec. IV-C iteration budgets (BIM/MIM 10
    steps, PGD 40/20) — the budgets the FULL preset uses and the cost the
    ISSUE's motivation describes.  The fast presets trim iteration counts
    to the minimum that traverses the eps-ball, which removes precisely the
    redundant gradient steps early stopping exists to skip, so they
    understate the engine; classifier training still uses ``preset`` scale.
    """
    cfg = get_config(preset).dataset("digits")
    split = load_config_split(cfg, seed=0)
    x = split.test.images[:cfg.eval_size]
    y = split.test.labels[:cfg.eval_size]
    pool = build_attack_pool(cfg, fast=False, seed=0)
    attacks = {name: pool[name] for name in ("bim", "pgd", "mim")}

    rows = []
    naive_seconds = engine_seconds = 0.0
    for defense in PORTION_DEFENSES:
        trainer = build_trainer(defense, cfg, seed=0)
        trainer.fit(split.train)
        model = trainer.model
        for name, attack in attacks.items():
            naive = dataclasses.replace(attack, early_stop=False)
            engine = dataclasses.replace(attack, early_stop=True)
            start = time.perf_counter()
            adv_naive = naive(model, x, y)
            mid = time.perf_counter()
            adv_engine = engine(model, x, y)
            end = time.perf_counter()
            naive_seconds += mid - start
            engine_seconds += end - mid
            rows.append({
                "defense": defense,
                "attack": name,
                "acc_naive": test_accuracy(model, adv_naive, y),
                "acc_engine": test_accuracy(model, adv_engine, y),
            })
    return {"naive_seconds": naive_seconds,
            "engine_seconds": engine_seconds,
            "speedup": naive_seconds / engine_seconds,
            "rows": rows}


@pytest.mark.benchmark(group="table3-attacks")
def test_table3_attack_engine_speedup(benchmark, preset):
    result = run_once(benchmark, _measure_attack_portion, preset)
    print(f"\nPGD/BIM/MIM portion: naive={result['naive_seconds']:.2f}s "
          f"engine={result['engine_seconds']:.2f}s "
          f"speedup={result['speedup']:.2f}x")
    # The engine may only make the attack portion faster, never different:
    # per-example early stopping must leave every accuracy untouched.
    for row in result["rows"]:
        assert row["acc_naive"] == pytest.approx(row["acc_engine"],
                                                 abs=1e-6), row
    assert result["speedup"] >= 2.0


@pytest.mark.benchmark(group="table3")
def test_table3_objects(benchmark, preset):
    results = run_once(benchmark, run_table3, "objects", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    # The Sec. V-A observation: CLP/CLS do not work on the complex
    # dataset (near random-guess) while ZK-GanDef still trains.
    assert acc["zk-gandef"]["original"] > 0.5
    assert acc["zk-gandef"]["original"] > acc["cls"]["original"] - 0.05
    assert acc["vanilla"]["original"] > 0.8
