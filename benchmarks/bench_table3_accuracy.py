"""E1 — regenerate Table III / Figure 4 (the main accuracy grid).

One benchmark per dataset: trains all seven classifiers and evaluates them
on original, FGSM, BIM and PGD examples, printing the paper-layout table
and asserting the headline shape claims.
"""

import pytest

from repro.experiments import render_table3, run_table3

from conftest import run_once


def _by_defense(results):
    return {r.defense: r.accuracy for r in results}


@pytest.mark.benchmark(group="table3")
def test_table3_digits(benchmark, preset):
    results = run_once(benchmark, run_table3, "digits", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    # Vanilla: accurate on clean data, collapses under iterative attacks.
    assert acc["vanilla"]["original"] > 0.9
    assert acc["vanilla"]["pgd"] < 0.2
    # ZK-GanDef beats the other zero-knowledge defenses on iterative
    # attacks (the paper's headline claim).
    assert acc["zk-gandef"]["pgd"] >= max(acc["clp"]["pgd"],
                                          acc["cls"]["pgd"]) - 0.02
    assert acc["zk-gandef"]["bim"] >= max(acc["clp"]["bim"],
                                          acc["cls"]["bim"]) - 0.02
    # Full-knowledge iterative training is the strongest defense.
    assert acc["pgd-adv"]["pgd"] > acc["vanilla"]["pgd"]


@pytest.mark.benchmark(group="table3")
def test_table3_fashion(benchmark, preset):
    results = run_once(benchmark, run_table3, "fashion", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    assert acc["vanilla"]["original"] > 0.9
    assert acc["vanilla"]["pgd"] < 0.2
    assert acc["pgd-adv"]["pgd"] >= acc["vanilla"]["pgd"]


@pytest.mark.benchmark(group="table3")
def test_table3_objects(benchmark, preset):
    results = run_once(benchmark, run_table3, "objects", preset=preset)
    print("\n" + render_table3(results))
    acc = _by_defense(results)
    # The Sec. V-A observation: CLP/CLS do not work on the complex
    # dataset (near random-guess) while ZK-GanDef still trains.
    assert acc["zk-gandef"]["original"] > 0.5
    assert acc["zk-gandef"]["original"] > acc["cls"]["original"] - 0.05
    assert acc["vanilla"]["original"] > 0.8
