"""E4 — regenerate Figure 5 (right): CLS loss convergence study.

Four (sigma, lambda) settings on the complex dataset.  The paper's
pattern: the three strong settings overlap on a flat top curve; only
(sigma=0.1, lambda=0.01) converges — and that one degenerates to Vanilla.
"""

import pytest

from repro.experiments import run_cls_convergence

from conftest import run_once


@pytest.mark.benchmark(group="figure5-convergence")
def test_cls_convergence(benchmark, preset):
    curves = run_once(benchmark, run_cls_convergence, "objects",
                      preset=preset, epochs=8)
    for curve in curves:
        trace = " ".join(f"{v:.2f}" for v in curve.losses)
        print(f"\n[figure5] {curve.label:24s} converged="
              f"{curve.converged()}  {trace}")
    by_setting = {(c.sigma, c.lam): c for c in curves}
    # Strong settings stall on the flat top curve.
    assert not by_setting[(1.0, 0.4)].converged()
    assert not by_setting[(0.1, 0.4)].converged()
    # The weakest setting is the only clearly converging one.
    assert by_setting[(0.1, 0.01)].converged()
