"""Callback-layer overhead: the TrainLoop must cost ~nothing.

The tentpole refactor routed every trainer through ``TrainLoop`` +
callback dispatch.  This benchmark re-implements the seed repo's bare
``fit`` loop (pre-callback, inlined here as the control) and pins the
loop's wall-clock overhead on the vanilla trainer to <5% — the layer
dispatches a handful of Python calls per epoch/batch while the work is
numpy matmuls per batch, so the budget is generous.

Methodology: wall-clock noise on CPU runners swamps a single short run,
so both variants are **interleaved** (drift hits them equally) and the
comparison uses the **minimum observed epoch time** across all runs —
repeats x epochs samples per variant — which estimates each loop's true
floor independently of transient load.
"""

import time

import numpy as np
import pytest

from repro.data import Dataset
from repro.data.batching import iterate_batches
from repro.experiments import get_config, load_config_split
from repro.experiments.runners import build_trainer
from repro.utils.rng import derive_rng

REPEATS = 4
EPOCHS = 6
TRAIN_SLICE = 512   # short epochs -> many per-epoch samples
MAX_OVERHEAD = 0.05
# Scheduler/timer jitter floor per epoch.  At this benchmark's ~0.35s
# epochs the observed run-to-run scatter of the *bare* loop alone is
# +/-5%, i.e. ~the relative budget; the absolute term absorbs that
# jitter here while staying negligible at paper scale (minutes/epoch),
# where the 5% relative bound is the binding constraint.
JITTER_SECONDS = 0.02


def bare_seed_fit(trainer, dataset):
    """The pre-refactor epoch loop, verbatim minus the history object;
    returns (per-epoch losses, per-epoch seconds)."""
    batch_rng = derive_rng(trainer.seed, f"{trainer.name}-batches")
    losses, seconds = [], []
    for _ in range(trainer.epochs):
        epoch_losses = []
        trainer.model.train()
        start = time.perf_counter()
        for images, labels in iterate_batches(
                dataset, trainer.batch_size, batch_rng):
            epoch_losses.append(trainer.train_step(images, labels))
        seconds.append(time.perf_counter() - start)
        losses.append(float(np.mean(epoch_losses)))
    trainer.model.eval()
    return losses, seconds


def loop_fit(trainer, dataset):
    history = trainer.fit(dataset)
    return history.losses, history.epoch_seconds


@pytest.mark.benchmark(group="training-overhead")
def test_callback_layer_overhead(benchmark, preset):
    cfg = get_config(preset).dataset("digits")
    split = load_config_split(cfg, seed=0)
    train = Dataset(split.train.images[:TRAIN_SLICE],
                    split.train.labels[:TRAIN_SLICE], name=split.train.name)

    def make_trainer():
        trainer = build_trainer("vanilla", cfg, seed=0)
        trainer.epochs = EPOCHS
        return trainer

    def interleaved():
        bare_epochs, loop_epochs = [], []
        bare_losses = loop_losses = None
        for repeat in range(REPEATS):
            # Alternate which variant goes first: with a fixed order, any
            # monotonic drift (thermal throttling, turbo decay) lands
            # entirely on the second variant and reads as fake overhead.
            pair = [("bare", bare_seed_fit, bare_epochs),
                    ("loop", loop_fit, loop_epochs)]
            if repeat % 2:
                pair.reverse()
            for name, fn, sink in pair:
                losses, seconds = fn(make_trainer(), train)
                sink.extend(seconds)
                if name == "bare":
                    bare_losses = losses
                else:
                    loop_losses = losses
        # Median over repeats x epochs samples: robust to the outliers
        # (both lucky-fast and load-spiked epochs) that make min- or
        # total-based comparisons flake at a 5% threshold.
        return (float(np.median(bare_epochs)), bare_losses,
                float(np.median(loop_epochs)), loop_losses)

    bare_seconds, bare_losses, loop_seconds, loop_losses = \
        benchmark.pedantic(interleaved, rounds=1, iterations=1,
                           warmup_rounds=0)

    # Same science: the loop trains bit-identically to the seed loop.
    assert loop_losses == bare_losses
    overhead = loop_seconds / bare_seconds - 1.0
    print(f"\n[training-overhead] bare={bare_seconds:.4f}s/epoch "
          f"loop={loop_seconds:.4f}s/epoch overhead={overhead * 100:+.2f}%")
    budget = bare_seconds * (1.0 + MAX_OVERHEAD) + JITTER_SECONDS
    assert loop_seconds <= budget, (
        f"callback layer adds {overhead * 100:.1f}% per epoch "
        f"(budget {MAX_OVERHEAD * 100:.0f}% + {JITTER_SECONDS}s jitter)")
