"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact exactly once
(``benchmark.pedantic`` with one round — the workloads are full training
runs, not microseconds).  The preset defaults to ``bench`` (identical code
paths to ``fast`` at reduced scale) and can be overridden:

    REPRO_BENCH_PRESET=fast pytest benchmarks/ --benchmark-only
"""

import os

import pytest

PRESET = os.environ.get("REPRO_BENCH_PRESET", "bench")


@pytest.fixture(scope="session")
def preset():
    return PRESET


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment benchmark exactly once and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
