"""HTTP serving-tier performance: ``python benchmarks/bench_http.py``.

Two phases against a live ``HttpServer`` on loopback:

* **Equality** — the same single-example request stream served over
  HTTP and directly through the in-process ``Server`` (both at
  ``max_batch=1``, where batch composition is identical by
  construction) must produce **bitwise identical** logits row for row:
  the wire adds latency, never drift.
* **Saturation** — a closed-loop load sweep at increasing offered RPS
  against a capacity-bounded server (small admission queue): measured
  throughput, p50/p95 latency and 429 rate per rung.  The backpressure
  contract is asserted, not just plotted: beyond saturation the 429
  rate must rise while **every** request still gets an answer — zero
  transport errors, zero drops, at every rung.
* **Observability overhead** — the same closed-loop load against a
  server whose forward cost is pinned (so the comparison is about
  instrumentation, not hardware): interleaved disabled/enabled passes,
  each configuration scored by its minimum wall clock (stripping
  scheduler noise, which on shared runners can rival the ceiling);
  enabling span tracing must cost **< 3%** wall clock min-vs-min
  (disabled is free by construction — tracing-off servers bind no
  tracer; the disabled passes' spread is reported as the noise floor).

Results land in ``BENCH_http.json``; the script exits non-zero if the
equality phase sees any mismatch, if any request is dropped, if the
overloaded rungs never push back, or if enabled tracing costs >= 3%.

Usage::

    python benchmarks/bench_http.py [--output PATH] [--quick]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.experiments.runners import build_trainer  # noqa: E402
from repro.serve import (  # noqa: E402
    ApiKeyAuth,
    HttpClient,
    HttpFrontend,
    HttpServer,
    ModelRegistry,
    Server,
    build_mixed_load,
    craft_adversarial_pool,
    run_http_load,
)


def train_gandef(epochs, train_size, seed=0):
    split = load_split("digits", train_size, 256, seed=seed)
    cfg = get_config("fast").dataset("digits")
    trainer = build_trainer("zk-gandef", cfg, seed=seed)
    trainer.epochs = epochs
    trainer.fit(split.train)
    return trainer, split


def build_http(trainer, *, max_batch, queue_limit):
    registry = ModelRegistry()
    registry.add("gandef", trainer.model,
                 discriminator=trainer.discriminator, backend="numpy")
    server = Server(registry, max_batch=max_batch, deadline_ms=2.0,
                    gate="disc", cache=None)
    frontend = HttpFrontend(server, auth=ApiKeyAuth({"bench": "key"}),
                            queue_limit=queue_limit)
    return HttpServer(frontend, host="127.0.0.1", port=0)


def equality_phase(trainer, split, n_examples):
    """HTTP rows vs direct Server rows, bitwise, at max_batch=1."""
    stream = [split.test.images[i:i + 1] for i in range(n_examples)]

    registry = ModelRegistry()
    registry.add("gandef", trainer.model,
                 discriminator=trainer.discriminator, backend="numpy")
    direct = Server(registry, max_batch=1, deadline_ms=0.0, gate="disc")
    direct_handles = [direct.submit("gandef", x) for x in stream]
    direct.drain()

    mismatches = 0
    httpd = build_http(trainer, max_batch=1, queue_limit=1024)
    with httpd:
        host, port = httpd.address
        with HttpClient(host, port, api_key="key") as client:
            for x, want in zip(stream, direct_handles):
                response = client.predict(x, model="gandef")
                if response.status != 200:
                    mismatches += 1
                    continue
                (row,) = response.payload["predictions"]
                got = np.asarray(row["logits"], dtype=np.float32)
                if not np.array_equal(got, want.logits[0]) or \
                        row["label"] != int(want.labels[0]) or \
                        row["score"] != float(want.scores[0]):
                    mismatches += 1
    return {"examples": n_examples, "mismatches": mismatches,
            "bitwise_identical": mismatches == 0}


def pin_forward(trainer, slow_forward_s):
    """Pin per-batch cost so measurements are configuration, not
    hardware: the forward sleeps a fixed floor.  Idempotent."""
    if not slow_forward_s or getattr(trainer, "_forward_pinned", False):
        return
    import time as time_module
    inner = trainer.model.forward

    def forward(x):
        time_module.sleep(slow_forward_s)
        return inner(x)

    trainer.model.forward = forward
    trainer._forward_pinned = True


def saturation_phase(trainer, split, *, num_requests, rps_ladder,
                     queue_limit, concurrency, slow_forward_s):
    """Closed-loop sweep: one rung per offered RPS, shared traffic."""
    attack = get_config("fast").dataset("digits").budget \
        .build(fast=False, seed=0)["pgd"]
    pool = split.test.images[:64]
    adv_pool = craft_adversarial_pool(trainer.model, pool,
                                      split.test.labels[:64], attack)
    traffic = build_mixed_load(pool, adv_pool, num_requests=num_requests,
                               max_request_size=2, adv_fraction=0.5,
                               seed=0)
    pin_forward(trainer, slow_forward_s)
    rungs = []
    violations = []
    for target_rps in rps_ladder:
        httpd = build_http(trainer, max_batch=8, queue_limit=queue_limit)
        with httpd:
            host, port = httpd.address
            report = run_http_load(host, port, traffic, model="gandef",
                                   target_rps=target_rps,
                                   concurrency=concurrency,
                                   api_key="key", timeout=120.0)
        summary = report.summary()
        answered = report.completed + report.rejected_429
        summary["answered"] = answered
        rungs.append(summary)
        print(f"offered {target_rps:7.1f} rps -> achieved "
              f"{summary['achieved_rps']:7.1f} rps  "
              f"429s {report.rejected_429:4d}  "
              f"p50 {summary['latency_p50_ms']:8.2f}ms  "
              f"p95 {summary['latency_p95_ms']:8.2f}ms")
        if report.transport_errors:
            violations.append(
                f"rps={target_rps}: {report.transport_errors} transport "
                "errors (requests dropped or hung)")
        if answered != len(report.outcomes):
            violations.append(
                f"rps={target_rps}: {len(report.outcomes) - answered} "
                "requests neither served nor explicitly rejected")
    if not any(r["rejected_429"] for r in rungs):
        violations.append(
            "no rung produced 429s: the ladder never saturated the "
            "admission queue, so backpressure went unexercised")
    return rungs, violations


OVERHEAD_CEILING_PCT = 3.0


def overhead_phase(trainer, split, *, num_requests, concurrency,
                   slow_forward_s, trace_path, passes=3):
    """Wall-clock cost of the obs layer on a pinned-forward server.

    ``passes`` interleaved disabled/enabled pairs of identical traffic
    (spans to ``trace_path`` when enabled).  Each configuration is
    scored by its **minimum** wall clock — the standard estimator that
    strips scheduler noise, which on small shared runners can exceed
    the overhead ceiling itself — and the gate compares min to min.
    The disabled passes' spread is reported as the noise floor.
    """
    from repro import obs

    pin_forward(trainer, slow_forward_s)
    pool = split.test.images[:64]
    traffic = build_mixed_load(pool, pool, num_requests=num_requests,
                               max_request_size=2, adv_fraction=0.0,
                               seed=1)

    def one_pass(traced):
        if traced:
            obs.enable(trace=trace_path)
        else:
            obs.disable()
        try:
            httpd = build_http(trainer, max_batch=8, queue_limit=4096)
            with httpd:
                host, port = httpd.address
                report = run_http_load(host, port, traffic,
                                       model="gandef",
                                       concurrency=concurrency,
                                       api_key="key", timeout=120.0)
        finally:
            obs.disable()
        assert report.completed == num_requests, \
            f"overhead pass dropped requests: {report.summary()}"
        return report.wall_seconds

    disabled_walls, enabled_walls = [], []
    for _ in range(passes):
        disabled_walls.append(one_pass(traced=False))
        enabled_walls.append(one_pass(traced=True))
    base = min(disabled_walls)
    enabled = min(enabled_walls)
    overhead_pct = (enabled - base) / base * 100.0 if base > 0 else 0.0
    noise_pct = (max(disabled_walls) - base) / base * 100.0 \
        if base > 0 else 0.0
    result = {
        "requests": num_requests,
        "passes": passes,
        "wall_disabled_s": round(base, 4),
        "wall_enabled_s": round(enabled, 4),
        "disabled_noise_pct": round(noise_pct, 2),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "ceiling_pct": OVERHEAD_CEILING_PCT,
    }
    print(f"disabled {base:.3f}s (noise {noise_pct:.2f}%)  "
          f"enabled {enabled:.3f}s  overhead {overhead_pct:+.2f}%")
    violations = []
    if overhead_pct >= OVERHEAD_CEILING_PCT:
        violations.append(
            f"span tracing costs {overhead_pct:.2f}% wall clock, at or "
            f"above the {OVERHEAD_CEILING_PCT}% ceiling")
    return result, violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_http.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller victim / shorter sweep (smoke run)")
    args = parser.parse_args(argv)

    epochs = 3 if args.quick else 8
    train_size = 512 if args.quick else 1024
    equality_examples = 32 if args.quick else 96
    num_requests = 120 if args.quick else 400
    rps_ladder = (50, 400) if args.quick else (25, 100, 400, 1600)
    queue_limit = 8
    slow_forward_s = 0.01

    trainer, split = train_gandef(epochs, train_size)
    print("== equality: HTTP rows vs direct Server rows (max_batch=1) ==")
    equality = equality_phase(trainer, split, equality_examples)
    print(f"{equality['examples']} examples, "
          f"{equality['mismatches']} mismatches")

    print(f"== saturation: queue_limit={queue_limit}, forward floor "
          f"{slow_forward_s * 1e3:.0f}ms ==")
    rungs, violations = saturation_phase(
        trainer, split, num_requests=num_requests, rps_ladder=rps_ladder,
        queue_limit=queue_limit, concurrency=16,
        slow_forward_s=slow_forward_s)

    print(f"== observability overhead: forward floor "
          f"{slow_forward_s * 1e3:.0f}ms, ceiling "
          f"{OVERHEAD_CEILING_PCT}% ==")
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        overhead, overhead_violations = overhead_phase(
            trainer, split,
            num_requests=80 if args.quick else 200, concurrency=8,
            passes=2 if args.quick else 3,
            slow_forward_s=slow_forward_s,
            trace_path=os.path.join(tmp, "trace.jsonl"))
    violations.extend(overhead_violations)

    if not equality["bitwise_identical"]:
        violations.insert(0, f"{equality['mismatches']} HTTP rows "
                             "differed from direct Server rows")

    report = {
        "config": {"epochs": epochs, "train_size": train_size,
                   "num_requests": num_requests,
                   "rps_ladder": list(rps_ladder),
                   "queue_limit": queue_limit,
                   "concurrency": 16,
                   "forward_floor_s": slow_forward_s,
                   "adv_fraction": 0.5},
        "equality": equality,
        "saturation": rungs,
        "obs_overhead": overhead,
        "contract": "every request answered (200 or explicit 429); "
                    "zero transport errors; overload rungs push back; "
                    "span tracing under the overhead ceiling",
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"->  {args.output}")

    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
