"""E3 — regenerate Figure 5 (left, middle): training seconds per epoch.

The paper's claim: ZK-GanDef trains at FGSM-Adv-like cost, far below
PGD-Adv and PGD-GanDef (92.11% reduction vs PGD-Adv on MNIST, 51.53% on
CIFAR10), because it never generates iterative adversarial examples.
"""

import pytest

from repro.experiments import run_training_time

from conftest import run_once


@pytest.mark.benchmark(group="figure5-time")
@pytest.mark.parametrize("dataset", ["digits", "objects"])
def test_training_time(benchmark, preset, dataset):
    timings = run_once(benchmark, run_training_time, dataset,
                       preset=preset, epochs=2)
    print(f"\n[figure5:{dataset}] " + "  ".join(
        f"{k}={v:.2f}s/ep" for k, v in timings.items()))
    # Headline orderings of the left/middle sub-figures.
    assert timings["zk-gandef"] < timings["pgd-adv"]
    assert timings["zk-gandef"] < timings["pgd-gandef"]
    assert timings["fgsm-adv"] < timings["pgd-adv"]
    # The paper reports a >50% training-time reduction vs PGD-Adv with
    # 20-40 PGD iterations; the reduced presets train PGD examples with
    # only ~5 iterations, which shrinks the gap proportionally — assert
    # a >=25% saving here (the FULL preset recovers the paper's margin).
    assert timings["zk-gandef"] < 0.75 * timings["pgd-adv"]
