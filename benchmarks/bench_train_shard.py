"""Data-parallel training perf tracking: ``python benchmarks/bench_train_shard.py``.

Measures, for each CPU backend, the epoch wall-clock of a digits
classifier trained through :class:`repro.train.parallel.ParallelTrainEngine`
under ``--workers`` in {1, 2, 4}:

* ``workers=1`` runs the sharded engine in-process — the engine's own
  bit-identity baseline (the legacy eager path computes a full-batch
  gradient whose BLAS contraction order differs, so it is not the
  comparison point);
* ``workers>1`` fans each mini-batch's gradient shards over a spawn
  pool, started *before* timing (a persistent pool is the deployment
  shape — ``repro train`` holds one for the whole run) so the number
  tracks gradient computation, not interpreter startups;
* the **merged-gradient digest equality assertion runs inline**: after
  every run the sha256 over the final parameters — the integral of every
  ordered all-reduce — must match the ``workers=1`` digest exactly, or
  the bench fails.  A speedup that changes results is a bug, not a
  result.

Results land in ``BENCH_train_shard.json``.  The ≥1.7x floor at 4
workers is enforced (non-zero exit) whenever the host exposes at least 4
usable CPUs; on smaller hosts — including single-core CI sandboxes — the
measured numbers are still recorded with ``floor_enforced: false`` and
the honest reason, because process parallelism cannot beat a one-core
budget and a faked number would poison the trajectory.

Usage::

    python benchmarks/bench_train_shard.py [--output PATH] [--quick]
"""

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

import repro.backend as backend  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.defenses import VanillaTrainer  # noqa: E402
from repro.models import build_classifier  # noqa: E402
from repro.train.parallel import ParallelTrainEngine  # noqa: E402

SPEEDUP_FLOOR = 1.7
FLOOR_WORKERS = 4
WORKER_COUNTS = (1, 2, 4)
BACKENDS = ("numpy", "fast")
SHARD_SIZE = 16


def usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def param_digest(trainer):
    """sha256 over the final weights — every merged gradient's integral."""
    digest = hashlib.sha256()
    for mod in sorted(trainer.checkpoint_modules()):
        module = trainer.checkpoint_modules()[mod]
        for name, p in module.named_parameters():
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(
                backend.active().to_numpy(p.data)).tobytes())
    return digest.hexdigest()


def bench_workers(split, epochs, batch_size, workers):
    """Per-epoch wall-clock at ``workers`` (pool pre-started); returns
    (steady seconds, cold seconds, final-parameter digest)."""
    model = build_classifier("digits", width=8, seed=0)
    trainer = VanillaTrainer(model, epochs=epochs, batch_size=batch_size,
                             lr=1e-3, seed=0)
    engine = ParallelTrainEngine(trainer, workers=workers,
                                 shard_size=SHARD_SIZE).attach()
    try:
        if engine.pool is not None:
            engine.pool.ensure()        # spawn outside the timer
        history = trainer.fit(split.train)
        seconds = history.epoch_seconds
        # Epoch 0 pays the cold costs (module publication, worker-side
        # unpickling, fast-path cache fills); later epochs are what long
        # runs see.
        return float(np.mean(seconds[1:])), float(seconds[0]), \
            param_digest(trainer)
    finally:
        engine.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_train_shard.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller training set / fewer epochs (smoke)")
    args = parser.parse_args(argv)

    epochs = 2 if args.quick else 3
    train_size = 256 if args.quick else 1024
    batch_size = 64

    cpus = usable_cpus()
    floor_enforced = cpus >= FLOOR_WORKERS
    report = {
        "config": {"epochs": epochs, "train_size": train_size,
                   "batch_size": batch_size, "shard_size": SHARD_SIZE,
                   "worker_counts": list(WORKER_COUNTS),
                   "defense": "vanilla", "dataset": "digits"},
        "usable_cpus": cpus,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_workers": FLOOR_WORKERS,
        "floor_enforced": floor_enforced,
        "per_backend": {},
    }
    if not floor_enforced:
        report["floor_skip_reason"] = (
            f"host exposes {cpus} usable CPU(s); process parallelism "
            f"cannot clear {SPEEDUP_FLOOR}x at {FLOOR_WORKERS} workers "
            f"on fewer than {FLOOR_WORKERS} cores")

    failures = []
    for name in BACKENDS:
        with backend.use(name):
            split = load_split("digits", train_size, 64, seed=0)
            per_workers = {}
            baseline_digest = None
            for workers in WORKER_COUNTS:
                steady, cold, digest = bench_workers(
                    split, epochs, batch_size, workers)
                if baseline_digest is None:
                    baseline_digest = digest
                elif digest != baseline_digest:
                    failures.append(
                        f"[{name}] workers={workers} changed the merged "
                        "gradients — digest equality violated")
                per_workers[str(workers)] = {
                    "epoch_seconds": round(steady, 4),
                    "epoch_cold_seconds": round(cold, 4),
                }
            base = per_workers["1"]["epoch_seconds"]
            speedups = {w: round(base / v["epoch_seconds"], 3)
                        for w, v in per_workers.items()}
            report["per_backend"][name] = {
                "per_workers": per_workers,
                "speedup_vs_single_process": speedups,
                "gradient_digest": baseline_digest,
                "digest_equality": "verified inline",
            }
            for w, v in per_workers.items():
                print(f"[{name:5s}] workers={w}: "
                      f"{v['epoch_seconds']:7.3f}s/epoch "
                      f"(cold {v['epoch_cold_seconds']:7.3f}s)  "
                      f"speedup {speedups[w]:5.2f}x")
            if floor_enforced and \
                    speedups[str(FLOOR_WORKERS)] < SPEEDUP_FLOOR:
                failures.append(
                    f"[{name}] {speedups[str(FLOOR_WORKERS)]}x at "
                    f"{FLOOR_WORKERS} workers is below the "
                    f"{SPEEDUP_FLOOR}x floor")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    floor_word = "enforced" if floor_enforced \
        else "advisory (see floor_skip_reason)"
    print(f"floor {floor_word} -> {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
