"""Backend performance tracking: ``python benchmarks/bench_backend.py``.

Measures, for every registered CPU backend (cupy is skipped here — device
timing needs different methodology):

* **attack-suite wall-clock** — the PGD/BIM/MIM grid at the paper's
  Sec. IV-C budgets (40-iteration PGD etc.) against a briefly-trained
  digits classifier, through the batched evaluation engine,
* **training epoch wall-clock** — vanilla trainer epochs on the digits
  stand-in,
* **im2col / col2im microbenchmarks** — the conv workspace kernels in
  isolation, which is where the fast backend's buffer pool lives.

Results land in ``BENCH_backend.json`` (repo root by default) so the perf
trajectory is tracked from PR to PR; the ``speedup`` block records
reference-vs-fast ratios.  The script exits non-zero if the fast backend's
attack-suite speedup falls below the pinned floor (1.3x) so the CI bench
lane catches regressions, and cross-checks that both backends measured the
same accuracies while doing so.

Usage::

    python benchmarks/bench_backend.py [--output PATH] [--quick]
"""

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.backend as backend  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.defenses import VanillaTrainer  # noqa: E402
from repro.eval.engine import AttackSuite  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.models import build_classifier  # noqa: E402

SPEEDUP_FLOOR = 1.3
BACKENDS = ("numpy", "fast")


def train_victim(epochs, train_size, seed=0):
    split = load_split("digits", train_size, 256, seed=seed)
    model = build_classifier("digits", width=8, seed=seed)
    trainer = VanillaTrainer(model, epochs=epochs, batch_size=64, lr=1e-3,
                             seed=seed)
    start = time.perf_counter()
    trainer.fit(split.train)
    seconds = time.perf_counter() - start
    return model, split, seconds / epochs


def bench_attack_suite(model, split, eval_size):
    cfg = get_config("fast").dataset("digits")
    # Paper budgets: fast=False keeps the full Sec. IV-C iteration counts.
    pool = cfg.budget.build(fast=False, seed=0, early_stop=True)
    from repro.attacks import MIM

    attacks = {"pgd": pool["pgd"], "bim": pool["bim"],
               "mim": MIM(eps=cfg.budget.eps, step=pool["bim"].step,
                          iterations=pool["bim"].iterations,
                          early_stop=True)}
    suite = AttackSuite(attacks)
    images = split.test.images[:eval_size]
    labels = split.test.labels[:eval_size]
    # Three identical seeded runs: the first is the cold number, the last
    # is steady state — the attacks are deterministic, so run N+1 replays
    # run N's shapes and the fast backend's verify-then-trust caches are
    # warm from the second replay on (the grid workloads this tracks run
    # the suite once per defense x dataset cell against recurring shapes).
    runs = []
    accuracy = None
    for _ in range(3):
        result = suite.run(model, images, labels, model_name="vanilla",
                           dataset="digits")
        runs.append(result.generation_seconds)
        assert accuracy is None or accuracy == result.accuracy
        accuracy = result.accuracy
    return runs[-1], runs[0], accuracy


def bench_im2col(repeats):
    b = backend.active()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 8, 28, 28)).astype(np.float32)
    cols_shape = None
    # warmup (also fills the fast backend's pool)
    cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
    cols_shape = cols.shape
    b.release(cols)
    start = time.perf_counter()
    for _ in range(repeats):
        cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
        b.release(cols)
    im2col_s = (time.perf_counter() - start) / repeats

    cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
    start = time.perf_counter()
    for _ in range(repeats):
        b.col2im(cols, x.shape, 5, 5, 1, 1, 2, 2)
    col2im_s = (time.perf_counter() - start) / repeats
    b.release(cols)
    return im2col_s, col2im_s, cols_shape


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_backend.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller victim / fewer repeats (smoke run)")
    args = parser.parse_args(argv)

    epochs = 2 if args.quick else 4
    train_size = 512 if args.quick else 1024
    eval_size = 32 if args.quick else 64
    repeats = 10 if args.quick else 30

    report = {"config": {"epochs": epochs, "train_size": train_size,
                         "eval_size": eval_size, "im2col_repeats": repeats,
                         "attack_budgets": "paper (Sec. IV-C)"},
              "per_backend": {}}
    accuracies = {}
    for name in BACKENDS:
        with backend.use(name):
            model, split, epoch_s = train_victim(epochs, train_size)
            suite_s, cold_s, accuracy = bench_attack_suite(model, split,
                                                           eval_size)
            im2col_s, col2im_s, cols_shape = bench_im2col(repeats)
        accuracies[name] = accuracy
        report["per_backend"][name] = {
            "attack_suite_seconds": round(suite_s, 4),
            "attack_suite_cold_seconds": round(cold_s, 4),
            "epoch_seconds": round(epoch_s, 4),
            "im2col_seconds": round(im2col_s, 6),
            "col2im_seconds": round(col2im_s, 6),
            "im2col_workspace": list(cols_shape),
        }
        print(f"[{name:5s}] attack-suite {suite_s:7.3f}s "
              f"(cold {cold_s:6.3f}s)   epoch {epoch_s:6.3f}s   "
              f"im2col {im2col_s * 1e3:6.2f}ms   "
              f"col2im {col2im_s * 1e3:6.2f}ms")

    ref = report["per_backend"]["numpy"]
    fast = report["per_backend"]["fast"]
    report["speedup"] = {
        key.replace("_seconds", ""): round(ref[key] / fast[key], 3)
        for key in ("attack_suite_seconds", "epoch_seconds",
                    "im2col_seconds", "col2im_seconds")
    }
    report["speedup_floor"] = SPEEDUP_FLOOR
    report["accuracies_identical"] = accuracies["numpy"] == accuracies["fast"]

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"speedups {report['speedup']}  ->  {args.output}")

    failures = []
    if not report["accuracies_identical"]:
        failures.append(
            f"backend accuracy mismatch: {accuracies}")
    if report["speedup"]["attack_suite"] < SPEEDUP_FLOOR:
        failures.append(
            f"attack-suite speedup {report['speedup']['attack_suite']} "
            f"below the {SPEEDUP_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
