"""Backend performance tracking: ``python benchmarks/bench_backend.py``.

Measures, for every registered CPU backend (cupy is skipped here — device
timing needs different methodology):

* **attack-suite wall-clock** — the PGD/BIM/MIM grid at the paper's
  Sec. IV-C budgets (40-iteration PGD etc.) against a briefly-trained
  digits classifier, through the batched evaluation engine,
* **hot-loop wall-clock** — naive (``early_stop=False``) PGD/BIM/MIM on
  one fixed-shape batch, where every iteration is a same-shape gradient
  call,
* **training epoch wall-clock** — vanilla trainer epochs on the digits
  stand-in,
* **im2col / col2im microbenchmarks** — the conv workspace kernels in
  isolation, which is where the fast backend's buffer pool lives.

Results land in ``BENCH_backend.json`` (repo root by default) so the perf
trajectory is tracked from PR to PR; the ``speedup`` block records
reference-vs-fast ratios and the ``speedup_compiled`` block records the
compiled backend's cold-trace and steady-state ratios against the fast
backend (capture cost and replay payoff are different claims, so they are
reported separately).

The compiled floor is enforced on the **hot loop**, not the early-stop
suite: graph capture eliminates per-iteration fixed costs (tape
construction, closure dispatch, allocator traffic), so its payoff lives
where those costs dominate — the fixed-shape gradient loop the plan was
traced for, at a batch size small enough that BLAS/fold kernel time (a
cost replay shares bit-for-bit with eager, by the parity contract) does
not drown the eliminated overhead.  The early-stop suite spends most of
its wall-clock in forward-only success probes and per-sample attack
bookkeeping that replay by design cannot touch; its compiled ratio is
reported for honesty but not gated.

The script exits non-zero if the fast backend's attack-suite speedup
falls below the pinned floor (1.3x) or the compiled backend's
*steady-state* hot-loop speedup over fast falls below its own floor
(1.5x), so the CI bench lane catches regressions; it also cross-checks
that every backend measured identical accuracies and byte-identical
adversarial examples.

Usage::

    python benchmarks/bench_backend.py [--output PATH] [--quick]
"""

import argparse
import hashlib
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.backend as backend  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.defenses import VanillaTrainer  # noqa: E402
from repro.eval.engine import AttackSuite  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.models import build_classifier  # noqa: E402

SPEEDUP_FLOOR = 1.3
#: Steady-state compiled-vs-fast floor on the fixed-shape hot loop:
#: replaying a captured plan must beat eager pooled execution by at
#: least this much (see the module docstring for why the hot loop, not
#: the early-stop suite, is the gated workload).
COMPILED_STEADY_FLOOR = 1.5
#: Hot-loop batch size.  Capture/replay eliminates per-iteration fixed
#: costs; the kernels themselves are bit-for-bit the eager ones, so the
#: payoff is largest where fixed costs are the biggest slice of an
#: iteration — small batches.  Large batches are BLAS/fold-bound on both
#: backends and converge toward 1x.
HOT_LOOP_BATCH = 2
BACKENDS = ("numpy", "fast", "compiled")


def train_victim(epochs, train_size, seed=0):
    split = load_split("digits", train_size, 256, seed=seed)
    model = build_classifier("digits", width=8, seed=seed)
    trainer = VanillaTrainer(model, epochs=epochs, batch_size=64, lr=1e-3,
                             seed=seed)
    start = time.perf_counter()
    trainer.fit(split.train)
    seconds = time.perf_counter() - start
    return model, split, seconds / epochs


def bench_attack_suite(model, split, eval_size):
    cfg = get_config("fast").dataset("digits")
    # Paper budgets: fast=False keeps the full Sec. IV-C iteration counts.
    pool = cfg.budget.build(fast=False, seed=0, early_stop=True)
    from repro.attacks import MIM

    attacks = {"pgd": pool["pgd"], "bim": pool["bim"],
               "mim": MIM(eps=cfg.budget.eps, step=pool["bim"].step,
                          iterations=pool["bim"].iterations,
                          early_stop=True)}
    suite = AttackSuite(attacks)
    images = split.test.images[:eval_size]
    labels = split.test.labels[:eval_size]
    # Three identical seeded runs: the first is the cold number, the last
    # is steady state — the attacks are deterministic, so run N+1 replays
    # run N's shapes and the fast backend's verify-then-trust caches are
    # warm from the second replay on (the grid workloads this tracks run
    # the suite once per defense x dataset cell against recurring shapes).
    runs = []
    accuracy = None
    for _ in range(3):
        result = suite.run(model, images, labels, model_name="vanilla",
                           dataset="digits")
        runs.append(result.generation_seconds)
        assert accuracy is None or accuracy == result.accuracy
        accuracy = result.accuracy
    return runs[-1], runs[0], accuracy


def bench_hot_loop(model, split, batch, repeats):
    """Naive fixed-shape PGD/BIM/MIM: the workload plan replay targets.

    With ``early_stop=False`` every iteration of every attack is a
    same-shape ``logits_and_input_grad`` call — trace once, replay for
    the rest.  The first ``generate`` per attack is the cold number
    (includes the capture run); steady state is the best of ``repeats``
    further runs.  Returns per-attack steady/cold seconds plus a digest
    of the adversarial batches so the caller can assert byte-identical
    outputs across backends.
    """
    cfg = get_config("fast").dataset("digits")
    pool = cfg.budget.build(fast=False, seed=0, early_stop=False)
    from repro.attacks import MIM

    attacks = {"pgd": pool["pgd"], "bim": pool["bim"],
               "mim": MIM(eps=cfg.budget.eps, step=pool["bim"].step,
                          iterations=pool["bim"].iterations,
                          early_stop=False)}
    images = split.test.images[:batch]
    labels = split.test.labels[:batch]
    steady, cold, digests = {}, {}, {}
    for name, attack in attacks.items():
        start = time.perf_counter()
        adv = attack.generate(model, images, labels)
        cold[name] = time.perf_counter() - start
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            adv = attack.generate(model, images, labels)
            best = min(best, time.perf_counter() - start)
        steady[name] = best
        digests[name] = hashlib.sha256(adv.tobytes()).hexdigest()
    return steady, cold, digests


def bench_im2col(repeats):
    b = backend.active()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 8, 28, 28)).astype(np.float32)
    cols_shape = None
    # warmup (also fills the fast backend's pool)
    cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
    cols_shape = cols.shape
    b.release(cols)
    start = time.perf_counter()
    for _ in range(repeats):
        cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
        b.release(cols)
    im2col_s = (time.perf_counter() - start) / repeats

    cols = b.im2col(x, 5, 5, 1, 1, 2, 2)
    start = time.perf_counter()
    for _ in range(repeats):
        b.col2im(cols, x.shape, 5, 5, 1, 1, 2, 2)
    col2im_s = (time.perf_counter() - start) / repeats
    b.release(cols)
    return im2col_s, col2im_s, cols_shape


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_backend.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller victim / fewer repeats (smoke run)")
    args = parser.parse_args(argv)

    epochs = 2 if args.quick else 4
    train_size = 512 if args.quick else 1024
    eval_size = 32 if args.quick else 64
    repeats = 10 if args.quick else 30
    hot_repeats = 2 if args.quick else 4

    report = {"config": {"epochs": epochs, "train_size": train_size,
                         "eval_size": eval_size, "im2col_repeats": repeats,
                         "hot_loop_batch": HOT_LOOP_BATCH,
                         "hot_loop_repeats": hot_repeats,
                         "attack_budgets": "paper (Sec. IV-C)"},
              "per_backend": {}}
    accuracies = {}
    adv_digests = {}
    for name in BACKENDS:
        with backend.use(name):
            model, split, epoch_s = train_victim(epochs, train_size)
            suite_s, cold_s, accuracy = bench_attack_suite(model, split,
                                                           eval_size)
            hot_s, hot_cold_s, digests = bench_hot_loop(
                model, split, HOT_LOOP_BATCH, hot_repeats)
            im2col_s, col2im_s, cols_shape = bench_im2col(repeats)
        accuracies[name] = accuracy
        adv_digests[name] = digests
        report["per_backend"][name] = {
            "attack_suite_seconds": round(suite_s, 4),
            "attack_suite_cold_seconds": round(cold_s, 4),
            "hot_loop_seconds": {k: round(v, 4) for k, v in hot_s.items()},
            "hot_loop_cold_seconds": {k: round(v, 4)
                                      for k, v in hot_cold_s.items()},
            "hot_loop_total_seconds": round(sum(hot_s.values()), 4),
            "adversarial_digests": digests,
            "epoch_seconds": round(epoch_s, 4),
            "im2col_seconds": round(im2col_s, 6),
            "col2im_seconds": round(col2im_s, 6),
            "im2col_workspace": list(cols_shape),
        }
        print(f"[{name:5s}] attack-suite {suite_s:7.3f}s "
              f"(cold {cold_s:6.3f}s)   "
              f"hot-loop {sum(hot_s.values()) * 1e3:7.1f}ms   "
              f"epoch {epoch_s:6.3f}s   "
              f"im2col {im2col_s * 1e3:6.2f}ms   "
              f"col2im {col2im_s * 1e3:6.2f}ms")

    ref = report["per_backend"]["numpy"]
    fast = report["per_backend"]["fast"]
    compiled = report["per_backend"]["compiled"]
    report["speedup"] = {
        key.replace("_seconds", ""): round(ref[key] / fast[key], 3)
        for key in ("attack_suite_seconds", "hot_loop_total_seconds",
                    "epoch_seconds", "im2col_seconds", "col2im_seconds")
    }
    # Capture cost vs replay payoff, reported separately: the cold number
    # includes every trace the run provokes, the steady number is pure
    # replay over warm plans.  ``hot_loop_steady`` is the gated claim;
    # the early-stop suite ratios are informational (see docstring).
    report["speedup_compiled"] = {
        "hot_loop_steady": round(
            fast["hot_loop_total_seconds"]
            / compiled["hot_loop_total_seconds"], 3),
        "hot_loop_cold": round(
            sum(fast["hot_loop_cold_seconds"].values())
            / sum(compiled["hot_loop_cold_seconds"].values()), 3),
        "hot_loop_steady_vs_numpy": round(
            ref["hot_loop_total_seconds"]
            / compiled["hot_loop_total_seconds"], 3),
        "hot_loop_per_attack_steady": {
            k: round(fast["hot_loop_seconds"][k]
                     / compiled["hot_loop_seconds"][k], 3)
            for k in fast["hot_loop_seconds"]},
        "attack_suite_steady": round(
            fast["attack_suite_seconds"]
            / compiled["attack_suite_seconds"], 3),
        "attack_suite_cold": round(
            fast["attack_suite_cold_seconds"]
            / compiled["attack_suite_cold_seconds"], 3),
        "attack_suite_steady_vs_numpy": round(
            ref["attack_suite_seconds"]
            / compiled["attack_suite_seconds"], 3),
    }
    report["speedup_floor"] = SPEEDUP_FLOOR
    report["compiled_steady_floor"] = COMPILED_STEADY_FLOOR
    report["accuracies_identical"] = all(
        accuracies[name] == accuracies["numpy"] for name in BACKENDS)
    report["adversarial_identical"] = all(
        adv_digests[name] == adv_digests["numpy"] for name in BACKENDS)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"speedups {report['speedup']}  "
          f"compiled {report['speedup_compiled']}  ->  {args.output}")

    failures = []
    if not report["accuracies_identical"]:
        failures.append(
            f"backend accuracy mismatch: {accuracies}")
    if not report["adversarial_identical"]:
        failures.append(
            f"hot-loop adversarial outputs differ across backends: "
            f"{adv_digests}")
    if report["speedup"]["attack_suite"] < SPEEDUP_FLOOR:
        failures.append(
            f"attack-suite speedup {report['speedup']['attack_suite']} "
            f"below the {SPEEDUP_FLOOR}x floor")
    steady = report["speedup_compiled"]["hot_loop_steady"]
    if steady < COMPILED_STEADY_FLOOR:
        failures.append(
            f"compiled steady-state hot-loop speedup {steady} over "
            f"fast below the {COMPILED_STEADY_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
