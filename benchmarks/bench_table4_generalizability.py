"""E2 — regenerate Table IV (ZK-GanDef vs DeepFool and CW examples)."""

import pytest

from repro.experiments import run_table4

from conftest import run_once


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("dataset", ["digits", "fashion", "objects"])
def test_table4(benchmark, preset, dataset):
    result = run_once(benchmark, run_table4, dataset, preset=preset)
    row = "  ".join(f"{k}={v * 100:.2f}%" for k, v in
                    result.accuracy.items())
    print(f"\n[table4:{dataset}] zk-gandef  {row}")
    # Shape that survives the substrate change: ZK-GanDef keeps usable
    # clean accuracy and is not reduced to zero by CW examples it never
    # trained against.  (The paper's DeepFool-is-easier ordering does NOT
    # reproduce here — our exact-gradient DeepFool converges fully; see
    # EXPERIMENTS.md E2 for the analysis.)
    assert result.accuracy["original"] > 0.5
    assert result.accuracy["cw"] > 0.15
