"""Serving performance tracking: ``python benchmarks/bench_serve.py``.

Measures, for every registered CPU backend, the serving subsystem under
a seeded synthetic load mixing clean and PGD traffic (the production
shape the ROADMAP targets):

* **throughput and p50/p95 latency vs. batch size** — the same request
  stream served one-request-at-a-time (``max_batch=1``, the no-batching
  baseline) and through micro-batching at paper-scale batch sizes;
* **the discriminator gate's filter quality** — detection rate on PGD
  traffic and false-positive rate on clean traffic for a ZK-GanDef
  checkpoint's Table II discriminator, through the full serve path.

Results land in ``BENCH_serve.json`` so the trajectory is comparable
across commits.  The script exits non-zero if micro-batched throughput
falls below the pinned **2x** floor over the one-at-a-time baseline at
the largest measured batch size on any backend.

Usage::

    python benchmarks/bench_serve.py [--output PATH] [--quick]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.backend as backend  # noqa: E402
from repro.data import load_split  # noqa: E402
from repro.experiments.config import get_config  # noqa: E402
from repro.experiments.runners import build_trainer  # noqa: E402
from repro.serve import (  # noqa: E402
    ModelRegistry,
    Server,
    build_mixed_load,
    craft_adversarial_pool,
    run_load,
)

SPEEDUP_FLOOR = 2.0
BACKENDS = ("numpy", "fast")


def train_gandef(epochs, train_size, seed=0):
    """A briefly-trained ZK-GanDef victim (classifier + discriminator)."""
    split = load_split("digits", train_size, 256, seed=seed)
    cfg = get_config("fast").dataset("digits")
    trainer = build_trainer("zk-gandef", cfg, seed=seed)
    trainer.epochs = epochs
    trainer.fit(split.train)
    return trainer, split


def serve_load(trainer, traffic, max_batch, backend_name):
    """One measured pass of ``traffic`` at ``max_batch``."""
    registry = ModelRegistry()
    registry.add("gandef", trainer.model,
                 discriminator=trainer.discriminator,
                 backend=backend_name)
    server = Server(registry, max_batch=max_batch, deadline_ms=5.0,
                    gate="disc", cache=None)
    report = run_load(server, "gandef", traffic,
                      pump_every=max(1, max_batch))
    return report, server


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_serve.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--quick", action="store_true",
                        help="smaller victim / shorter load (smoke run)")
    args = parser.parse_args(argv)

    epochs = 3 if args.quick else 8
    train_size = 512 if args.quick else 1024
    pool_size = 64 if args.quick else 96
    num_requests = 128 if args.quick else 512
    batch_sizes = (1, 16, 64)   # 1 is the no-batching baseline

    report = {"config": {"epochs": epochs, "train_size": train_size,
                         "pool_size": pool_size,
                         "num_requests": num_requests,
                         "batch_sizes": list(batch_sizes),
                         "adv_fraction": 0.5,
                         "attack": "pgd (paper Sec. IV-C budget)"},
              "per_backend": {}}
    failures = []
    for name in BACKENDS:
        with backend.use(name):
            trainer, split = train_gandef(epochs, train_size)
            images = split.test.images[:pool_size]
            labels = split.test.labels[:pool_size]
            budget = get_config("fast").dataset("digits").budget
            attack = budget.build(fast=False, seed=0)["pgd"]
            start = time.perf_counter()
            adv_pool = craft_adversarial_pool(trainer.model, images,
                                              labels, attack)
            craft_s = time.perf_counter() - start
            traffic = build_mixed_load(images, adv_pool,
                                       num_requests=num_requests,
                                       max_request_size=4,
                                       adv_fraction=0.5, seed=0)
            rows = {}
            for max_batch in batch_sizes:
                load, server = serve_load(trainer, traffic, max_batch, name)
                stats = server.stats
                rows[str(max_batch)] = {
                    "throughput_eps": round(load.throughput, 1),
                    "latency_p50_ms": round(
                        stats.latency_percentile(50) * 1e3, 3),
                    "latency_p95_ms": round(
                        stats.latency_percentile(95) * 1e3, 3),
                    "mean_batch_size": round(stats.mean_batch_size, 2),
                    "batches": stats.batches,
                }
                print(f"[{name:5s}] max_batch={max_batch:3d}  "
                      f"{load.throughput:9.1f} ex/s  "
                      f"p50 {rows[str(max_batch)]['latency_p50_ms']:7.3f}ms  "
                      f"p95 {rows[str(max_batch)]['latency_p95_ms']:7.3f}ms")
            # Gate quality from the loop's final (largest-batch) pass:
            # the load is deterministic, so re-serving it would produce
            # the identical metrics at an extra full pass of cost.
            gate = load.gate_metrics
            baseline = rows[str(batch_sizes[0])]["throughput_eps"]
            best = rows[str(batch_sizes[-1])]["throughput_eps"]
            speedup = best / baseline if baseline else 0.0
            report["per_backend"][name] = {
                "by_batch_size": rows,
                "pgd_craft_seconds": round(craft_s, 3),
                "batching_speedup": round(speedup, 3),
                "gate": {
                    "kind": "disc",
                    "detection_rate": round(gate.detection_rate, 4),
                    "false_positive_rate": round(
                        gate.false_positive_rate, 4),
                    "threshold": gate.threshold,
                    "adv_examples": gate.adversarial_examples,
                    "clean_examples": gate.clean_examples,
                },
            }
            print(f"[{name:5s}] batching speedup {speedup:5.2f}x   "
                  f"gate: {gate}")
            if speedup < SPEEDUP_FLOOR:
                failures.append(
                    f"{name}: micro-batched throughput {speedup:.2f}x "
                    f"baseline, below the {SPEEDUP_FLOOR}x floor")

    # Observability overhead on the in-process serve loop, recorded for
    # trajectory (not gated here — bench_http gates it on a server with
    # a pinned forward cost; this unpinned number is hardware-noisy).
    import tempfile

    from repro import obs

    obs.disable()
    base_load, _ = serve_load(trainer, traffic, batch_sizes[-1], name)
    with tempfile.TemporaryDirectory() as tmp:
        obs.enable(trace=os.path.join(tmp, "trace.jsonl"))
        try:
            traced_load, _ = serve_load(trainer, traffic,
                                        batch_sizes[-1], name)
        finally:
            obs.disable()
    base_wall = base_load.wall_seconds
    overhead_pct = (traced_load.wall_seconds - base_wall) / base_wall \
        * 100.0 if base_wall > 0 else 0.0
    report["obs_overhead"] = {
        "backend": name,
        "max_batch": batch_sizes[-1],
        "wall_disabled_s": round(base_wall, 4),
        "wall_enabled_s": round(traced_load.wall_seconds, 4),
        "enabled_overhead_pct": round(overhead_pct, 2),
    }
    print(f"obs overhead [{name}]: disabled {base_wall:.3f}s  enabled "
          f"{traced_load.wall_seconds:.3f}s  ({overhead_pct:+.2f}%)")

    report["speedup_floor"] = SPEEDUP_FLOOR
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"->  {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
