"""Deterministic random-number streams.

Every stochastic component (dataset generator, initializer, dropout mask,
Gaussian augmentation, PGD restart) derives its own ``np.random.Generator``
from a root seed plus a string tag, so experiments are reproducible and
components never share a stream.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed: int, tag: str = "") -> np.random.Generator:
    """Derive an independent generator from ``(seed, tag)``."""
    digest = hashlib.sha256(f"{seed}:{tag}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def spawn_rngs(seed: int, *tags: str) -> List[np.random.Generator]:
    """Derive one generator per tag."""
    return [derive_rng(seed, tag) for tag in tags]
