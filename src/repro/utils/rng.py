"""Deterministic random-number streams.

Every stochastic component (dataset generator, initializer, dropout mask,
Gaussian augmentation, PGD restart) derives its own ``np.random.Generator``
from a root seed plus a string tag, so experiments are reproducible and
components never share a stream.

Derivation is delegated to the active array backend
(:meth:`repro.backend.base.ArrayOps.derive_rng`); every shipped backend
returns the same host-side PCG64 stream for a given ``(seed, tag)`` — that
shared-stream contract is what makes seeded runs comparable (and, for the
two CPU backends, bit-identical) *across* backends.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import backend as _backend

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed: int, tag: str = "") -> np.random.Generator:
    """Derive an independent generator from ``(seed, tag)``."""
    return _backend.active().derive_rng(seed, tag)


def spawn_rngs(seed: int, *tags: str) -> List[np.random.Generator]:
    """Derive one generator per tag."""
    return [derive_rng(seed, tag) for tag in tags]
