"""Wall-clock measurement used for the Figure 5 training-time experiment."""

from __future__ import annotations

import time
from typing import List

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulates lap times (one lap per training epoch in the trainers)."""

    def __init__(self) -> None:
        self.laps: List[float] = []
        self._start: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._start
        self.laps.append(elapsed)
        self._start = now
        return elapsed

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return self.total / len(self.laps) if self.laps else 0.0
