"""Wall-clock measurement used for the Figure 5 training-time experiment."""

from __future__ import annotations

import time
from typing import Callable, List, Optional

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulates lap times (one lap per training epoch in the trainers).

    Pass ``clock`` to drive the watch from a fake clock in tests; it
    defaults to ``time.perf_counter`` like every other timing seam.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock or time.perf_counter
        self.laps: List[float] = []
        self._start: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = self.clock()
        return self

    def lap(self) -> float:
        now = self.clock()
        elapsed = now - self._start
        self.laps.append(elapsed)
        self._start = now
        return elapsed

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return self.total / len(self.laps) if self.laps else 0.0
