"""Shared utilities: seeded RNG streams, timers, ASCII rendering."""

from .rng import derive_rng, spawn_rngs
from .timing import Stopwatch
from .render import ascii_image

__all__ = ["derive_rng", "spawn_rngs", "Stopwatch", "ascii_image"]
