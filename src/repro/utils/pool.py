"""Spawn-pool and deterministic-shard machinery shared by the sharded
evaluation engine (:mod:`repro.eval.shard`) and the data-parallel training
engine (:mod:`repro.train.parallel`).

The two subsystems fan different work out — (attack, shard) crafting cells
versus per-shard gradient computations — but the parallel substrate is the
same and lives here exactly once:

* :func:`plan_shards` — the deterministic contiguous layout.  It depends
  only on the batch size and ``shard_size``, never on the worker count,
  which is the first half of the bit-identity guarantee both engines pin:
  running with 1, 2 or 16 workers schedules the *same* computation.
* :class:`SpawnPool` — a persistent **spawn**-started worker pool (fork is
  unsafe under threads and unavailable on some platforms), pinned to the
  backend active at first use and respawned if a later call runs under a
  different one.  One pool can serve both engines at once: tasks carry
  their own module-level worker function, and the shared
  :data:`WORKER_STATE` dict namespaces each engine's per-worker memos.
* :class:`BlobDepot` — refcounted publication of pickled payloads (victim
  models, trainer module sets) to temp files, so weights ride the page
  cache once per run instead of the task pipe once per task.

The ``repro`` package must be importable in a fresh interpreter
(``PYTHONPATH=src`` or an installed package), and pool owners should
``close()`` when done — the engines and runners do.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import backend as _backend

__all__ = ["Shard", "plan_shards", "SpawnPool", "BlobDepot",
           "WORKER_STATE", "blob_fingerprint", "DEFAULT_SHARD_SIZE"]

#: Default rows per shard when an eval-side caller does not pin
#: ``shard_size``.  Chosen so typical eval batches (96-10000 rows) split
#: into enough shards to feed several workers while each shard still
#: amortizes its forward-pass and IPC overhead.  Training uses its own,
#: smaller default (:data:`repro.train.parallel.DEFAULT_TRAIN_SHARD_SIZE`)
#: because its unit of work is one mini-batch, not one test set.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """One contiguous row range ``[start, stop)`` of a ``total``-row batch."""

    index: int
    start: int
    stop: int
    total: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def plan_shards(n: int, shard_size: Optional[int] = None) -> List[Shard]:
    """Deterministic contiguous partition of ``n`` rows.

    The last shard is ragged when ``shard_size`` does not divide ``n``;
    a ``shard_size >= n`` (including the ``workers > num_examples``
    degenerate case upstream) yields a single full shard.
    """
    if n <= 0:
        raise ValueError(f"cannot shard an empty batch (n={n})")
    size = DEFAULT_SHARD_SIZE if shard_size is None else int(shard_size)
    if size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [Shard(index=i, start=start, stop=min(start + size, n), total=n)
            for i, start in enumerate(range(0, n, size))]


# --------------------------------------------------------------------- #
# worker-process side
# --------------------------------------------------------------------- #
#: Per-worker memoization namespace.  Spawned workers keep loaded models,
#: trainer module sets and cache handles here between tasks; the pool
#: initializer clears it so a respawned pool never serves stale state.
#: Engines namespace their keys (``"eval-..."`` / ``"train-..."``) so one
#: pool can interleave both kinds of work.
WORKER_STATE: Dict[str, Any] = {}


def _init_worker(backend_name: str) -> None:
    """Pool initializer: pin the parent's active backend in the child."""
    _backend.use(backend_name)
    WORKER_STATE.clear()


class SpawnPool:
    """A lazily-started, backend-pinned, persistent spawn pool.

    The pool is created under the backend active at first use
    (:meth:`ensure`) and respawned if a later call runs under a different
    backend — worker processes pin their backend once at initialization,
    so a backend switch in the parent must recycle them.  Instances are
    shareable: the training engine and an :class:`~repro.eval.engine.AttackSuite`
    can drive the *same* pool (tasks carry their own worker functions),
    which is how ``repro train --workers N`` overlaps async robustness
    probes with epoch training without spawning a second pool.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool = None
        self._pool_backend: Optional[str] = None

    def ensure(self):
        """The live ``multiprocessing`` pool, (re)spawned as needed."""
        import multiprocessing

        backend_name = _backend.active().name
        if self._pool is not None and self._pool_backend != backend_name:
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(self.workers, initializer=_init_worker,
                                  initargs=(backend_name,))
            self._pool_backend = backend_name
        return self._pool

    def imap(self, fn, tasks):
        """Ordered streaming map — outcomes yield in task order."""
        return self.ensure().imap(fn, tasks)

    def map_async(self, fn, tasks):
        """Submit without blocking; returns the pool's ``AsyncResult``."""
        return self.ensure().map_async(fn, tasks)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_backend = None

    def __enter__(self) -> "SpawnPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass


class BlobDepot:
    """Refcounted temp-file publication of pickled payloads.

    One blob per fingerprint on disk (page-cached for the workers)
    instead of one copy per task through the pool pipe.  Acquire/release
    are refcounted so overlapping runs (async probes against successive
    weight snapshots) keep exactly the blobs still in flight.
    """

    def __init__(self, prefix: str = "repro-blob-") -> None:
        self.prefix = prefix
        self._entries: Dict[str, list] = {}   # fingerprint -> [path, refs]

    def acquire(self, blob: bytes, fingerprint: str) -> str:
        """Publish ``blob`` (or bump its refcount); returns the path."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            fd, path = tempfile.mkstemp(
                prefix=f"{self.prefix}{fingerprint[:12]}-", suffix=".pkl")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            entry = self._entries[fingerprint] = [path, 0]
        entry[1] += 1
        return entry[0]

    def release(self, fingerprint: str) -> None:
        """Drop one reference; unlink the file at zero."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            try:
                os.unlink(entry[0])
            except OSError:
                pass
            del self._entries[fingerprint]

    def clear(self) -> None:
        """Unlink every published blob regardless of refcounts."""
        for path, _ in self._entries.values():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._entries.clear()


def blob_fingerprint(blob: bytes) -> str:
    """Cheap worker-memoization key for a pickled payload."""
    return hashlib.sha256(blob).hexdigest()
