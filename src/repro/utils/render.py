"""Tiny ASCII renderer so the examples can show images in a terminal."""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_image"]

_RAMP = " .:-=+*#%@"


def ascii_image(image: np.ndarray, width: int = 28) -> str:
    """Render a CHW or HW image in ``[-1, 1]`` as ASCII art.

    Color images are converted to luminance first.
    """
    arr = np.asarray(image, dtype=np.float32)
    if arr.ndim == 3:  # CHW -> HW luminance
        arr = arr.mean(axis=0)
    if arr.ndim != 2:
        raise ValueError(f"expected HW or CHW image, got shape {arr.shape}")
    # Map [-1, 1] -> [0, 1]
    arr = np.clip((arr + 1.0) / 2.0, 0.0, 1.0)
    if arr.shape[1] != width:
        step = max(1, arr.shape[1] // width)
        arr = arr[::step, ::step]
    idx = (arr * (len(_RAMP) - 1)).astype(int)
    rows = ["".join(_RAMP[i] for i in row) for row in idx]
    return "\n".join(rows)
