"""``repro obs report`` — aggregate a trace JSONL into a per-stage
latency/throughput report.

The trace is the span stream :mod:`repro.obs.trace` writes (possibly
interleaved from several SO_REUSEPORT worker processes); the report
groups spans by ``name`` and prints count, total time, mean and
nearest-rank p50/p95/p99 per stage, plus end-to-end request throughput
derived from the ``http.request`` / ``serve.request`` spans.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Union

import numpy as np

__all__ = ["aggregate_trace", "format_report", "load_spans", "run_obs_cli"]

#: Span names that represent one completed end-to-end request; the first
#: one present in the trace drives the throughput figures.
REQUEST_SPANS = ("http.request", "serve.request")


def load_spans(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Read span records, skipping blank/corrupt lines and non-span
    kinds (a shared file may also carry ``metrics`` snapshots)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("kind") == "span":
                spans.append(record)
    return spans


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q, method="nearest"))


def aggregate_trace(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Group spans by name into per-stage latency stats + throughput."""
    stages: Dict[str, List[float]] = {}
    ts_min = ts_max = None
    for span in spans:
        name = span.get("name")
        dur = span.get("dur_s")
        if not isinstance(name, str) or not isinstance(dur, (int, float)):
            continue
        stages.setdefault(name, []).append(float(dur))
        ts = span.get("ts")
        if isinstance(ts, (int, float)):
            ts_min = ts if ts_min is None else min(ts_min, ts)
            ts_max = ts if ts_max is None else max(ts_max, ts)

    stage_stats: Dict[str, Dict[str, float]] = {}
    for name, durs in stages.items():
        arr = np.asarray(durs, dtype=np.float64)
        stage_stats[name] = {
            "count": int(arr.size),
            "total_s": float(arr.sum()),
            "mean_ms": float(arr.mean()) * 1e3,
            "p50_ms": _percentile(arr, 50) * 1e3,
            "p95_ms": _percentile(arr, 95) * 1e3,
            "p99_ms": _percentile(arr, 99) * 1e3,
        }

    window_s = (ts_max - ts_min) if ts_min is not None else 0.0
    throughput: Dict[str, Any] = {}
    for name in REQUEST_SPANS:
        if name in stage_stats:
            n = stage_stats[name]["count"]
            throughput = {
                "request_span": name,
                "requests": n,
                "requests_per_s": (n / window_s) if window_s > 0 else 0.0,
            }
            break

    return {
        "spans": len(spans),
        "window_s": window_s,
        "stages": stage_stats,
        "throughput": throughput,
    }


def format_report(agg: Dict[str, Any]) -> str:
    """Human-readable per-stage table for one aggregated trace."""
    lines = [f"spans: {agg['spans']}   window: {agg['window_s']:.3f}s"]
    tp = agg.get("throughput") or {}
    if tp:
        lines.append(
            f"requests: {tp['requests']} ({tp['request_span']})   "
            f"throughput: {tp['requests_per_s']:.1f} req/s")
    stages = agg.get("stages") or {}
    if stages:
        header = (f"{'stage':<24} {'count':>8} {'total_s':>9} "
                  f"{'mean_ms':>9} {'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}")
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(stages):
            s = stages[name]
            lines.append(
                f"{name:<24} {s['count']:>8d} {s['total_s']:>9.3f} "
                f"{s['mean_ms']:>9.3f} {s['p50_ms']:>9.3f} "
                f"{s['p95_ms']:>9.3f} {s['p99_ms']:>9.3f}")
    else:
        lines.append("no spans found")
    return "\n".join(lines)


def run_obs_cli(argv: List[str]) -> int:
    """``repro obs report <trace.jsonl>`` entry point."""
    usage = "usage: repro obs report <trace.jsonl>"
    if not argv:
        print(usage)
        return 2
    command, rest = argv[0], argv[1:]
    if command != "report" or len(rest) != 1:
        print(f"unknown obs invocation: {' '.join(argv)!r}\n{usage}")
        return 2
    path = rest[0]
    if not os.path.exists(path):
        print(f"trace file not found: {path}")
        return 2
    spans = load_spans(path)
    print(format_report(aggregate_trace(spans)))
    return 0
