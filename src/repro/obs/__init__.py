"""``repro.obs`` — the unified observability layer.

One process-wide :class:`MetricsRegistry` plus an optional span
:class:`Tracer`, shared by the serving tier, the training loop, the
sharded evaluators and the backends.  Three exporters sit on top:

* ``GET /v1/metrics`` on :class:`~repro.serve.http.HttpFrontend`
  renders the registry in Prometheus text format,
* :class:`MetricsSnapshotter` appends periodic JSONL snapshots,
* ``repro obs report <trace.jsonl>`` aggregates a trace into a
  per-stage latency/throughput report.

Enablement contract
-------------------

Metrics are **always on**: they cost one lock-guarded add per event
(the same arithmetic the ad-hoc ``stats.requests += 1`` counters paid
before) and most series are collected lazily at scrape time from the
subsystems' existing locked state.  Span tracing is **off by default**
and costs nothing while off: objects bind ``obs.tracer()`` once at
construction and hot paths guard every clock read and record on a
single ``is not None`` check — no dict lookups, no RNG, no numerics.

Enable tracing with ``obs.enable(trace=path)`` *before* constructing
servers/loops, or process-wide via the environment:

* ``REPRO_OBS=1`` — enable tracing at import time,
* ``REPRO_OBS_TRACE=path`` — trace file (default ``repro_trace.jsonl``),
* ``REPRO_OBS_SNAPSHOT=path`` — also start a periodic metrics
  snapshotter onto this JSONL path,
* ``REPRO_OBS_SNAPSHOT_PERIOD=secs`` — snapshot cadence (default 10).

``set_registry`` swaps the process registry (tests use it for
isolation); instruments created afterwards land in the new registry,
and collectors registered on dead objects fall away via weakrefs.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from .metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_WINDOW,
    WORK_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshotter,
    Sample,
)
from .trace import JsonlAppender, Tracer, new_trace_id

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TRACE_PATH",
    "DEFAULT_WINDOW",
    "WORK_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonlAppender",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "Sample",
    "Tracer",
    "counter",
    "derive",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "new_trace_id",
    "register",
    "registry",
    "render_prometheus",
    "set_registry",
    "snapshot",
    "tracer",
]

DEFAULT_TRACE_PATH = "repro_trace.jsonl"

_TRUTHY = {"1", "true", "yes", "on"}

_registry = MetricsRegistry()
_tracer: Optional[Tracer] = None
_enabled = False
_snapshotter: Optional[MetricsSnapshotter] = None


def enabled() -> bool:
    """Is span tracing on?"""
    return _enabled


def enable(trace: Optional[Union[str, os.PathLike]] = None,
           snapshot: Optional[Union[str, os.PathLike]] = None,
           snapshot_period_s: float = 10.0) -> Tracer:
    """Turn span tracing on (and optionally a periodic snapshotter).

    Objects bind the tracer at construction time, so call this before
    building the :class:`~repro.serve.server.Server`, train loop, etc.
    """
    global _enabled, _tracer, _snapshotter
    path = os.fspath(trace) if trace is not None else (
        os.environ.get("REPRO_OBS_TRACE") or DEFAULT_TRACE_PATH)
    if _tracer is None or _tracer.path != path:
        _tracer = Tracer(path)
    _enabled = True
    if snapshot is not None:
        if _snapshotter is not None:
            _snapshotter.stop()
        _snapshotter = MetricsSnapshotter(snapshot, registry=_registry,
                                          period_s=snapshot_period_s)
        if snapshot_period_s > 0:
            _snapshotter.start()
    return _tracer


def disable() -> None:
    """Turn span tracing off; objects constructed afterwards bind no
    tracer and pay zero instrumentation cost on hot paths."""
    global _enabled, _tracer, _snapshotter
    _enabled = False
    _tracer = None
    if _snapshotter is not None:
        _snapshotter.stop()
        _snapshotter = None


def tracer() -> Optional[Tracer]:
    """The process tracer, or ``None`` when tracing is disabled.

    Hot paths bind this once (``self._tracer = obs.tracer()``) and guard
    all span work on ``is not None``.
    """
    return _tracer if _enabled else None


def registry() -> MetricsRegistry:
    return _registry


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the process registry, returning the old one (test seam).
    The snapshotter, if running, keeps its registry until re-enabled."""
    global _registry
    old = _registry
    _registry = reg
    return old


def counter(name: str, labels: Optional[Mapping[str, str]] = None,
            help: str = "") -> Counter:
    return _registry.counter(name, labels=labels, help=help)


def gauge(name: str, labels: Optional[Mapping[str, str]] = None,
          help: str = "") -> Gauge:
    return _registry.gauge(name, labels=labels, help=help)


def histogram(name: str, labels: Optional[Mapping[str, str]] = None,
              help: str = "",
              buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
              window: int = DEFAULT_WINDOW) -> Histogram:
    return _registry.histogram(name, labels=labels, help=help,
                               buckets=buckets, window=window)


def register(owner: Any, collect: Callable[[Any], List[Sample]]) -> None:
    _registry.register(owner, collect)


def derive(name: str, fn: Callable[[Dict[str, float]], Optional[float]],
           help: str = "") -> None:
    _registry.derive(name, fn, help=help)


def render_prometheus() -> str:
    return _registry.render()


def snapshot() -> Dict[str, float]:
    return _registry.snapshot()


def _init_from_env() -> None:
    if os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY:
        snap = os.environ.get("REPRO_OBS_SNAPSHOT") or None
        period = float(os.environ.get("REPRO_OBS_SNAPSHOT_PERIOD", "10") or 10)
        enable(snapshot=snap, snapshot_period_s=period)


_init_from_env()
