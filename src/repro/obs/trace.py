"""Structured span tracing to JSONL.

Every record is one JSON object on one line:

``{"kind": "span", "name": "serve.forward", "pid": 1234,
   "ts": 1719251123.4, "dur_s": 0.0021, "trace": "4d2-7", ...}``

* ``name`` — the stage (``http.request``, ``serve.queue_wait``,
  ``serve.forward``, ``train.epoch``, ``eval.shard``, ...),
* ``ts`` — wall-clock epoch seconds at emit time,
* ``dur_s`` — span duration measured on a monotonic clock,
* ``trace`` — request correlation ID threading one HTTP request through
  admission → queue wait → batch formation → forward → gate → fill,
* any extra keyword fields ride along verbatim.

The writer holds no open file handle: each batch of records opens the
file in append mode, writes whole lines, and closes.  POSIX ``O_APPEND``
makes each ``write`` land atomically at the end of the file, so the
multi-process SO_REUSEPORT deployment can point every worker at the same
trace path and get an interleaved-but-unbroken JSONL stream; a
process-local lock serializes the server's own worker threads.

Trace IDs come from ``pid`` plus a process-local ``itertools.count`` —
unique across the process tree and, critically, drawn from **no RNG**:
tracing must never advance a random stream the reproduction pins.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, Optional, Union

__all__ = ["JsonlAppender", "Tracer", "new_trace_id"]

_SEQ = itertools.count()


def new_trace_id() -> str:
    """Deterministic, RNG-free correlation ID: ``"<pid:x>-<seq:x>"``."""
    return f"{os.getpid():x}-{next(_SEQ):x}"


class JsonlAppender:
    """Lock-guarded append-only JSON-lines writer (one flushed line per
    record).  ``compact=True`` drops the spaces from separators (the
    trace format); ``compact=False`` keeps ``json.dumps`` defaults (the
    training-metrics format this class was rebased from).
    """

    def __init__(self, path: Union[str, os.PathLike], *,
                 sort_keys: bool = False, compact: bool = True) -> None:
        self.path = os.fspath(path)
        self.sort_keys = sort_keys
        self.compact = compact
        self._lock = threading.Lock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def _dumps(self, record: Dict[str, Any]) -> str:
        if self.compact:
            return json.dumps(record, sort_keys=self.sort_keys,
                              separators=(",", ":"))
        return json.dumps(record, sort_keys=self.sort_keys)

    def write(self, record: Dict[str, Any]) -> None:
        self.write_many((record,))

    def write_many(self, records: Iterable[Dict[str, Any]]) -> None:
        lines = [self._dumps(r) + "\n" for r in records]
        if not lines:
            return
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line)
                handle.flush()

    def reset(self) -> None:
        """Truncate the file (start a fresh stream)."""
        with self._lock:
            open(self.path, "w", encoding="utf-8").close()


class Tracer:
    """Span emitter over one JSONL file.

    ``record`` builds a span dict without touching the disk — hot loops
    batch several and hand them to ``emit_many`` so one batch of
    requests costs one appender write.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.writer = JsonlAppender(path)
        self.path = self.writer.path
        self.clock = clock if clock is not None else time.perf_counter

    def record(self, name: str, dur_s: float,
               trace: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
        span: Dict[str, Any] = {
            "kind": "span",
            "name": name,
            "pid": os.getpid(),
            "ts": time.time(),
            "dur_s": float(dur_s),
        }
        if trace is not None:
            span["trace"] = trace
        if fields:
            span.update(fields)
        return span

    def emit(self, name: str, dur_s: float,
             trace: Optional[str] = None, **fields: Any) -> None:
        self.writer.write(self.record(name, dur_s, trace=trace, **fields))

    def emit_many(self, records: Iterable[Dict[str, Any]]) -> None:
        self.writer.write_many(records)
