"""Process-wide metrics: counters, gauges, bounded histograms, a registry.

Design constraints (ISSUE 9):

* **Zero-cost when disabled.**  Hot paths never pay a dict lookup: code
  binds instruments once at construction time (``self._m_x =
  obs.counter(...)``) and the per-event cost is one lock-guarded integer
  add — the same cost class as the ad-hoc ``stats.requests += 1``
  bookkeeping the registry replaces.  Anything more expensive (clock
  reads, span records) is gated on ``tracer() is not None``.

* **Scrape-time collection.**  Subsystems that already keep their own
  counters under their own lock (``ServerStats``, ``HttpStats``, the
  caches, the compiled-plan cache) do not double-count into registry
  instruments on the hot path.  Instead they register a *collector* — a
  weakly-referenced owner plus an unbound snapshot function — and the
  registry calls it at scrape time.  Each collector reads under its
  owner's lock, so every scrape sees a consistent per-subsystem snapshot
  (e.g. ``requests_completed <= requests`` always holds within one
  scrape).  Dead owners are pruned automatically via the weakref.

* **Bounded histograms.**  A :class:`Histogram` keeps a rolling window
  (``collections.deque(maxlen=...)``) for percentiles — replacing the
  unbounded ``ServerStats.latencies`` deques — plus cumulative
  count/sum and fixed Prometheus buckets for the scrape endpoint.  It is
  deliberately deque-compatible (``len()``, iteration) so existing
  callers and tests keep working.

Nothing in this module touches RNG, and instruments are plain python —
no numpy state, no global side effects beyond the registry dicts.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_WINDOW",
    "WORK_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "Sample",
]

# Canonical label encoding: a sorted tuple of (key, value) pairs, usable
# as a dict key and stable across insertion orders.
Labels = Tuple[Tuple[str, str], ...]
LabelArg = Optional[Mapping[str, str]]

#: Sub-millisecond through ten-second latencies (seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Coarse buckets for work units measured in seconds-to-minutes
#: (training epochs, crafted shards).
WORK_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: Powers of two up to the largest plausible micro-batch.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

#: Rolling-window size for histogram percentiles; matches the old
#: ``serve.server.STATS_WINDOW`` bound.
DEFAULT_WINDOW = 16384


def _canonical_labels(labels: LabelArg) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time view of a histogram, mergeable across instances.

    ``buckets`` maps each finite upper bound ``le`` to the *cumulative*
    count of observations ``<= le``; ``count`` doubles as the ``+Inf``
    bucket.  Cumulative bucket counts are additive, so merging snapshots
    from several workers is a per-bound sum.
    """

    buckets: Tuple[Tuple[float, int], ...]
    count: int
    total: float
    percentiles: Optional[Dict[float, float]] = None

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        merged: Dict[float, int] = dict(self.buckets)
        for le, n in other.buckets:
            merged[le] = merged.get(le, 0) + n
        return HistogramSnapshot(
            buckets=tuple(sorted(merged.items())),
            count=self.count + other.count,
            total=self.total + other.total,
            # Window percentiles cannot be merged exactly; drop them.
            percentiles=None,
        )


@dataclass(frozen=True)
class Sample:
    """One collected metric value.

    ``kind`` is ``counter`` / ``gauge`` / ``histogram``; ``value`` is a
    float for the first two and a :class:`HistogramSnapshot` for the
    last.  Collectors return lists of these.
    """

    name: str
    kind: str
    value: Union[float, HistogramSnapshot]
    labels: Labels = ()
    help: str = ""

    @staticmethod
    def make(name: str, kind: str, value: Union[float, HistogramSnapshot],
             labels: LabelArg = None, help: str = "") -> "Sample":
        return Sample(name=name, kind=kind, value=value,
                      labels=_canonical_labels(labels), help=help)


class Counter:
    """Monotonic counter; ``inc`` is one lock-guarded add."""

    kind = "counter"

    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelArg = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = _canonical_labels(labels)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, by: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Sample:
        return Sample(self.name, self.kind, self.value,
                      self.labels, self.help)


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelArg = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = _canonical_labels(labels)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, by: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Sample:
        return Sample(self.name, self.kind, self.value,
                      self.labels, self.help)


class Histogram:
    """Bounded histogram: rolling window + cumulative Prometheus buckets.

    The window (a ``deque(maxlen=window)``) serves percentiles and the
    windowed mean; cumulative ``count``/``sum``/buckets serve the scrape
    endpoint.  Deque-compatible on purpose: ``len(h)`` and ``list(h)``
    see the window, exactly like the unbounded deques this type
    replaces in ``ServerStats``.
    """

    kind = "histogram"

    __slots__ = ("name", "labels", "help", "buckets",
                 "_lock", "_window", "_bucket_counts", "_count", "_sum")

    def __init__(self, name: str, labels: LabelArg = None, help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 window: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self.labels = _canonical_labels(labels)
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=window)
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._observe_locked(v)

    def observe_many(self, values: Iterable[float]) -> None:
        vs = [float(v) for v in values]
        with self._lock:
            for v in vs:
                self._observe_locked(v)

    def _observe_locked(self, v: float) -> None:
        self._window.append(v)
        self._count += 1
        self._sum += v
        # First bucket whose upper bound is >= v takes the observation
        # (le semantics); values above the last bound only land in +Inf,
        # which is tracked by _count.
        i = bisect.bisect_left(self.buckets, v)
        if i < len(self._bucket_counts):
            self._bucket_counts[i] += 1

    # --- deque compatibility -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    def __iter__(self) -> Iterator[float]:
        with self._lock:
            return iter(list(self._window))

    def extend(self, values: Iterable[float]) -> None:
        self.observe_many(values)

    def append(self, value: float) -> None:
        self.observe(value)

    # --- stats ---------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the rolling window (0 if empty)."""
        with self._lock:
            values = list(self._window)
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values, dtype=np.float64),
                                   q, method="nearest"))

    @property
    def window_mean(self) -> float:
        with self._lock:
            values = list(self._window)
        if not values:
            return 0.0
        return float(np.mean(np.asarray(values, dtype=np.float64)))

    def snapshot(self, percentiles: Sequence[float] = ()) -> HistogramSnapshot:
        with self._lock:
            counts = list(self._bucket_counts)
            count = self._count
            total = self._sum
            window = list(self._window) if percentiles else None
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for le, n in zip(self.buckets, counts):
            running += n
            cumulative.append((le, running))
        pcts: Optional[Dict[float, float]] = None
        if percentiles and window:
            arr = np.asarray(window, dtype=np.float64)
            pcts = {float(q): float(np.percentile(arr, q, method="nearest"))
                    for q in percentiles}
        return HistogramSnapshot(buckets=tuple(cumulative), count=count,
                                 total=total, percentiles=pcts)

    def sample(self) -> Sample:
        return Sample(self.name, self.kind,
                      self.snapshot(percentiles=(50.0, 95.0, 99.0)),
                      self.labels, self.help)


@dataclass
class _Derived:
    fn: Callable[[Dict[str, float]], Optional[float]]
    help: str = ""


class MetricsRegistry:
    """Get-or-create instruments plus weakref scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], Any] = {}
        self._collectors: List[Tuple[weakref.ref, Callable[[Any], List[Sample]]]] = []
        self._derived: Dict[str, _Derived] = {}

    # --- instruments ---------------------------------------------------------

    def counter(self, name: str, labels: LabelArg = None,
                help: str = "") -> Counter:
        return self._instrument(Counter, name, labels, help)

    def gauge(self, name: str, labels: LabelArg = None,
              help: str = "") -> Gauge:
        return self._instrument(Gauge, name, labels, help)

    def histogram(self, name: str, labels: LabelArg = None, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  window: int = DEFAULT_WINDOW) -> Histogram:
        key = (name, _canonical_labels(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = Histogram(name, labels, help,
                                 buckets=buckets, window=window)
                self._instruments[key] = inst
        if not isinstance(inst, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}")
        return inst

    def _instrument(self, cls: type, name: str, labels: LabelArg,
                    help: str) -> Any:
        key = (name, _canonical_labels(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, labels, help)
                self._instruments[key] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}")
        return inst

    # --- collectors ----------------------------------------------------------

    def register(self, owner: Any,
                 collect: Callable[[Any], List[Sample]]) -> None:
        """Attach a scrape-time collector bound weakly to ``owner``.

        ``collect`` is called as ``collect(owner)`` at scrape time (pass
        an *unbound* method, e.g. ``Server._collect_metrics``, so the
        registry holds no strong reference).  Collectors whose owner has
        been garbage-collected are skipped and pruned.
        """
        with self._lock:
            self._collectors.append((weakref.ref(owner), collect))

    def derive(self, name: str,
               fn: Callable[[Dict[str, float]], Optional[float]],
               help: str = "") -> None:
        """Register a gauge computed from merged metric values at scrape
        time (e.g. a cache hit ratio).  Idempotent: re-registering the
        same name replaces the function, so object constructors can call
        this unconditionally.  ``fn`` receives ``{plain_name: total}``
        (labels summed out) and may return ``None`` to skip the series.
        """
        with self._lock:
            self._derived[name] = _Derived(fn=fn, help=help)

    # --- collection ----------------------------------------------------------

    def collect(self) -> List[Sample]:
        """Merge instruments, collectors, and derived series into one
        consistent-per-subsystem list of samples, sorted by name."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
            derived = dict(self._derived)

        samples: List[Sample] = [inst.sample() for inst in instruments]
        dead: List[Tuple[weakref.ref, Callable]] = []
        for ref, fn in collectors:
            owner = ref()
            if owner is None:
                dead.append((ref, fn))
                continue
            samples.extend(fn(owner))
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors
                                    if c not in dead]

        merged = self._merge(samples)

        if derived:
            totals: Dict[str, float] = {}
            for s in merged:
                if isinstance(s.value, HistogramSnapshot):
                    continue
                totals[s.name] = totals.get(s.name, 0.0) + float(s.value)
            for name, d in sorted(derived.items()):
                value = d.fn(totals)
                if value is not None:
                    merged.append(Sample(name, "gauge", float(value),
                                         (), d.help))

        merged.sort(key=lambda s: (s.name, s.labels))
        return merged

    @staticmethod
    def _merge(samples: List[Sample]) -> List[Sample]:
        out: Dict[Tuple[str, Labels], Sample] = {}
        for s in samples:
            key = (s.name, s.labels)
            prev = out.get(key)
            if prev is None:
                out[key] = s
                continue
            if isinstance(s.value, HistogramSnapshot):
                if not isinstance(prev.value, HistogramSnapshot):
                    raise TypeError(f"metric {s.name!r} mixes kinds")
                value: Union[float, HistogramSnapshot] = prev.value.merge(s.value)
            else:
                value = float(prev.value) + float(s.value)
            out[key] = Sample(s.name, prev.kind, value, s.labels,
                              prev.help or s.help)
        return list(out.values())

    # --- exporters -----------------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of one scrape."""
        lines: List[str] = []
        seen_meta: set = set()
        for s in self.collect():
            if s.name not in seen_meta:
                seen_meta.add(s.name)
                if s.help:
                    lines.append(f"# HELP {s.name} {s.help}")
                lines.append(f"# TYPE {s.name} {s.kind}")
            if isinstance(s.value, HistogramSnapshot):
                snap = s.value
                for le, n in snap.buckets:
                    lines.append(
                        f"{s.name}_bucket"
                        f"{_label_str(s.labels + (('le', _fmt(le)),))} {n}")
                lines.append(
                    f"{s.name}_bucket"
                    f"{_label_str(s.labels + (('le', '+Inf'),))} {snap.count}")
                lines.append(
                    f"{s.name}_sum{_label_str(s.labels)} {_fmt(snap.total)}")
                lines.append(
                    f"{s.name}_count{_label_str(s.labels)} {snap.count}")
            else:
                lines.append(f"{s.name}{_label_str(s.labels)} {_fmt(s.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series: value}`` dict for the periodic JSONL export.

        Histograms flatten to ``_count`` / ``_sum`` plus window
        percentiles (``_p50`` etc.) when available.
        """
        out: Dict[str, float] = {}
        for s in self.collect():
            key = s.name + _label_str(s.labels)
            if isinstance(s.value, HistogramSnapshot):
                out[key + "_count"] = float(s.value.count)
                out[key + "_sum"] = float(s.value.total)
                for q, v in sorted((s.value.percentiles or {}).items()):
                    out[key + f"_p{q:g}"] = v
            else:
                out[key] = float(s.value)
        return out


def _label_str(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    f = float(value)
    if math.isnan(f):
        return "NaN"
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class MetricsSnapshotter:
    """Periodically append registry snapshots to a JSONL file.

    Runs on a daemon thread; ``write_once`` is also usable standalone
    (the CLI and tests call it directly).  Appends are line-atomic via
    the same open-append-write-close discipline as the trace writer, so
    multiple SO_REUSEPORT worker processes can share one path.
    """

    def __init__(self, path: Union[str, os.PathLike], registry: MetricsRegistry,
                 period_s: float = 10.0) -> None:
        self.path = os.fspath(path)
        self.registry = registry
        self.period_s = float(period_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def write_once(self) -> None:
        record = {"kind": "metrics", "ts": time.time(), "pid": os.getpid(),
                  "metrics": self.registry.snapshot()}
        line = json.dumps(record, sort_keys=True) + "\n"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-snapshot",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            try:
                self.write_once()
            except OSError:  # pragma: no cover - disk full etc.
                pass
