"""The epoch loop every defense trainer runs on.

``TrainLoop`` owns run control (epoch window, early stop, wall-clock laps)
and event dispatch; the trainer supplies the science via ``train_epoch``
(batch iteration + optimizer steps).  The split is what makes training
restartable: the loop starts from ``trainer.completed_epochs`` — zero for
a fresh run, the checkpointed value after
:func:`~repro.train.checkpoint.load_checkpoint` — and every stateful RNG
stream lives on the trainer where the checkpointer can reach it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from .. import obs
from ..utils.timing import Stopwatch
from .callbacks import Callback, CallbackList, EpochLogs, HistoryCallback

if TYPE_CHECKING:  # pragma: no cover
    from ..defenses.base import Trainer, TrainingHistory

__all__ = ["TrainLoop"]


class TrainLoop:
    """Drive one trainer over a dataset, emitting callback events.

    Parameters
    ----------
    trainer:
        Any :class:`~repro.defenses.base.Trainer`; it provides
        ``train_epoch(dataset, epoch, loop)`` and the bookkeeping surface
        (``history``, ``completed_epochs``, RNG streams, optimizers).
    callbacks:
        Extra callbacks, dispatched in order *after* the built-in history
        recorder (so they all see the finished epoch already recorded).
    record_history:
        Disable only when a caller wants raw event access without
        touching ``trainer.history`` (the overhead benchmark does).
    """

    def __init__(self, trainer: "Trainer",
                 callbacks: Iterable[Callback] = (),
                 record_history: bool = True) -> None:
        chain = [HistoryCallback()] if record_history else []
        chain.extend(callbacks)
        self.trainer = trainer
        self.callbacks = CallbackList(chain)
        self.stop_reason: Optional[str] = None
        self._stop_requested = False
        # Observability: per-epoch counters/gauges are cheap (one
        # increment per epoch/batch, far off any hot path); the span
        # tracer is bound once and only consulted on epoch boundaries.
        self._tracer = obs.tracer()
        self._m_epochs = obs.counter("repro_train_epochs_total",
                                     help="training epochs completed")
        self._m_batches = obs.counter("repro_train_batches_total",
                                      help="optimizer steps completed")
        self._h_epoch = obs.histogram("repro_train_epoch_seconds",
                                      help="wall-clock seconds per epoch",
                                      buckets=obs.WORK_SECONDS_BUCKETS)
        self._g_loss = obs.gauge("repro_train_last_loss",
                                 help="most recent epoch's mean loss")

    # ------------------------------------------------------------------ #
    def request_stop(self, reason: str) -> None:
        """Ask the loop to finish after the current epoch's callbacks."""
        self._stop_requested = True
        if self.stop_reason is None:
            self.stop_reason = reason

    @property
    def stopping(self) -> bool:
        return self._stop_requested

    # ------------------------------------------------------------------ #
    def run(self, dataset) -> "TrainingHistory":
        """Train from ``trainer.completed_epochs`` to ``trainer.epochs``.

        A fresh trainer starts at epoch 0 (its per-run RNG streams are
        re-derived from the seed, exactly as the pre-loop ``fit`` did); a
        trainer restored by ``load_checkpoint`` continues where it left
        off.  Already-complete trainers return their history untouched.
        """
        trainer = self.trainer
        if trainer.completed_epochs >= trainer.epochs:
            return trainer.history
        if trainer.completed_epochs == 0:
            trainer.reset_run_streams()
        self._stop_requested = False
        self.stop_reason = None
        trainer.history.stop_reason = None
        self.callbacks.on_train_start(self)
        watch = Stopwatch()
        try:
            while trainer.completed_epochs < trainer.epochs \
                    and not self._stop_requested:
                epoch = trainer.completed_epochs
                self.callbacks.on_epoch_start(self, epoch)
                trainer.model.train()
                # The stopwatch brackets the epoch's training work only:
                # restarting it here keeps callback time (checkpoint
                # saves, robustness probes) out of ``epoch_seconds``, the
                # number Figure 5 compares across defenses.
                watch.start()
                try:
                    losses, extra = trainer.train_epoch(dataset, epoch, self)
                finally:
                    # Mode-restore invariant: the model leaves every epoch
                    # (including one aborted by a raise mid-batch) in eval
                    # mode, mirroring the attacks' guarantee.  A raise also
                    # leaves the history free of partial-epoch records —
                    # recording only happens below, on completion.
                    trainer.model.eval()
                epoch_seconds = watch.lap()
                epoch_loss = float(np.mean(losses)) if losses else float("nan")
                logs = EpochLogs(epoch=epoch, loss=epoch_loss,
                                 seconds=epoch_seconds,
                                 lr=float(trainer.optimizer.lr),
                                 extra=dict(extra))
                trainer.completed_epochs = epoch + 1
                self._m_epochs.inc()
                self._h_epoch.observe(epoch_seconds)
                self._g_loss.set(epoch_loss)
                if self._tracer is not None:
                    self._tracer.emit("train.epoch", epoch_seconds,
                                      epoch=epoch, loss=epoch_loss,
                                      trainer=trainer.name)
                self.callbacks.on_epoch_end(self, epoch, logs)
                trainer.on_epoch_end(epoch, epoch_loss)
            if self.stop_reason is not None:
                trainer.history.stop_reason = self.stop_reason
        finally:
            trainer.model.eval()
        self.callbacks.on_train_end(self)
        return trainer.history

    # ------------------------------------------------------------------ #
    def emit_batch_end(self, epoch: int, batch_index: int,
                       loss: float) -> None:
        """Called by ``Trainer.train_epoch`` after each optimizer step."""
        self._m_batches.inc()
        self.callbacks.on_batch_end(self, epoch, batch_index, loss)
