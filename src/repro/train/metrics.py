"""JSONL metrics streaming for training runs.

One line per event, appended and flushed as it happens, so a killed run
keeps every record it produced and a resumed run appends the remaining
epochs to the same file — the Figure 5-style curves read straight out of
these logs via :func:`read_jsonl`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Union

from .. import obs
from ..obs.trace import JsonlAppender
from .callbacks import Callback

__all__ = ["JsonlWriter", "read_jsonl", "MetricsLogger"]


class JsonlWriter(JsonlAppender):
    """Append-only JSON-lines writer (one flushed line per record).

    A thin subclass of the obs layer's lock-guarded appender — training
    gains the same thread/multi-process append-atomicity as the trace
    stream while the on-disk format stays exactly what it always was
    (``sort_keys=True``, default separators).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        super().__init__(path, sort_keys=True, compact=False)


def read_jsonl(path: Union[str, os.PathLike],
               event: Optional[str] = None) -> List[Dict]:
    """Load a metrics log; optionally keep only one ``event`` type."""
    records: List[Dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if event is None or record.get("event") == event:
                records.append(record)
    return records


class MetricsLogger(Callback):
    """Stream per-epoch training records into a JSONL log.

    Events written::

        {"event": "train_start", "trainer": ..., "epoch": k, "epochs": n}
        {"event": "epoch", "epoch": k, "loss": ..., "seconds": ...,
         "lr": ..., **extra}
        {"event": "train_end", "epochs_completed": n, "stop_reason": ...}

    The :class:`~repro.train.probe.RobustnessProbe` shares the writer and
    adds ``{"event": "probe", ...}`` lines between epochs.

    A **resumed** run appends to the existing log (the pre-kill records
    are part of the same training run); a **from-scratch** run truncates
    it first — otherwise a shorter re-run into the same directory would
    leave the old run's tail epochs to be stitched into rebuilt curves.
    """

    def __init__(self, writer: Union[JsonlWriter, str, os.PathLike]) -> None:
        if not isinstance(writer, JsonlWriter):
            writer = JsonlWriter(writer)
        self.writer = writer
        self._g_completed = obs.gauge(
            "repro_train_completed_epochs",
            help="epochs completed by the most recent logged run")

    def on_train_start(self, loop):
        trainer = loop.trainer
        if trainer.completed_epochs == 0:
            self.writer.reset()
        self.writer.write({"event": "train_start", "trainer": trainer.name,
                           "epoch": trainer.completed_epochs,
                           "epochs": trainer.epochs})

    def on_epoch_end(self, loop, epoch, logs):
        record = {"event": "epoch", "epoch": epoch,
                  "loss": float(logs.loss), "seconds": float(logs.seconds),
                  "lr": float(logs.lr)}
        record.update({k: float(v) for k, v in logs.extra.items()})
        self.writer.write(record)
        self._g_completed.set(loop.trainer.completed_epochs)

    def on_train_end(self, loop):
        self.writer.write({
            "event": "train_end",
            "epochs_completed": loop.trainer.completed_epochs,
            "stop_reason": loop.stop_reason,
        })
