"""Typed callback/event API for the training loop.

Every trainer runs through :class:`~repro.train.loop.TrainLoop`, which
emits five events per run::

    on_train_start -> [on_epoch_start -> on_batch_end* -> on_epoch_end]* -> on_train_end

Callbacks receive the loop (and through it the trainer) plus, at epoch
end, an :class:`EpochLogs` record.  History recording, divergence
guarding, LR scheduling, checkpointing, metrics streaming and in-training
robustness probes are all clients of this one API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .loop import TrainLoop

__all__ = ["EpochLogs", "Callback", "CallbackList", "HistoryCallback",
           "DivergenceGuard", "LambdaCallback", "PrintProgress"]


@dataclass
class EpochLogs:
    """What one completed epoch measured."""

    epoch: int                  # zero-based index of the finished epoch
    loss: float                 # mean train loss over the epoch's batches
    seconds: float              # wall-clock spent inside the epoch
    lr: float                   # classifier learning rate used this epoch
    extra: Dict[str, float] = field(default_factory=dict)


class Callback:
    """Base class; override any subset of the five events (no-ops here)."""

    def on_train_start(self, loop: "TrainLoop") -> None:
        """Fired once before the first epoch of a run (or resumed run)."""

    def on_epoch_start(self, loop: "TrainLoop", epoch: int) -> None:
        """Fired before each epoch's batches; schedulers hook here."""

    def on_batch_end(self, loop: "TrainLoop", epoch: int,
                     batch_index: int, loss: float) -> None:
        """Fired after every optimizer step with that batch's loss."""

    def on_epoch_end(self, loop: "TrainLoop", epoch: int,
                     logs: EpochLogs) -> None:
        """Fired after each epoch, once the history has been updated."""

    def on_train_end(self, loop: "TrainLoop") -> None:
        """Fired when the run finishes or stops early (not on a raise)."""


class CallbackList(Callback):
    """Dispatches each event to callbacks in insertion order.

    Order matters: the loop installs :class:`HistoryCallback` first, so
    every user callback observes an up-to-date ``trainer.history``; a
    :class:`~repro.train.checkpoint.Checkpointer` placed last therefore
    snapshots the epoch it just watched finish.
    """

    def __init__(self, callbacks: Iterable[Callback] = ()) -> None:
        self.callbacks: List[Callback] = list(callbacks)

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_train_start(self, loop):
        for c in self.callbacks:
            c.on_train_start(loop)

    def on_epoch_start(self, loop, epoch):
        for c in self.callbacks:
            c.on_epoch_start(loop, epoch)

    def on_batch_end(self, loop, epoch, batch_index, loss):
        for c in self.callbacks:
            c.on_batch_end(loop, epoch, batch_index, loss)

    def on_epoch_end(self, loop, epoch, logs):
        for c in self.callbacks:
            c.on_epoch_end(loop, epoch, logs)

    def on_train_end(self, loop):
        for c in self.callbacks:
            c.on_train_end(loop)


class HistoryCallback(Callback):
    """Streams epoch records into the trainer's ``TrainingHistory``.

    This is how the pre-loop ``Trainer.fit`` bookkeeping survives the
    refactor: the history is now just the first client of the event API.
    """

    def on_epoch_end(self, loop, epoch, logs):
        history = loop.trainer.history
        history.losses.append(float(logs.loss))
        history.epoch_seconds.append(float(logs.seconds))
        for key, value in logs.extra.items():
            history.record_extra(key, value)


class DivergenceGuard(Callback):
    """Halt-and-flag on a non-finite epoch loss.

    CLP on the RGB dataset reproduces the paper's ``nan`` blow-up
    (Sec. V-D); without the guard the remaining epochs burn compute on a
    dead run.  The stop reason lands in ``history.stop_reason`` so
    downstream tables can report "diverged" instead of a silent short
    history.
    """

    def __init__(self, patience: int = 0) -> None:
        if patience < 0:
            raise ValueError(f"patience must be non-negative, got {patience}")
        self.patience = patience
        self._bad = 0

    def on_train_start(self, loop):
        self._bad = 0

    def on_epoch_end(self, loop, epoch, logs):
        if np.isfinite(logs.loss):
            self._bad = 0
            return
        self._bad += 1
        if self._bad > self.patience:
            loop.request_stop(
                f"diverged: non-finite loss {logs.loss!r} at epoch {epoch}")


class LambdaCallback(Callback):
    """Ad-hoc callback from plain functions (tests, notebooks)."""

    def __init__(
        self,
        on_train_start: Optional[Callable] = None,
        on_epoch_start: Optional[Callable] = None,
        on_batch_end: Optional[Callable] = None,
        on_epoch_end: Optional[Callable] = None,
        on_train_end: Optional[Callable] = None,
    ) -> None:
        self._handlers = {
            "on_train_start": on_train_start,
            "on_epoch_start": on_epoch_start,
            "on_batch_end": on_batch_end,
            "on_epoch_end": on_epoch_end,
            "on_train_end": on_train_end,
        }

    def _fire(self, event: str, *args) -> None:
        handler = self._handlers[event]
        if handler is not None:
            handler(*args)

    def on_train_start(self, loop):
        self._fire("on_train_start", loop)

    def on_epoch_start(self, loop, epoch):
        self._fire("on_epoch_start", loop, epoch)

    def on_batch_end(self, loop, epoch, batch_index, loss):
        self._fire("on_batch_end", loop, epoch, batch_index, loss)

    def on_epoch_end(self, loop, epoch, logs):
        self._fire("on_epoch_end", loop, epoch, logs)

    def on_train_end(self, loop):
        self._fire("on_train_end", loop)


class PrintProgress(Callback):
    """One line per epoch — the ``repro train`` CLI's progress stream."""

    def on_epoch_end(self, loop, epoch, logs):
        extras = "".join(f"  {k}={v:.4f}" for k, v in sorted(logs.extra.items()))
        print(f"  epoch {epoch + 1:3d}/{loop.trainer.epochs:<3d} "
              f"loss={logs.loss:.4f}  lr={logs.lr:.2e}  "
              f"{logs.seconds:6.2f}s{extras}")

    def on_train_end(self, loop):
        if loop.stop_reason:
            print(f"  stopped early: {loop.stop_reason}")
