"""Learning-rate schedulers as loop callbacks.

Each scheduler is a pure function of the epoch index applied at
``on_epoch_start`` — no mutable schedule state exists, so a resumed run
recomputes exactly the learning rate the uninterrupted run would have
used at that epoch (the property the kill-and-resume equivalence tests
pin).

For that same reason, pass ``base_lr`` explicitly when a run may be
resumed: capturing it lazily from the optimizer at train start would read
back an already-decayed checkpointed rate.  The ``repro train`` CLI always
passes the config's base rate.
"""

from __future__ import annotations

import math
from typing import Optional

from .callbacks import Callback

__all__ = ["LRScheduler", "StepLR", "CosineLR", "WarmupLR",
           "build_scheduler"]


class LRScheduler(Callback):
    """Base: sets ``trainer.optimizer.lr`` from :meth:`lr_at` each epoch."""

    def __init__(self, base_lr: Optional[float] = None) -> None:
        if base_lr is not None and base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = base_lr

    def on_train_start(self, loop):
        if self.base_lr is None:
            self.base_lr = float(loop.trainer.optimizer.lr)

    def on_epoch_start(self, loop, epoch):
        loop.trainer.optimizer.lr = self.lr_at(epoch, loop.trainer.epochs)

    def lr_at(self, epoch: int, total_epochs: int) -> float:
        """Learning rate for (zero-based) ``epoch``."""
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the base rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, step_size: int, gamma: float = 0.5,
                 base_lr: Optional[float] = None) -> None:
        super().__init__(base_lr)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int, total_epochs: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from the base rate down to ``min_lr``.

    ``total_epochs`` defaults to the trainer's epoch budget at run time,
    so the annealing window always spans the whole run.
    """

    def __init__(self, total_epochs: Optional[int] = None,
                 min_lr: float = 0.0,
                 base_lr: Optional[float] = None) -> None:
        super().__init__(base_lr)
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int, total_epochs: int) -> float:
        span = self.total_epochs or total_epochs
        horizon = max(1, span - 1)
        progress = min(epoch, horizon) / horizon
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress))


class WarmupLR(LRScheduler):
    """Linear warm-up over the first epochs, then an inner schedule.

    Without an inner schedule the rate holds at ``base_lr`` after warm-up
    (plain warm-up).  The inner schedule sees epochs re-based to the end
    of warm-up so its own horizon starts there.
    """

    def __init__(self, warmup_epochs: int,
                 after: Optional[LRScheduler] = None,
                 base_lr: Optional[float] = None) -> None:
        super().__init__(base_lr)
        if warmup_epochs < 1:
            raise ValueError(
                f"warmup_epochs must be >= 1, got {warmup_epochs}")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def on_train_start(self, loop):
        super().on_train_start(loop)
        if self.after is not None and self.after.base_lr is None:
            self.after.base_lr = self.base_lr

    def lr_at(self, epoch: int, total_epochs: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        if self.after is None:
            return self.base_lr
        return self.after.lr_at(epoch - self.warmup_epochs,
                                max(1, total_epochs - self.warmup_epochs))


def build_scheduler(kind: str, base_lr: float, total_epochs: int,
                    step_size: int = 10, gamma: float = 0.5,
                    warmup_epochs: int = 0,
                    min_lr: float = 0.0) -> Optional[LRScheduler]:
    """Instantiate the scheduler a :class:`TrainingSchedule` names.

    ``kind`` is one of ``none`` / ``step`` / ``cosine`` /
    ``warmup-cosine``; ``none`` returns ``None`` (constant rate).
    """
    key = kind.lower()
    if key in ("none", ""):
        return None
    if key == "step":
        return StepLR(step_size=step_size, gamma=gamma, base_lr=base_lr)
    if key == "cosine":
        return CosineLR(total_epochs=total_epochs, min_lr=min_lr,
                        base_lr=base_lr)
    if key == "warmup-cosine":
        warmup = max(1, warmup_epochs)
        inner = CosineLR(total_epochs=max(1, total_epochs - warmup),
                         min_lr=min_lr, base_lr=base_lr)
        return WarmupLR(warmup_epochs=warmup, after=inner, base_lr=base_lr)
    raise KeyError(f"unknown scheduler {kind!r}; "
                   "use none, step, cosine or warmup-cosine")
