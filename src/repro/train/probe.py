"""In-training robustness probes.

Figure 5's story is about what happens *during* training, but the seed
pipeline could only measure robustness after the fact.  The probe runs
PR 1's batched :class:`~repro.eval.engine.AttackSuite` on a held-out
slice every ``every`` epochs, streaming clean/robust accuracy into the
trainer history (``probe_*`` extra series) and, when a JSONL writer is
attached, into the run's metrics log — enough to plot robustness-vs-epoch
curves for any defense.

Probing never perturbs training: the model is already in eval mode when
``on_epoch_end`` fires (dropout inactive, so no generator draws), and the
attacks re-derive their own streams per call — a probed run and an
unprobed run produce bit-identical training histories.

When the suite carries a worker pool (``AttackSuite(workers=N)``), probes
go **asynchronous**: ``on_epoch_end`` snapshots the weights and submits
the crafting to the pool, then training proceeds into the next epoch
while the workers craft — the probe overlaps the epoch instead of
stalling it.  Results are collected (in submission order, so histories
stay ordered) on later epoch boundaries and drained at ``on_train_end``;
each probe scores against its snapshot, so the readings are identical to
the synchronous ones.

One deliberate trade-off: because an async probe's rows reach the
history *after* its epoch, a checkpoint written while a probe is still
in flight does not contain that probe's rows (synchronous probes record
before the checkpointer runs).  A run that completes — or is resumed and
completes — still ends with the full, identical probe stream; what a
kill-and-resume loses is only the in-flight probes of the killed
process.  Runs that need checkpoints to be bit-complete at every epoch
boundary (the resume-equivalence suite does) should keep the default
synchronous probes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from .. import obs
from .callbacks import Callback
from .metrics import JsonlWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..eval.engine import AttackSuite, PendingSuiteResult

__all__ = ["RobustnessProbe"]


class RobustnessProbe(Callback):
    """Periodically attack the in-training model on a held-out slice.

    Parameters
    ----------
    suite:
        A configured :class:`~repro.eval.engine.AttackSuite`; attach an
        ``AdversarialCache`` to it for cheap re-probes of unchanged
        weights (e.g. a resumed run re-probing its last epoch).
    images, labels:
        The held-out slice.  Keep it disjoint from the final evaluation
        slice so in-training probes never leak the test set.
    every:
        Probe cadence in epochs (the final epoch always probes, so every
        run ends with a fresh robustness reading).
    writer:
        Optional JSONL sink shared with a ``MetricsLogger``.
    """

    def __init__(self, suite: "AttackSuite", images: np.ndarray,
                 labels: np.ndarray, every: int = 1,
                 writer: Optional[JsonlWriter] = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if len(images) == 0:
            raise ValueError("probe needs at least one held-out example")
        self.suite = suite
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels)
        self.every = every
        self.writer = writer
        self.results = []       # SuiteResult per probe, in epoch order
        self.probe_epochs: list = []  # epoch index of each probe
        # (epoch, trainer, pending) probes still crafting in the pool.
        self._pending: List[Tuple[int, object, "PendingSuiteResult"]] = []
        self._tracer = obs.tracer()
        self._m_probes = obs.counter("repro_train_probes_total",
                                     help="robustness probes recorded")

    @property
    def overlapping(self) -> bool:
        """Async probing: on when the suite has a worker pool."""
        return getattr(self.suite, "parallel", False)

    def on_epoch_end(self, loop, epoch, logs):
        trainer = loop.trainer
        # Collect any probes whose crafting finished while we trained.
        self._collect(block=False)
        last = trainer.completed_epochs >= trainer.epochs
        if (epoch + 1) % self.every and not last and not loop.stopping:
            return
        if self.overlapping:
            # run_async snapshots the weights, so the next epoch's updates
            # cannot leak into this epoch's reading.
            pending = self.suite.run_async(trainer.model, self.images,
                                           self.labels,
                                           model_name=trainer.name)
            self._pending.append((epoch, trainer, pending))
            if last or loop.stopping:
                self._collect(block=True)
            return
        self._record(epoch, trainer,
                     self.suite.run(trainer.model, self.images, self.labels,
                                    model_name=trainer.name))

    def on_train_end(self, loop):
        self._collect(block=True)

    def close(self) -> None:
        """Drain outstanding probes and release the suite's worker pool."""
        self._collect(block=True)
        close = getattr(self.suite, "close", None)
        if close is not None:
            close()

    def _collect(self, block: bool) -> None:
        """Drain finished pendings from the head, preserving epoch order.

        Only the head may be taken even when a later probe finished
        first — histories and the JSONL stream must stay epoch-ordered.
        """
        while self._pending:
            epoch, trainer, pending = self._pending[0]
            if not block and not pending.ready():
                return
            self._pending.pop(0)
            self._record(epoch, trainer, pending.result())

    def _record(self, epoch, trainer, result) -> None:
        self._m_probes.inc()
        if self._tracer is not None:
            self._tracer.emit("train.probe", result.generation_seconds,
                              epoch=epoch, trainer=trainer.name,
                              clean=result.clean_accuracy,
                              examples=int(len(self.images)),
                              overlapped=self.overlapping)
        self.results.append(result)
        self.probe_epochs.append(epoch)
        history = trainer.history
        history.record_extra("probe_epoch", float(epoch))
        history.record_extra("probe_clean", result.clean_accuracy)
        for record in result.records:
            history.record_extra(f"probe_{record.attack}", record.accuracy)
        if self.writer is not None:
            self.writer.write({
                "event": "probe", "epoch": epoch,
                "clean_accuracy": result.clean_accuracy,
                "robust_accuracy": {r.attack: r.accuracy
                                    for r in result.records},
                "seconds": result.generation_seconds,
                "examples": int(len(self.images)),
            })
