"""In-training robustness probes.

Figure 5's story is about what happens *during* training, but the seed
pipeline could only measure robustness after the fact.  The probe runs
PR 1's batched :class:`~repro.eval.engine.AttackSuite` on a held-out
slice every ``every`` epochs, streaming clean/robust accuracy into the
trainer history (``probe_*`` extra series) and, when a JSONL writer is
attached, into the run's metrics log — enough to plot robustness-vs-epoch
curves for any defense.

Probing never perturbs training: the model is already in eval mode when
``on_epoch_end`` fires (dropout inactive, so no generator draws), and the
attacks re-derive their own streams per call — a probed run and an
unprobed run produce bit-identical training histories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .callbacks import Callback
from .metrics import JsonlWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..eval.engine import AttackSuite

__all__ = ["RobustnessProbe"]


class RobustnessProbe(Callback):
    """Periodically attack the in-training model on a held-out slice.

    Parameters
    ----------
    suite:
        A configured :class:`~repro.eval.engine.AttackSuite`; attach an
        ``AdversarialCache`` to it for cheap re-probes of unchanged
        weights (e.g. a resumed run re-probing its last epoch).
    images, labels:
        The held-out slice.  Keep it disjoint from the final evaluation
        slice so in-training probes never leak the test set.
    every:
        Probe cadence in epochs (the final epoch always probes, so every
        run ends with a fresh robustness reading).
    writer:
        Optional JSONL sink shared with a ``MetricsLogger``.
    """

    def __init__(self, suite: "AttackSuite", images: np.ndarray,
                 labels: np.ndarray, every: int = 1,
                 writer: Optional[JsonlWriter] = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if len(images) == 0:
            raise ValueError("probe needs at least one held-out example")
        self.suite = suite
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels)
        self.every = every
        self.writer = writer
        self.results = []       # SuiteResult per probe, in epoch order
        self.probe_epochs: list = []  # epoch index of each probe

    def on_epoch_end(self, loop, epoch, logs):
        trainer = loop.trainer
        last = trainer.completed_epochs >= trainer.epochs
        if (epoch + 1) % self.every and not last and not loop.stopping:
            return
        result = self.suite.run(trainer.model, self.images, self.labels,
                                model_name=trainer.name)
        self.results.append(result)
        self.probe_epochs.append(epoch)
        history = trainer.history
        history.record_extra("probe_epoch", float(epoch))
        history.record_extra("probe_clean", result.clean_accuracy)
        for record in result.records:
            history.record_extra(f"probe_{record.attack}", record.accuracy)
        if self.writer is not None:
            self.writer.write({
                "event": "probe", "epoch": epoch,
                "clean_accuracy": result.clean_accuracy,
                "robust_accuracy": {r.attack: r.accuracy
                                    for r in result.records},
                "seconds": result.generation_seconds,
                "examples": int(len(self.images)),
            })
