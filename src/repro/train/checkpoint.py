"""Atomic full-state training checkpoints.

A checkpoint is everything a trainer needs to continue **bit-for-bit**
where a killed run stopped:

* every checkpointed module's parameters (classifier, and for GanDef the
  Table II discriminator),
* every optimizer's full state — step counter, learning rate, momentum
  velocity / Adam ``m``/``v`` moments (via ``Optimizer.state_dict``),
* the state of every stateful RNG stream: batch shuffling, Gaussian
  augmentation noise, GanDef's batch mixing, and any ``Dropout`` layer's
  generator,
* the epoch counter and the accumulated ``TrainingHistory``.

The archive is one ``.npz`` written atomically (temp file +
``os.replace``), so a crash mid-save leaves the previous checkpoint
intact.  Arrays are stored natively; everything else (RNG states, history,
scalars) rides in one JSON metadata entry — ``json`` handles the 128-bit
PCG64 state integers exactly.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from .. import backend as _backend
from ..nn.serialization import atomic_savez
from .callbacks import Callback

if TYPE_CHECKING:  # pragma: no cover
    from ..defenses.base import Trainer

__all__ = ["save_checkpoint", "load_checkpoint", "read_checkpoint_meta",
           "amend_checkpoint_meta", "Checkpointer", "CHECKPOINT_VERSION",
           "RESERVED_META_KEYS"]

CHECKPOINT_VERSION = 1
_META_KEY = "__checkpoint__"
_ARRAY_MARKER = "__array__"

#: Metadata keys the checkpoint format itself owns; extra metadata
#: (fine-tune provenance, promotion records) must not shadow them.
RESERVED_META_KEYS = ("version", "trainer", "backend", "workers", "state")


def _externalize(obj, arrays: Dict[str, np.ndarray]):
    """Replace ndarrays in a nested structure with archive references."""
    if isinstance(obj, np.ndarray):
        key = f"array_{len(arrays)}"
        arrays[key] = obj
        return {_ARRAY_MARKER: key}
    if isinstance(obj, dict):
        return {str(k): _externalize(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_externalize(v, arrays) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def _internalize(obj, archive):
    """Inverse of :func:`_externalize`."""
    if isinstance(obj, dict):
        if set(obj) == {_ARRAY_MARKER}:
            return archive[obj[_ARRAY_MARKER]]
        return {k: _internalize(v, archive) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_internalize(v, archive) for v in obj]
    return obj


def _check_extra_meta(extra: Dict) -> None:
    reserved = set(extra) & set(RESERVED_META_KEYS)
    if reserved:
        raise ValueError(
            f"extra metadata keys {sorted(reserved)} shadow reserved "
            f"checkpoint keys {RESERVED_META_KEYS}")
    # JSON-only: extra metadata rides next to (never inside) the state
    # payload, and consumers read it back verbatim.
    json.dumps(extra)


def save_checkpoint(trainer: "Trainer",
                    path: Union[str, os.PathLike],
                    extra_meta: Optional[Dict] = None) -> str:
    """Write ``trainer.state_dict()`` to ``path`` atomically.

    The archive records which array backend produced it and, when the
    trainer has a parallel engine attached, the worker count (provenance
    for perf forensics; the weights themselves are always host numpy and
    load under any backend, and the worker count is never load-bearing —
    resuming with a different one reproduces the uninterrupted run
    bit-for-bit).

    ``extra_meta`` merges additional JSON-serializable keys into the
    archive metadata (e.g. the hardening loop's fine-tune provenance).
    They ride through :func:`read_checkpoint_meta` verbatim and every
    existing consumer ignores them, so old checkpoints and new readers
    stay mutually compatible.
    """
    path = os.fspath(path)
    arrays: Dict[str, np.ndarray] = {}
    engine = getattr(trainer, "parallel_engine", None)
    base: Dict = {"version": CHECKPOINT_VERSION,
                  "trainer": trainer.name,
                  "backend": _backend.active().name,
                  "workers": engine.workers
                  if engine is not None else None,
                  "state": trainer.state_dict()}
    if extra_meta:
        _check_extra_meta(extra_meta)
        base.update(extra_meta)
    meta = _externalize(base, arrays)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return atomic_savez(path, arrays)


def amend_checkpoint_meta(path: Union[str, os.PathLike],
                          extra: Dict) -> Dict:
    """Merge ``extra`` into an existing checkpoint's metadata, atomically.

    The weight arrays are rewritten byte-for-byte unchanged; only the
    JSON metadata entry grows.  This is how a promotion records its
    provenance on the promoted archive after the fact (the candidate was
    written before the canary verdict existed).  ``extra`` must be
    JSON-serializable and must not touch the reserved keys.  Returns the
    merged (externalized) metadata dict.
    """
    path = os.fspath(path)
    _check_extra_meta(extra)
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(
                f"{path!r} is not a training checkpoint "
                "(weights-only archives load via nn.load_state)")
        arrays = {key: np.array(archive[key]) for key in archive.files
                  if key != _META_KEY}
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    meta.update(extra)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    atomic_savez(path, arrays)
    return meta


def read_checkpoint_meta(path: Union[str, os.PathLike]) -> Dict:
    """Read a checkpoint's full metadata without needing a trainer.

    Returns the internalized archive metadata: ``version``, the producing
    ``trainer`` name, the producing ``backend``, and the raw ``state``
    dict (module weights, optimizer moments, RNG streams, history).  This
    is the introspection entry point for consumers that must *construct*
    the right trainer before they can restore into one — the serving
    layer's :class:`~repro.serve.registry.ModelRegistry` reads the trainer
    name here, rebuilds the matching defense, then loads.
    """
    path = os.fspath(path)
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(
                f"{path!r} is not a training checkpoint "
                "(weights-only archives load via nn.load_state)")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        meta = _internalize(meta, archive)
    if meta.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {meta.get('version')!r} unsupported "
            f"(expected {CHECKPOINT_VERSION})")
    return meta


def load_checkpoint(trainer: "Trainer",
                    path: Union[str, os.PathLike]) -> Dict:
    """Restore a checkpoint into ``trainer`` in place.

    Returns the raw (internalized) state dict.  Raises ``ValueError`` on a
    trainer-kind mismatch — resuming a CLS checkpoint into a GanDef
    trainer, say — before any state is touched.
    """
    meta = read_checkpoint_meta(path)
    if meta.get("trainer") != trainer.name:
        raise ValueError(
            f"checkpoint was written by trainer {meta.get('trainer')!r}, "
            f"cannot resume into {trainer.name!r}")
    # ``backend`` is provenance, not a constraint: a checkpoint written
    # under any backend resumes under any other (weights are host numpy,
    # and the CPU backends are bit-identical by construction).
    trainer.load_state_dict(meta["state"])
    return meta["state"]


class Checkpointer(Callback):
    """Callback that snapshots the trainer during a run.

    Parameters
    ----------
    directory:
        Where ``checkpoint.npz`` lives.  Created on first save.
    every:
        Save cadence in epochs; the final epoch (and an early stop) always
        saves regardless, so ``--resume`` after any exit point works.
    filename:
        Archive name inside ``directory``.
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 every: int = 1, filename: str = "checkpoint.npz") -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = os.fspath(directory)
        self.every = every
        self.path = os.path.join(self.directory, filename)
        self.saves = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def try_resume(self, trainer: "Trainer") -> bool:
        """Restore the latest checkpoint if one exists; True on restore."""
        if not self.exists():
            return False
        load_checkpoint(trainer, self.path)
        return True

    def _save(self, trainer: "Trainer") -> None:
        save_checkpoint(trainer, self.path)
        self.saves += 1

    def on_train_start(self, loop):
        # A from-scratch run invalidates any previous run's checkpoint
        # immediately (mirroring MetricsLogger's log truncation): were the
        # stale archive left in place until the first new save, a kill in
        # that window followed by --resume would silently resurrect the
        # overwritten run.
        if loop.trainer.completed_epochs == 0 and self.exists():
            os.unlink(self.path)

    def on_epoch_end(self, loop, epoch, logs):
        trainer = loop.trainer
        due = (epoch + 1) % self.every == 0
        last = trainer.completed_epochs >= trainer.epochs
        # An early stop is handled by on_train_end (which sees the stop
        # reason the loop records after this event), not duplicated here.
        if (due or last) and not loop.stopping:
            self._save(trainer)

    def on_train_end(self, loop):
        # The early-stop save: off-cadence epochs are captured and the
        # stop reason is persisted so a resumed process sees why the run
        # halted.
        if loop.stop_reason is not None and loop.trainer.completed_epochs:
            self._save(loop.trainer)
