"""Data-parallel training with a deterministic ordered all-reduce.

Training was the last single-process stage in the pipeline (evaluation
went multi-process in PR 5); this module shards each mini-batch across
the same spawn-pool machinery (:mod:`repro.utils.pool`) and merges the
per-shard gradients so that **worker count never changes results**:

* **deterministic shard layout** — :func:`~repro.utils.pool.plan_shards`
  over the mini-batch, depending only on the batch size and
  ``shard_size``; 1, 2 or 16 workers schedule the same computation;
* **windowed dropout streams** — the only trainer randomness consumed
  *inside* a shard program is model-internal dropout; each shard draws
  its masks through a :class:`_WindowedRNG` that advances a clone of the
  stream to exactly the rows the full-batch draw assigns it (the
  ``rng_window`` technique PGD's random starts use).  All other streams
  (batch shuffling, Gaussian augmentation — whose ``rng.normal`` draws a
  variable number of raws and therefore cannot be windowed — GanDef's
  mix permutation and perturbations, adversarial crafting) stay in the
  parent: trainers prepare the full batch before handing it to the
  engine;
* **ordered all-reduce** — shard gradients are summed on the parent in
  fixed shard-index order, in the gradients' own single dtype (float32
  throughout the substrate), exactly mirroring how the in-process tape
  accumulates shard backwards run back-to-back; the merged gradient
  then takes **one** fused optimizer step through the ``ArrayOps``
  backend seam (the fused steps never mutate the gradient buffer — the
  aliasing tests pin this — so adopting worker-returned arrays is safe).

The bit-identity contract is *worker-count invariance*: ``workers=1``
runs the identical sharded computation in-process and is the baseline
the multi-process runs must match bit-for-bit (the same contract
``repro.eval.shard`` pins).  The legacy eager path — no engine attached
— remains byte-identical to previous releases; full-batch eager
gradients differ from shard-summed ones in BLAS contraction order, so
the engine never pretends to reproduce them.

Checkpoints record the worker count for provenance but never depend on
it: parent RNG streams advance by the same totals at any worker count,
so kill-and-resume across a worker-count change reproduces the
uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from math import prod
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import backend as _backend
from .. import nn
from .. import obs
from ..utils.pool import BlobDepot, Shard, SpawnPool, WORKER_STATE, \
    blob_fingerprint, plan_shards

__all__ = ["ParallelTrainEngine", "GradOutcome",
           "DEFAULT_TRAIN_SHARD_SIZE"]

#: Default rows per gradient shard.  Training's unit of work is one
#: mini-batch (typically 64 rows), so the default is small enough to
#: split one across several workers; eval's larger default
#: (:data:`repro.utils.pool.DEFAULT_SHARD_SIZE`) splits whole test sets.
DEFAULT_TRAIN_SHARD_SIZE = 16


# --------------------------------------------------------------------- #
# windowed dropout streams
# --------------------------------------------------------------------- #
class _WindowedRNG:
    """Replays exactly the rows of a full-batch uniform draw.

    ``F.dropout`` draws ``rng.random(x.shape)`` — one raw 64-bit PCG64
    step per float64 element, row-major — so the draws belonging to shard
    rows ``[start, stop)`` of a ``(total, *rest)`` full-batch draw occupy
    a contiguous window of the stream.  Each :meth:`random` call clones
    the base state, advances past all previously completed full-batch
    draws (``consumed``) plus this draw's preceding rows, and samples
    only the shard's rows.  ``consumed`` then advances by the *full*
    batch's draw so a program with several forwards (CLP runs two) keeps
    windowing against the right offsets.

    The final ``consumed`` is the stream's full-batch consumption for
    the step — identical for every shard — which the engine uses to
    advance the parent's real generator, keeping checkpointed stream
    positions invariant to the worker count.
    """

    def __init__(self, state: dict, start_row: int, total_rows: int) -> None:
        self._state = state
        self._start = start_row
        self._total = total_rows
        self.consumed = 0

    def random(self, shape) -> np.ndarray:
        shape = tuple(shape) if not isinstance(shape, tuple) else shape
        per_row = prod(shape[1:]) if len(shape) > 1 else 1
        clone = np.random.Generator(np.random.PCG64())
        clone.bit_generator.state = self._state
        clone.bit_generator.advance(self.consumed + self._start * per_row)
        out = clone.random(shape)
        self.consumed += self._total * per_row
        return out


def _dropout_slots(modules: Dict[str, nn.Module]
                   ) -> List[Tuple[str, nn.Dropout]]:
    """``(stream name, layer)`` for every dropout generator, named exactly
    as :meth:`repro.defenses.base.Trainer.rng_streams` names them — the
    engine advances the parent streams through that checkpoint surface."""
    slots: List[Tuple[str, nn.Dropout]] = []
    for mod_name, module in modules.items():
        for i, m in enumerate(module.modules()):
            if isinstance(m, nn.Dropout):
                slots.append((f"{mod_name}-dropout-{i}", m))
    return slots


# --------------------------------------------------------------------- #
# shard programs — the per-defense loss math, decomposed per shard
# --------------------------------------------------------------------- #
# Each program maps (modules, shard arrays, extra) -> (loss, report):
# ``loss`` is the tensor to differentiate (the shard's *mean*-reduced
# objective, exactly the trainer's legacy formulation applied to the
# shard rows), ``report`` the tensor whose scalar the trainer reports
# (GanDef's classifier step reports CE, not the minimax loss).  The
# engine scales both by shard.size / batch so shard sums reproduce the
# batch means.

def _program_vanilla(modules, arrays, extra):
    logits = modules["model"](nn.Tensor(arrays["images"]))
    loss = nn.softmax_cross_entropy(logits, arrays["labels"])
    return loss, loss


def _program_cls(modules, arrays, extra):
    logits = modules["model"](nn.Tensor(arrays["images"]))
    loss = nn.cls_loss(logits, arrays["labels"], extra["lam"])
    return loss, loss


def _program_clp(modules, arrays, extra):
    za = modules["model"](nn.Tensor(arrays["xa"]))
    zb = modules["model"](nn.Tensor(arrays["xb"]))
    loss = nn.clp_loss(za, arrays["ta"], zb, arrays["tb"], extra["lam"])
    return loss, loss


def _program_gandef_disc(modules, arrays, extra):
    # The model forward runs in train mode (dropout draws masks) but under
    # no_grad — only D's parameters receive gradients, like the legacy step.
    with nn.no_grad():
        logits = modules["model"](nn.Tensor(arrays["images"])).data
    probs = modules["discriminator"](nn.Tensor(logits))
    loss = nn.bce_on_probs(probs, arrays["source"])
    return loss, loss


def _program_gandef_cls(modules, arrays, extra):
    logits = modules["model"](nn.Tensor(arrays["images"]))
    ce = nn.softmax_cross_entropy(logits, arrays["labels"])
    gamma = extra["gamma"]
    if gamma > 0:
        probs = modules["discriminator"](logits)
        disc_term = nn.bce_on_probs(probs, arrays["source"])
        loss = ce - gamma * disc_term
    else:
        loss = ce
    return loss, ce


_PROGRAMS: Dict[str, Callable] = {
    "vanilla": _program_vanilla,
    "cls": _program_cls,
    "clp": _program_clp,
    "gandef-disc": _program_gandef_disc,
    "gandef-cls": _program_gandef_cls,
}


# --------------------------------------------------------------------- #
# task plumbing
# --------------------------------------------------------------------- #
def _flat_params(modules: Dict[str, nn.Module]) -> List[nn.Parameter]:
    """One canonical packing order, shared by parent and workers."""
    return [p for name in sorted(modules)
            for p in modules[name].parameters()]


@dataclass(frozen=True)
class _GradTask:
    """One shard's gradient computation.

    ``modules_path`` points at the trainer's module set, published once
    per engine lifetime (structure only — ``params`` carries the live
    weights each step, packed in :func:`_flat_params` order).  Dropout
    states are the parent streams' positions at the top of the step; the
    worker windows them per shard and reports the full-batch consumption
    back so the parent can advance its real generators.
    """

    kind: str
    shard: Shard
    arrays: Dict[str, np.ndarray]
    extra: Dict[str, Any]
    scale: float
    grad_module: str
    params: Tuple[np.ndarray, ...]
    modes: Dict[str, bool]
    dropout_states: Dict[str, dict]
    modules_path: str
    modules_fp: str


@dataclass
class GradOutcome:
    """One shard's finished gradients.

    ``grads`` follows ``modules[grad_module].parameters()`` order (an
    entry is ``None`` when the program never touched the parameter);
    ``report`` is the shard's scaled report scalar; ``consumed`` maps
    dropout stream names to the step's full-batch raw-draw totals;
    ``seconds`` is the worker-measured compute time (utilization
    accounting — the same convention as eval's ``CraftOutcome``).
    """

    shard: Shard
    grads: Tuple[Optional[np.ndarray], ...]
    report: float
    consumed: Dict[str, int]
    seconds: float = 0.0


def _worker_modules(path: str, fingerprint: str) -> Dict[str, nn.Module]:
    """Load the published module set once per (worker, engine)."""
    if WORKER_STATE.get("train-modules-fp") != fingerprint:
        with open(path, "rb") as handle:
            WORKER_STATE["train-modules"] = pickle.loads(handle.read())
        WORKER_STATE["train-modules-fp"] = fingerprint
    return WORKER_STATE["train-modules"]


def _run_shard(modules: Dict[str, nn.Module], task_kind: str,
               arrays: Dict[str, np.ndarray], extra: Dict[str, Any],
               scale: float) -> Tuple[nn.Tensor, float]:
    """Run one shard program and backprop its scaled loss; the windowed
    dropout proxies must already be installed by the caller."""
    loss, report = _PROGRAMS[task_kind](modules, arrays, extra)
    (loss * scale).backward()
    return loss, float(report.item()) * scale


def _grad_in_worker(task: _GradTask) -> GradOutcome:
    start = time.perf_counter()
    modules = _worker_modules(task.modules_path, task.modules_fp)
    b = _backend.active()
    for p, arr in zip(_flat_params(modules), task.params):
        p.data = b.asarray(arr)
    for name, training in task.modes.items():
        modules[name].train() if training else modules[name].eval()
    proxies: Dict[str, _WindowedRNG] = {}
    for stream, layer in _dropout_slots(modules):
        proxies[stream] = layer._rng = _WindowedRNG(
            task.dropout_states[stream], task.shard.start, task.shard.total)
    for module in modules.values():
        module.zero_grad()
    _, report = _run_shard(modules, task.kind, task.arrays, task.extra,
                           task.scale)
    grads = tuple(
        b.to_numpy(p.grad) if p.grad is not None else None
        for p in modules[task.grad_module].parameters())
    return GradOutcome(shard=task.shard, grads=grads, report=report,
                       consumed={name: proxy.consumed
                                 for name, proxy in proxies.items()},
                       seconds=time.perf_counter() - start)


# --------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------- #
class ParallelTrainEngine:
    """Shards each mini-batch's gradient across a worker pool.

    Attach to a trainer (:meth:`attach`); the defense trainers route
    their optimizer steps through :meth:`step` whenever an engine is
    attached and keep their legacy eager path otherwise.  ``workers=1``
    runs the identical sharded computation in-process — the baseline the
    multi-process runs are bit-identical to.  Pass ``pool`` to share one
    :class:`~repro.utils.pool.SpawnPool` with an
    :class:`~repro.eval.engine.AttackSuite` (async robustness probes and
    training interleave on the same workers instead of spawning two
    pools); borrowed pools survive :meth:`close`.
    """

    def __init__(self, trainer, workers: int = 1,
                 shard_size: Optional[int] = None,
                 pool: Optional[SpawnPool] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.trainer = trainer
        self.pool = pool if pool is not None \
            else (SpawnPool(workers) if workers > 1 else None)
        self._owns_pool = pool is None and self.pool is not None
        self.workers = self.pool.workers if self.pool is not None else 1
        self.shard_size = DEFAULT_TRAIN_SHARD_SIZE \
            if shard_size is None else int(shard_size)
        self._depot = BlobDepot(prefix="repro-train-modules-")
        self._published: Optional[Tuple[str, str]] = None  # (fp, path)
        self._merged: Optional[List[Optional[np.ndarray]]] = None
        # Observability: step/shard counters are one increment per
        # optimizer step; wall/busy/reduce timing and the utilization
        # gauge only run while tracing is enabled.
        self._tracer = obs.tracer()
        self._m_steps = obs.counter("repro_train_steps_total",
                                    help="sharded optimizer steps")
        self._m_shards = obs.counter("repro_train_shards_total",
                                     help="gradient shards computed")
        self._h_allreduce = obs.histogram(
            "repro_train_allreduce_seconds",
            help="parent-side ordered all-reduce seconds per traced step")
        self._g_util = obs.gauge(
            "repro_train_worker_utilization",
            help="busy/(wall*workers) for the most recent traced step")

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def attach(self) -> "ParallelTrainEngine":
        self.trainer.parallel_engine = self
        return self

    def close(self) -> None:
        """Detach, drop the published module blob, close an owned pool."""
        if self.trainer is not None \
                and getattr(self.trainer, "parallel_engine", None) is self:
            self.trainer.parallel_engine = None
        self._depot.clear()
        self._published = None
        if self._owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ParallelTrainEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def step(self, kind: str, arrays: Dict[str, np.ndarray],
             extra: Optional[Dict[str, Any]] = None,
             grad_module: str = "model", optimizer: str = "classifier",
             skip_non_finite: bool = False) -> float:
        """One sharded gradient step; returns the batch report scalar.

        ``arrays`` is the fully-prepared batch (augmentation, mixing and
        crafting already done by the trainer in the parent — those
        streams cannot be windowed); every array shares the leading
        batch dimension.  The merged gradient steps
        ``trainer.named_optimizers()[optimizer]``; only
        ``checkpoint_modules()[grad_module]``'s parameters receive
        gradients (GanDef's two half-steps pass different pairs).  With
        ``skip_non_finite``, a non-finite batch report skips the
        optimizer step (the CLS/CLP divergence behavior) — dropout
        streams still advance, as the forwards did run.
        """
        extra = extra or {}
        modules = self.trainer.checkpoint_modules()
        opt = self.trainer.named_optimizers()[optimizer]
        n = len(next(iter(arrays.values())))
        shards = plan_shards(n, self.shard_size)
        slots = _dropout_slots(modules)
        states = {name: layer._rng.bit_generator.state
                  for name, layer in slots}

        tr = self._tracer
        t0 = time.perf_counter() if tr is not None else 0.0
        if not self.parallel:
            total, consumed, busy_s, reduce_s = self._step_in_process(
                kind, arrays, extra, modules, shards, slots, states, n,
                grad_module)
        else:
            total, consumed, busy_s, reduce_s = self._step_pooled(
                kind, arrays, extra, modules, shards, states, n,
                grad_module)
        self._m_steps.inc()
        self._m_shards.inc(len(shards))
        if tr is not None:
            wall = time.perf_counter() - t0
            util = busy_s / (wall * self.workers) if wall > 0 else 0.0
            self._h_allreduce.observe(reduce_s)
            self._g_util.set(util)
            tr.emit("train.step", wall, kind=kind, shards=len(shards),
                    workers=self.workers, allreduce_s=reduce_s,
                    utilization=util)

        # Advance the parent streams by the step's full-batch draws —
        # the same totals at any worker count, so checkpointed stream
        # positions never depend on the schedule.
        for name, layer in slots:
            layer._rng.bit_generator.advance(consumed[name])

        if skip_non_finite and not np.isfinite(total):
            self._merged = None
            for module in modules.values():
                module.zero_grad()
            return total
        self._apply_grads(modules[grad_module])
        opt.step()
        for module in modules.values():
            module.zero_grad()
        return total

    # ------------------------------------------------------------------ #
    def _step_in_process(self, kind, arrays, extra, modules, shards,
                         slots, states, n, grad_module):
        """Run every shard sequentially on the live modules.

        Shards draw dropout through the same windowed proxies workers
        use (a multi-forward program like CLP interleaves its draws
        differently under naive sequential consumption), and each
        shard's finished gradient enters the same ordered reduce the
        pooled path uses.  Letting the tape accumulate *across* shards
        instead would group the additions differently whenever a
        parameter receives several updates within one backward (CLP's
        two forwards) — ``((g0+u1a)+u1b)`` is not ``(g0+(u1a+u1b))`` in
        floating point — so shard gradients are extracted per shard and
        summed exactly like worker outcomes.
        """
        b = _backend.active()
        originals = [layer._rng for _, layer in slots]
        timing = self._tracer is not None
        busy_s = 0.0
        reduce_s = 0.0
        t_red = 0.0
        total = 0.0
        consumed = {name: 0 for name, _ in slots}
        acc: Optional[List[Optional[np.ndarray]]] = None
        try:
            for shard in shards:
                t_shard = time.perf_counter() if timing else 0.0
                proxies = {}
                for name, layer in slots:
                    proxies[name] = layer._rng = _WindowedRNG(
                        states[name], shard.start, shard.total)
                for module in modules.values():
                    module.zero_grad()
                sliced = {key: value[shard.start:shard.stop]
                          for key, value in arrays.items()}
                _, report = _run_shard(modules, kind, sliced, extra,
                                       shard.size / n)
                total += report
                consumed = {name: proxy.consumed
                            for name, proxy in proxies.items()}
                # Copy: fast-path tapes hand gradients pooled buffers
                # that the next shard's backward may reuse.
                grads = [np.array(b.to_numpy(p.grad))
                         if p.grad is not None else None
                         for p in modules[grad_module].parameters()]
                if timing:
                    t_red = time.perf_counter()
                    busy_s += t_red - t_shard
                if acc is None:
                    acc = grads
                else:
                    for i, grad in enumerate(grads):
                        if grad is not None:
                            acc[i] += grad
                if timing:
                    reduce_s += time.perf_counter() - t_red
        finally:
            for (_, layer), rng in zip(slots, originals):
                layer._rng = rng
            for module in modules.values():
                module.zero_grad()
        self._merged = acc
        return total, consumed, busy_s, reduce_s

    def _step_pooled(self, kind, arrays, extra, modules, shards, states,
                     n, grad_module):
        """Fan shards out to the pool; ordered all-reduce on the parent.

        ``imap`` pickles tasks lazily, so shipping live parameter
        buffers is safe only because the optimizer step happens *after*
        every outcome of the step is consumed — by then all tasks were
        pickled.  The all-reduce adopts shard 0's arrays (worker-owned
        buffers stayed in the worker; these crossed the pipe) and sums
        the rest in shard-index order, single dtype, matching the
        in-process tape accumulation bit-for-bit.
        """
        fp, path = self._publish(modules)
        b = _backend.active()
        params = tuple(np.asarray(b.to_numpy(p.data))
                       for p in _flat_params(modules))
        modes = {name: bool(module._training)
                 for name, module in modules.items()}
        tasks = [
            _GradTask(kind=kind, shard=shard,
                      arrays={key: value[shard.start:shard.stop]
                              for key, value in arrays.items()},
                      extra=extra, scale=shard.size / n,
                      grad_module=grad_module, params=params, modes=modes,
                      dropout_states=states, modules_path=path,
                      modules_fp=fp)
            for shard in shards
        ]
        timing = self._tracer is not None
        busy_s = 0.0
        reduce_s = 0.0
        total = 0.0
        acc: Optional[List[Optional[np.ndarray]]] = None
        consumed: Dict[str, int] = {}
        for outcome in self.pool.imap(_grad_in_worker, tasks):
            busy_s += outcome.seconds
            total += outcome.report
            t_red = time.perf_counter() if timing else 0.0
            if acc is None:
                acc = list(outcome.grads)
            else:
                for i, grad in enumerate(outcome.grads):
                    if grad is not None:
                        acc[i] += grad
            if timing:
                reduce_s += time.perf_counter() - t_red
            consumed = outcome.consumed
        self._merged = acc
        return total, consumed, busy_s, reduce_s

    def _apply_grads(self, module: nn.Module) -> None:
        b = _backend.active()
        for p, grad in zip(module.parameters(), self._merged):
            if grad is not None:
                p.grad = b.asarray(grad)
        self._merged = None

    # ------------------------------------------------------------------ #
    def _publish(self, modules: Dict[str, nn.Module]) -> Tuple[str, str]:
        """Publish the module set once per engine lifetime; the blob only
        carries *structure* (params are overwritten per task), so it
        never needs re-publishing as training advances the weights."""
        if self._published is None:
            blob = pickle.dumps(modules)
            fp = blob_fingerprint(blob)
            self._published = (fp, self._depot.acquire(blob, fp))
        return self._published
