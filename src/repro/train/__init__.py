"""``repro.train`` — the callback-driven training subsystem.

The pieces:

* :class:`TrainLoop` — the epoch loop every defense trainer runs on,
  emitting ``on_train_start / epoch_start / batch_end / epoch_end /
  train_end`` events,
* :class:`Checkpointer` / :func:`save_checkpoint` /
  :func:`load_checkpoint` — atomic full-state checkpoints (weights,
  optimizer moments, RNG streams, epoch counter, history) whose resume is
  bit-identical to an uninterrupted run,
* :class:`StepLR` / :class:`CosineLR` / :class:`WarmupLR` — stateless
  learning-rate schedules,
* :class:`DivergenceGuard` — halts-and-flags the CLP ``nan`` blow-up,
* :class:`RobustnessProbe` — periodic :class:`~repro.eval.engine.AttackSuite`
  runs on a held-out slice during training,
* :class:`MetricsLogger` / :class:`JsonlWriter` — streaming JSONL metrics
  for Figure 5-style curves.
"""

from .callbacks import (
    Callback,
    CallbackList,
    DivergenceGuard,
    EpochLogs,
    HistoryCallback,
    LambdaCallback,
    PrintProgress,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from .loop import TrainLoop
from .metrics import JsonlWriter, MetricsLogger, read_jsonl
from .parallel import DEFAULT_TRAIN_SHARD_SIZE, ParallelTrainEngine
from .probe import RobustnessProbe
from .schedulers import CosineLR, LRScheduler, StepLR, WarmupLR, build_scheduler

__all__ = [
    "TrainLoop",
    "Callback",
    "CallbackList",
    "EpochLogs",
    "HistoryCallback",
    "DivergenceGuard",
    "LambdaCallback",
    "PrintProgress",
    "Checkpointer",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "CHECKPOINT_VERSION",
    "LRScheduler",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "build_scheduler",
    "JsonlWriter",
    "MetricsLogger",
    "read_jsonl",
    "RobustnessProbe",
    "ParallelTrainEngine",
    "DEFAULT_TRAIN_SHARD_SIZE",
]
