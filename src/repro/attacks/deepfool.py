"""DeepFool (Moosavi-Dezfooli et al.) — minimal-perturbation attack.

Used by the paper's generalizability study (Table IV): DeepFool iteratively
linearizes the classifier around the current iterate and steps to the
nearest decision boundary among the other classes, producing perturbations
with a pattern very different from signed-gradient attacks.

This implementation works per-batch but computes per-class gradients one
class at a time (the autodiff tape is scalar-seeded), and finally scales the
accumulated perturbation onto the same l-inf budget the paper gives PGD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import backend as _backend
from .. import nn
from .base import Attack, project_linf

__all__ = ["DeepFool"]


@dataclass
class DeepFool(Attack):
    """Iterative linearization toward the nearest class boundary.

    Following the reference implementation, the ``overshoot`` factor is
    applied to the **accumulated** perturbation: the per-iteration steps
    approach the boundary geometrically, and the final ``(1 + overshoot)``
    scaling pushes the iterate across it.
    """

    iterations: int = 20
    overshoot: float = 0.05
    num_candidate_classes: int = 10

    name: str = "deepfool"
    # DeepFool stops per example by definition — it seeks the *nearest*
    # boundary crossing, so an example leaves the active set the moment it
    # is fooled.  The flag is permanently on; there is no naive variant.
    early_stop: bool = True

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        adv = self._approach_boundary(model, images, labels)
        # Final overshoot across the boundary, re-projected onto the budget.
        overshot = images + (1.0 + self.overshoot) * (adv - images)
        return project_linf(overshot.astype(np.float32), images, self.eps)

    def _approach_boundary(self, model: nn.Module, images: np.ndarray,
                           labels: np.ndarray) -> np.ndarray:
        xp = _backend.active().xp
        adv = images.copy()
        n = len(images)
        active = xp.ones(n, dtype=bool)
        for _ in range(self.iterations):
            if not active.any():
                break
            idx = xp.flatnonzero(active)
            batch = adv[idx]
            logits, grads = self._logits_and_class_grads(model, batch)
            preds = logits.argmax(axis=1)
            still = preds == labels[idx]
            # Images already fooled leave the active set.
            active[idx[~still]] = False
            if not still.any():
                continue
            sel = idx[still]
            batch = batch[still]
            logits = logits[still]
            grads = grads[:, still]
            true = labels[sel]
            rows = xp.arange(len(sel))
            f_true = logits[rows, true]
            g_true = grads[true, rows]
            best_step = None
            best_ratio = xp.full(len(sel), np.inf, dtype=np.float64)
            num_classes = logits.shape[1]
            for k in range(min(num_classes, self.num_candidate_classes)):
                mask = k != true
                if not mask.any():
                    continue
                w = grads[k] - g_true                       # (b, *image)
                f = logits[:, k] - f_true                   # (b,)
                flat = w.reshape(len(sel), -1)
                norm = xp.abs(flat).sum(axis=1) + 1e-12     # dual of l-inf
                ratio = xp.abs(f) / norm
                ratio[~mask] = np.inf
                better = ratio < best_ratio
                if best_step is None:
                    best_step = xp.zeros_like(w)
                # l-inf optimal step: move along sign(w).
                step = ((xp.abs(f) + 1e-6) / norm)[:, None] \
                    * xp.sign(flat)
                best_step[better] = step[better].reshape(
                    (-1,) + w.shape[1:])
                best_ratio = xp.where(better, ratio, best_ratio)
            if best_step is None:
                break
            batch = batch + best_step.astype(np.float32)
            adv[sel] = project_linf(batch, images[sel], self.eps)
        return adv

    @staticmethod
    def _logits_and_class_grads(model: nn.Module, images: np.ndarray):
        """Return logits (b, K) and per-class input grads (K, b, *image)."""
        num_classes = None
        grads = []
        logits_out = None
        k = 0
        while True:
            x = nn.Tensor(images, requires_grad=True)
            logits = model(x)
            if num_classes is None:
                num_classes = logits.shape[1]
                logits_out = logits.data.copy()
            if k >= num_classes:
                break
            logits[:, k].sum().backward()
            grads.append(x.grad.copy())
            k += 1
        return logits_out, _backend.active().xp.stack(grads, axis=0)
