"""Projected Gradient Descent (Madry et al., Sec. II-A).

Like BIM but starting from a *random* point inside the eps-ball, optionally
restarted several times keeping the strongest example per image.  The paper
runs PGD with 40 iterations x 0.02 step on MNIST/Fashion-MNIST and
20 x 0.016 on CIFAR10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import nn
from ..utils.rng import derive_rng
from .base import Attack, input_gradient, project_linf

__all__ = ["PGD"]


@dataclass
class PGD(Attack):
    """Randomly initialized iterative signed-gradient ascent with restarts."""

    step: float = 0.02
    iterations: int = 40
    restarts: int = 1
    seed: int = 0

    name: str = "pgd"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if self.restarts <= 0:
            raise ValueError(f"restarts must be positive, got {self.restarts}")
        rng = derive_rng(self.seed, "pgd-init")
        best_adv = images.copy()
        best_loss = np.full(len(images), -np.inf, dtype=np.float64)
        for _ in range(self.restarts):
            start = images + rng.uniform(
                -self.eps, self.eps, size=images.shape).astype(np.float32)
            adv = project_linf(start, images, self.eps)
            for _ in range(self.iterations):
                grad = input_gradient(model, adv, labels)
                adv = adv + self.step * np.sign(grad)
                adv = project_linf(adv, images, self.eps)
            losses = self._per_example_loss(model, adv, labels)
            improved = losses > best_loss
            best_adv[improved] = adv[improved]
            best_loss[improved] = losses[improved]
        return best_adv

    @staticmethod
    def _per_example_loss(model: nn.Module, images: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            logits = model(nn.Tensor(images)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return -log_probs[np.arange(len(labels)), labels]
