"""Projected Gradient Descent (Madry et al., Sec. II-A).

Like BIM but starting from a *random* point inside the eps-ball, optionally
restarted several times keeping the strongest example per image.  The paper
runs PGD with 40 iterations x 0.02 step on MNIST/Fashion-MNIST and
20 x 0.016 on CIFAR10.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from .. import backend as _backend
from .. import nn
from ..data.preprocessing import BOX_HIGH, BOX_LOW
from ..utils.rng import derive_rng
from .base import Attack, input_gradient, masked_signed_ascent, project_linf

__all__ = ["PGD"]


@dataclass
class PGD(Attack):
    """Randomly initialized iterative signed-gradient ascent with restarts.

    With ``early_stop`` and a single restart (every shipped configuration),
    still-active examples follow the naive trajectory step for step;
    examples detected as fooled freeze instead of receiving further ascent
    steps.  Continued ascent on the true-class loss does not restore the
    true class in practice, so the measured accuracies coincide — pinned,
    not proven, by the seeded equivalence tests and the bench-grid
    verification.  With several restarts the two paths select differently
    by construction: the naive path keeps the highest-loss iterate per
    example across restarts, while the early-stopping path freezes an
    example at its first fooling restart (a recorded fooling is never
    traded away for a higher-loss iterate that happens to classify
    correctly) and skips it in later restarts — at least as strong an
    attack, measured per example.
    """

    step: float = 0.02
    iterations: int = 40
    restarts: int = 1
    seed: int = 0
    #: ``(start_row, total_rows)`` when this instance crafts one shard of
    #: a larger batch: the random starts replay exactly the rows the
    #: full-batch stream would have assigned to ``[start_row,
    #: start_row + b)`` of each restart's ``total_rows``-row draw (PCG64
    #: consumes one raw draw per uniform, so the stream position is
    #: ``(restart * total_rows + start_row) * C*H*W``).  ``None`` — the
    #: default and the only value the single-process engine ever uses —
    #: keeps the draw sequence byte-identical to the pre-shard code.
    rng_window: Optional[Tuple[int, int]] = None

    name: str = "pgd"

    def for_shard(self, start: int, total: int) -> "PGD":
        super().for_shard(start, total)  # validates the window
        return dataclasses.replace(self, rng_window=(int(start), int(total)))

    def _noise_draws(self, shape) -> Callable[[], np.ndarray]:
        """Per-restart random-start source honouring ``rng_window``."""
        if self.rng_window is None:
            rng = derive_rng(self.seed, "pgd-init")

            def draw() -> np.ndarray:
                return rng.uniform(-self.eps, self.eps,
                                   size=shape).astype(np.float32)
            return draw
        start_row, total = self.rng_window
        if start_row + shape[0] > total:
            raise ValueError(
                f"rng_window {self.rng_window} cannot cover a "
                f"{shape[0]}-row batch")
        per_example = int(np.prod(shape[1:]))
        restart_counter = iter(range(self.restarts))

        def draw_windowed() -> np.ndarray:
            restart = next(restart_counter)
            rng = derive_rng(self.seed, "pgd-init")
            rng.bit_generator.advance(
                (restart * total + start_row) * per_example)
            return rng.uniform(-self.eps, self.eps,
                               size=shape).astype(np.float32)
        return draw_windowed

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if self.restarts <= 0:
            raise ValueError(f"restarts must be positive, got {self.restarts}")
        b = _backend.active()
        xp = b.xp
        labels = xp.asarray(labels)
        draw = self._noise_draws(images.shape)
        if self.early_stop:
            return self._generate_early_stop(model, images, labels, draw)
        best_adv = images.copy()
        best_loss = xp.full(len(images), -np.inf, dtype=np.float64)
        for _ in range(self.restarts):
            # Random starts draw on the host stream and transfer, so the
            # stream consumed is identical on every backend.
            start = images + b.asarray(draw())
            adv = project_linf(start, images, self.eps)
            for _ in range(self.iterations):
                grad = input_gradient(model, adv, labels)
                # Fused step+projection; the superseded iterate (the fresh
                # projection above on the first pass, else the previous
                # step's pooled buffer) is donated back to the pool.
                new = b.signed_ascent(adv, grad, self.step, images,
                                      self.eps, BOX_LOW, BOX_HIGH)
                b.release(adv)
                adv = new
            if self.restarts == 1:
                # Single restart: the ascent result wins unconditionally
                # (losses are finite, best_loss is -inf), so the selection
                # forward pass would be a full-batch no-op.
                return adv
            losses = self._loss_from_logits(self._logits(model, adv), labels)
            improved = losses > best_loss
            best_adv[improved] = adv[improved]
            best_loss[improved] = losses[improved]
            # The selection copied what it keeps; recycle the iterate.
            b.release(adv)
        return best_adv

    def _generate_early_stop(self, model: nn.Module, images: np.ndarray,
                             labels: np.ndarray,
                             draw: Callable[[], np.ndarray]) -> np.ndarray:
        b = _backend.active()
        xp = b.xp
        best_adv = images.copy()
        fooled = xp.zeros(len(images), dtype=bool)
        best_loss = xp.full(len(images), -np.inf, dtype=np.float64)
        for _ in range(self.restarts):
            # The random start always draws for the full batch so the stream
            # consumed per restart is identical with and without early
            # stopping (and to the pre-engine implementation).
            start = project_linf(images + b.asarray(draw()),
                                 images, self.eps)
            if fooled.all():
                continue
            idx = xp.flatnonzero(~fooled)
            adv = masked_signed_ascent(model, start[idx], images[idx],
                                       labels[idx], self.step,
                                       self.iterations, self.eps)
            if self.restarts == 1:
                best_adv[idx] = adv
                return best_adv
            logits = self._logits(model, adv)
            sub_labels = labels[idx]
            now_fooled = logits.argmax(axis=1) != sub_labels
            best_adv[idx[now_fooled]] = adv[now_fooled]
            fooled[idx[now_fooled]] = True
            losses = self._loss_from_logits(logits, sub_labels)
            survivors = ~now_fooled
            improved = losses[survivors] > best_loss[idx[survivors]]
            chosen = idx[survivors][improved]
            best_adv[chosen] = adv[survivors][improved]
            best_loss[chosen] = losses[survivors][improved]
        return best_adv

    @staticmethod
    def _logits(model: nn.Module, images: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            return model(nn.Tensor(images)).data

    @staticmethod
    def _loss_from_logits(logits: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
        xp = _backend.active().xp
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - xp.log(xp.exp(shifted).sum(axis=1, keepdims=True))
        return -log_probs[xp.arange(len(labels)), labels]
