"""Basic Iterative Method (Kurakin et al., Sec. II-A).

FGSM applied iteratively with a per-step size ``step``; after every step the
iterate is clipped back into the eps-ball and the image box, which makes BIM
a linear-spline approximation of the loss landscape — stronger than FGSM at
the same budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import backend as _backend
from .. import nn
from ..data.preprocessing import BOX_HIGH, BOX_LOW
from .base import Attack, input_gradient, masked_signed_ascent

__all__ = ["BIM"]


@dataclass
class BIM(Attack):
    """Iterative signed-gradient ascent starting at the original image."""

    step: float = 0.1
    iterations: int = 10

    name: str = "bim"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        b = _backend.active()
        labels = b.xp.asarray(labels)
        adv = images.copy()
        if not self.early_stop:
            for _ in range(self.iterations):
                grad = input_gradient(model, adv, labels)
                # Fused step+projection; the superseded iterate (a plain
                # copy on the first pass, else the previous step's pooled
                # buffer) is donated back to the pool.
                new = b.signed_ascent(adv, grad, self.step, images,
                                      self.eps, BOX_LOW, BOX_HIGH)
                b.release(adv)
                adv = new
            return adv
        return masked_signed_ascent(model, adv, images, labels,
                                    self.step, self.iterations, self.eps)
