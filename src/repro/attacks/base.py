"""Attack abstractions shared by every generator in the Attack module.

All the paper's attacks are white-box: they differentiate the victim's loss
with respect to the *input* image.  The common plumbing here computes those
input gradients through the ``repro.nn`` tape, projects iterates back onto
the l-infinity ball around the original image, and applies the paper's
regulation function ``F`` (clip onto ``[-1, 1]``).

The crafting loops are backend-agnostic: array math goes through the active
backend's ``xp`` namespace (:mod:`repro.backend`), and ``Attack.generate``
moves the incoming batch onto the backend once up front, so the entire
iterate/projection/masking inner loop stays on-device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import backend as _backend
from .. import nn
from ..data.preprocessing import BOX_HIGH, BOX_LOW

__all__ = ["Attack", "input_gradient", "project_linf", "logits_and_input_grad",
           "still_correct", "masked_signed_ascent"]


def input_gradient(model: nn.Module, images: np.ndarray,
                   labels: np.ndarray) -> np.ndarray:
    """Gradient of the softmax cross-entropy w.r.t. the input pixels."""
    grad = logits_and_input_grad(model, images, labels)[1]
    assert grad is not None
    return grad


def logits_and_input_grad(model: nn.Module, images: np.ndarray,
                          labels: np.ndarray):
    """Forward logits plus the input gradient (for attacks that need both).

    A backend exposing ``loss_and_input_grad`` (the compiled backend's
    capture/replay seam) serves the pair from its plan cache when it can —
    bit-identical to the eager tape by the compiled backend's contract —
    and signals ``None`` to run the ordinary eager pass here.  The
    returned arrays may live in plan-owned buffers valid until the next
    gradient call on the same (model, shape): the attack loops consume
    them within the iteration.
    """
    hook = getattr(_backend.active(), "loss_and_input_grad", None)
    if hook is not None:
        result = hook(model, images, labels)
        if result is not None:
            return result
    x = nn.Tensor(images, requires_grad=True)
    logits = model(x)
    loss = nn.softmax_cross_entropy(logits, labels)
    loss.backward()
    return logits.data, x.grad


def project_linf(adv: np.ndarray, original: np.ndarray,
                 eps: float) -> np.ndarray:
    """Project onto the l-inf ball of radius ``eps`` around ``original``,
    then onto the valid image box via ``F``."""
    xp = _backend.active().xp
    adv = xp.clip(adv, original - eps, original + eps)
    # ``copy=False``: the clip result is already a fresh array; the cast is
    # a no-op pass-through whenever it is already float32.
    return xp.clip(adv, BOX_LOW, BOX_HIGH).astype(np.float32, copy=False)


def still_correct(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Boolean mask of examples the victim still classifies correctly.

    The early-stopping contract of every iterative attack: an example whose
    prediction already disagrees with its label has been fooled, so further
    gradient steps on it are wasted work — it leaves the active set frozen
    at its current iterate.
    """
    return logits.argmax(axis=1) == _backend.active().asarray(labels)


def masked_signed_ascent(model: nn.Module, adv: np.ndarray,
                         images: np.ndarray, labels: np.ndarray,
                         step: float, iterations: int, eps: float,
                         direction=None) -> np.ndarray:
    """The shared active-mask loop of the signed-gradient family.

    Each step starts with the forward pass the gradient needs anyway;
    examples it reveals as already fooled leave the active set frozen at
    their current iterate, and only the survivors are stepped and
    re-projected.  ``adv`` is updated in place and returned.

    ``direction(active, grad)`` maps the surviving examples' gradient batch
    to an *ascent source* whose sign is the step direction (default: the
    gradient itself); MIM passes a closure that folds the gradient into
    its per-example momentum state and returns the momentum.
    """
    b = _backend.active()
    xp = b.xp
    active = xp.arange(len(images))
    for _ in range(iterations):
        logits, grad = logits_and_input_grad(model, adv[active],
                                             labels[active])
        keep = still_correct(logits, labels[active])
        active = active[keep]
        if active.size == 0:
            break
        grad = grad[keep]
        src = grad if direction is None else direction(active, grad)
        # Fused sign -> mul -> add -> clip -> clip (same expressions as the
        # inline ``project_linf(adv + step * sign(src))`` this replaces).
        stepped = b.signed_ascent(adv[active], src, step,
                                  images[active], eps, BOX_LOW, BOX_HIGH)
        adv[active] = stepped
        b.release(stepped)
    return adv


@dataclass
class Attack:
    """Base class: every attack maps (model, images, labels) -> adversarial
    images of the same shape, inside the eps-ball and the image box.

    Attacks run the victim in ``eval()`` mode (dropout off) — gradients must
    describe the deployed model, not a stochastic one — and restore the
    previous mode afterwards.  They also *freeze* the victim's parameters
    for the duration: a white-box attack differentiates w.r.t. the input
    only, and the input gradient does not route through any parameter
    gradient, so skipping those accumulations changes nothing about the
    crafted examples (pinned bitwise by the cross-backend parity suite)
    while dropping the weight-gradient contractions from every inner-loop
    backward pass.  Flags are restored even on a crashing ``_generate``,
    mirroring the mode guarantee.

    ``early_stop`` opts iterative subclasses into per-example early
    stopping: each step begins with the forward pass the gradient needs
    anyway, so already-fooled examples are detected for free and drop out of
    the working batch.  Still-active examples follow the exact trajectory of
    the naive full-iteration path (per-example gradients are independent —
    the substrate has no batch-coupled layers and attacks run in eval mode);
    fooled examples are frozen at the first fooling iterate instead of being
    pushed further.  Single-step attacks ignore the flag.
    """

    eps: float

    name: str = "attack"
    early_stop: bool = False

    def for_shard(self, start: int, total: int) -> "Attack":
        """This attack, restricted to rows ``[start, start+b)`` of a
        ``total``-row batch.

        The sharded evaluation engine crafts each shard in its own
        worker; for the result to merge bit-for-bit with a full-batch
        call, an attack that consumes randomness must reproduce exactly
        the draws the full batch would have assigned to its rows.
        Deterministic attacks (every attack here except PGD) are already
        row-independent, so the base implementation returns ``self``;
        RNG-consuming subclasses override (see ``PGD.rng_window``).
        """
        if start < 0 or total < start:
            raise ValueError(f"invalid shard window [{start}, ..) "
                             f"of total {total}")
        return self

    def generate(self, model: nn.Module, images: np.ndarray,
                 labels: np.ndarray) -> np.ndarray:
        if self.eps < 0:
            raise ValueError(f"eps must be non-negative, got {self.eps}")
        b = _backend.active()
        images = b.asarray(images, dtype=np.float32)
        labels = b.asarray(labels)
        was_training = model.training
        model.eval()
        frozen = [p for p in model.parameters() if p.requires_grad]
        for p in frozen:
            p.requires_grad = False
        try:
            adv = self._generate(model, images, labels)
        finally:
            for p in frozen:
                p.requires_grad = True
            if was_training:
                model.train()
        return project_linf(adv, images, self.eps)

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, model: nn.Module, images: np.ndarray,
                 labels: np.ndarray) -> np.ndarray:
        return self.generate(model, images, labels)
