"""Fast Gradient Sign Method (Goodfellow et al., Sec. II-A).

Single gradient-ascent step on the victim's loss: each pixel moves by
``eps`` along the sign of the input gradient, then the result is regulated
back into the image box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import backend as _backend
from .. import nn
from .base import Attack, input_gradient

__all__ = ["FGSM"]


@dataclass
class FGSM(Attack):
    """One signed-gradient step of size ``eps``."""

    name: str = "fgsm"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        grad = input_gradient(model, images, labels)
        return images + self.eps * _backend.active().xp.sign(grad)
