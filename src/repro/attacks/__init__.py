"""``repro.attacks`` — the Fig. 3 Attack module.

White-box adversarial-example generators re-implemented from scratch on the
``repro.nn`` autodiff (the paper used CleverHans): FGSM, BIM, PGD for the
main evaluation grid, DeepFool and Carlini&Wagner for the Table IV
generalizability study.
"""

from .base import Attack, input_gradient, logits_and_input_grad, project_linf
from .bim import BIM
from .cw import CarliniWagner
from .deepfool import DeepFool
from .fgsm import FGSM
from .mim import MIM
from .pgd import PGD

__all__ = [
    "Attack",
    "input_gradient",
    "logits_and_input_grad",
    "project_linf",
    "FGSM",
    "BIM",
    "MIM",
    "PGD",
    "DeepFool",
    "CarliniWagner",
]
