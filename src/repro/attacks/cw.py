"""Carlini & Wagner attack (Table IV generalizability study).

The classic CW formulation optimizes, with Adam, over a change-of-variables
``x = tanh(w)`` that keeps iterates inside the image box, minimizing

    ||x - x0||_2^2 + c * f(x),   f(x) = max(Z_t - max_{i != t} Z_i, -kappa)

i.e. a margin loss on the pre-softmax logits ``Z``.  Per the paper the CW
examples "utilize the same hyper-parameter setting as PGD adversarial
examples", so the final perturbation is projected onto the same l-inf
budget.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from .. import backend as _backend
from .. import nn
from ..data.preprocessing import BOX_HIGH, BOX_LOW
from .base import Attack, project_linf

__all__ = ["CarliniWagner"]


@dataclass
class CarliniWagner(Attack):
    """CW-l2 with tanh box reparameterization, projected to the eps budget."""

    iterations: int = 30
    confidence: float = 0.0
    c: float = 1.0
    lr: float = 0.05

    name: str = "cw"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        xp = _backend.active().xp
        if self.early_stop:
            return self._generate_early_stop(model, images, labels)
        # Map images into tanh space.  Shrink slightly to keep atanh finite.
        scaled = xp.clip(images, BOX_LOW + 1e-4, BOX_HIGH - 1e-4)
        w0 = xp.arctanh(scaled).astype(np.float32)
        w = nn.Parameter(w0.copy(), name="cw.w")
        optimizer = nn.Adam([w], lr=self.lr)
        x0 = nn.Tensor(images)
        labels = xp.asarray(labels)
        onehot = nn.functional.one_hot(
            _backend.active().to_numpy(labels),
            self._num_classes(model, images))
        onehot_t = nn.Tensor(onehot)

        best_adv = images.copy()
        best_obj = xp.full(len(images), np.inf, dtype=np.float64)

        for _ in range(self.iterations):
            optimizer.zero_grad()
            x = nn.functional.tanh(w)
            logits = model(x)
            # margin loss f(x): true-class logit minus best other logit
            true_logit = (logits * onehot_t).sum(axis=1)
            other = logits + onehot_t * (-1e4)
            other_best = other.max(axis=1)
            margin = nn.functional.maximum(
                true_logit - other_best, -self.confidence)
            dist = ((x - x0) * (x - x0)).flatten_batch().sum(axis=1)
            loss = (dist + self.c * margin).sum()
            loss.backward()
            optimizer.step()

            # Track the best (lowest objective among successful) iterate.
            with nn.no_grad():
                x_np = xp.tanh(w.data)
                cur_logits = model(nn.Tensor(x_np)).data
            fooled = cur_logits.argmax(axis=1) != labels
            obj = dist.data + (~fooled) * 1e9
            better = obj < best_obj
            best_adv[better] = x_np[better]
            best_obj[better] = obj[better]

        return project_linf(best_adv, images, self.eps)

    def _generate_early_stop(self, model: nn.Module, images: np.ndarray,
                             labels: np.ndarray) -> np.ndarray:
        """Active-mask variant: an example leaves the optimization at its
        first fooling iterate.

        Adam state lives in full-batch arrays sliced alongside the working
        batch, so still-active examples see exactly the updates the naive
        path would apply (Adam is elementwise; the bias-correction step count
        is global in both paths).  Fooled examples keep their first recorded
        success instead of having their distortion refined further.

        Best-tracking and deactivation use exactly the naive path's
        recording criterion (fooled at the unprojected iterate), so the
        frozen iterate is the one the naive path would have recorded at
        that step.  The naive path may later *refine* it to a
        lower-distortion success; since every CW output passes through the
        trailing eps-projection, a borderline example whose two recorded
        successes straddle the budget differently could in principle
        diverge — the attack-suite equivalence tests and the bench-grid
        verification pin the accuracies equal on all shipped
        configurations.
        """
        b = _backend.active()
        xp = b.xp
        labels = xp.asarray(labels)
        scaled = xp.clip(images, BOX_LOW + 1e-4, BOX_HIGH - 1e-4)
        w = xp.arctanh(scaled).astype(np.float32)
        onehot = nn.functional.one_hot(b.to_numpy(labels),
                                       self._num_classes(model, images))
        onehot = b.asarray(onehot)

        best_adv = images.copy()
        best_obj = xp.full(len(images), np.inf, dtype=np.float64)
        m = xp.zeros_like(w)
        v = xp.zeros_like(w)
        # Read nn.Adam's own defaults so the hand-rolled update below can
        # never drift out of sync with the optimizer the naive path uses.
        adam_params = inspect.signature(nn.Adam.__init__).parameters
        b1, b2 = adam_params["betas"].default
        adam_eps = adam_params["eps"].default
        active = xp.arange(len(images))

        for t in range(1, self.iterations + 1):
            if active.size == 0:
                break
            w_t = nn.Parameter(w[active].copy(), name="cw.w")
            x = nn.functional.tanh(w_t)
            logits = model(x)
            onehot_t = nn.Tensor(onehot[active])
            true_logit = (logits * onehot_t).sum(axis=1)
            other = logits + onehot_t * (-1e4)
            other_best = other.max(axis=1)
            margin = nn.functional.maximum(
                true_logit - other_best, -self.confidence)
            x0 = nn.Tensor(images[active])
            dist = ((x - x0) * (x - x0)).flatten_batch().sum(axis=1)
            loss = (dist + self.c * margin).sum()
            loss.backward()
            grad = w_t.grad

            m[active] = b1 * m[active] + (1.0 - b1) * grad
            v[active] = b2 * v[active] + (1.0 - b2) * grad * grad
            m_hat = m[active] / (1.0 - b1 ** t)
            v_hat = v[active] / (1.0 - b2 ** t)
            w[active] = w[active] - self.lr * m_hat \
                / (xp.sqrt(v_hat) + adam_eps)

            with nn.no_grad():
                x_np = xp.tanh(w[active])
                cur_logits = model(nn.Tensor(x_np)).data
            fooled = cur_logits.argmax(axis=1) != labels[active]
            obj = dist.data + (~fooled) * 1e9
            better = obj < best_obj[active]
            sel = active[better]
            best_adv[sel] = x_np[better]
            best_obj[sel] = obj[better]
            active = active[~fooled]

        return project_linf(best_adv, images, self.eps)

    @staticmethod
    def _num_classes(model: nn.Module, images: np.ndarray) -> int:
        with nn.no_grad():
            return model(nn.Tensor(images[:1])).shape[1]
