"""Momentum Iterative Method (Dong et al.) — extension attack.

Not part of the paper's grid, but the natural "stronger future attack" its
adaptability discussion (Sec. V-A) anticipates: BIM with an accumulated,
l1-normalized gradient momentum, which stabilizes update directions and
transfers better between models.  Included so the adaptability claim can be
stress-tested against an attack none of the defenses saw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import backend as _backend
from .. import nn
from ..data.preprocessing import BOX_HIGH, BOX_LOW
from .base import Attack, input_gradient, masked_signed_ascent

__all__ = ["MIM"]


def _l1_normalized(grad: np.ndarray) -> np.ndarray:
    """Per-example l1 normalization of an input gradient batch."""
    xp = _backend.active().xp
    flat = xp.abs(grad).reshape(len(grad), -1).sum(axis=1)
    flat = xp.maximum(flat, 1e-12).reshape(-1, *([1] * (grad.ndim - 1)))
    return grad / flat


@dataclass
class MIM(Attack):
    """Iterative signed ascent on a momentum-accumulated gradient."""

    step: float = 0.1
    iterations: int = 10
    decay: float = 1.0

    name: str = "mim"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        b = _backend.active()
        xp = b.xp
        labels = xp.asarray(labels)
        adv = images.copy()
        velocity = xp.zeros_like(images)
        if not self.early_stop:
            for _ in range(self.iterations):
                grad = input_gradient(model, adv, labels)
                velocity = self.decay * velocity + _l1_normalized(grad)
                # Fused step+projection on the momentum's sign; the
                # superseded iterate is donated back to the pool.
                new = b.signed_ascent(adv, velocity, self.step, images,
                                      self.eps, BOX_LOW, BOX_HIGH)
                b.release(adv)
                adv = new
            return adv
        def momentum_direction(active, grad):
            velocity[active] = self.decay * velocity[active] \
                + _l1_normalized(grad)
            # The ascent source: masked_signed_ascent takes its sign.
            return velocity[active]

        return masked_signed_ascent(model, adv, images, labels,
                                    self.step, self.iterations, self.eps,
                                    direction=momentum_direction)
