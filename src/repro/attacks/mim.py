"""Momentum Iterative Method (Dong et al.) — extension attack.

Not part of the paper's grid, but the natural "stronger future attack" its
adaptability discussion (Sec. V-A) anticipates: BIM with an accumulated,
l1-normalized gradient momentum, which stabilizes update directions and
transfers better between models.  Included so the adaptability claim can be
stress-tested against an attack none of the defenses saw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from .base import Attack, input_gradient, project_linf

__all__ = ["MIM"]


@dataclass
class MIM(Attack):
    """Iterative signed ascent on a momentum-accumulated gradient."""

    step: float = 0.1
    iterations: int = 10
    decay: float = 1.0

    name: str = "mim"

    def _generate(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        adv = images.copy()
        velocity = np.zeros_like(images)
        for _ in range(self.iterations):
            grad = input_gradient(model, adv, labels)
            flat = np.abs(grad).reshape(len(grad), -1).sum(axis=1)
            flat = np.maximum(flat, 1e-12).reshape(-1, *([1] * (grad.ndim - 1)))
            velocity = self.decay * velocity + grad / flat
            adv = adv + self.step * np.sign(velocity)
            adv = project_linf(adv, images, self.eps)
        return adv
