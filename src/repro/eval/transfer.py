"""Black-box transfer evaluation — extension of the Fig. 3 framework.

The paper's background (Sec. II-A) distinguishes white-box from black-box
attacks, but its grid evaluates only white-box.  This module adds the
standard black-box proxy: craft adversarial examples against a *surrogate*
classifier and measure how well they transfer to the defended victim.  A
defense whose white-box robustness comes purely from gradient masking tends
to look *worse* under transfer than under direct attack.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn
from ..attacks.base import Attack
from .cache import AdversarialCache
from .metrics import test_accuracy
from .shard import ShardedCrafter

__all__ = ["TransferResult", "transfer_attack_accuracy"]


@dataclass
class TransferResult:
    """Accuracy of a victim under surrogate-crafted examples."""

    attack: str
    white_box_accuracy: float
    transfer_accuracy: float

    @property
    def transfer_gap(self) -> float:
        """Positive when the direct white-box attack is stronger than the
        transferred one — the expected situation for a real defense."""
        return self.transfer_accuracy - self.white_box_accuracy


def transfer_attack_accuracy(
    victim: nn.Module,
    surrogate: nn.Module,
    attacks: Dict[str, Attack],
    images: np.ndarray,
    labels: np.ndarray,
    cache: Optional[AdversarialCache] = None,
    workers: int = 1,
    shard_size: Optional[int] = None,
) -> Dict[str, TransferResult]:
    """Measure white-box vs transferred accuracy for each attack.

    ``surrogate`` plays the adversary's substitute model: examples are
    generated against it and replayed on ``victim``.  With a ``cache``, the
    surrogate-crafted batches (and the direct white-box ones) are replayed
    from disk on repeated runs — useful because the same surrogate examples
    are typically measured against several victims.  ``workers > 1``
    shards the crafting over a spawn pool (scoped to this call) with
    identical results; the study crafts twice per attack, so it
    parallelizes as well as the main grid.
    """
    if len(images) == 0:
        raise ValueError("transfer evaluation needs at least one example")

    crafter = ShardedCrafter(workers=workers, shard_size=shard_size)

    results: Dict[str, TransferResult] = {}
    with crafter if crafter.enabled else nullcontext():
        if crafter.enabled:
            # Whole grid per model: the victim and surrogate are each
            # published to the worker pool once, not once per attack.
            direct_all = crafter.craft_grid(attacks, victim, images,
                                            labels, cache=cache)
            transfer_all = crafter.craft_grid(attacks, surrogate, images,
                                              labels, cache=cache)
        for name, attack in attacks.items():
            if crafter.enabled:
                direct = direct_all[name]
                transferred = transfer_all[name]
            elif cache is not None:
                direct = cache.get_or_generate(attack, victim, images,
                                               labels)[0]
                transferred = cache.get_or_generate(attack, surrogate,
                                                    images, labels)[0]
            else:
                direct = attack(victim, images, labels)
                transferred = attack(surrogate, images, labels)
            results[name] = TransferResult(
                attack=name,
                white_box_accuracy=test_accuracy(victim, direct, labels),
                transfer_accuracy=test_accuracy(victim, transferred, labels),
            )
    return results
