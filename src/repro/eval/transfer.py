"""Black-box transfer evaluation — extension of the Fig. 3 framework.

The paper's background (Sec. II-A) distinguishes white-box from black-box
attacks, but its grid evaluates only white-box.  This module adds the
standard black-box proxy: craft adversarial examples against a *surrogate*
classifier and measure how well they transfer to the defended victim.  A
defense whose white-box robustness comes purely from gradient masking tends
to look *worse* under transfer than under direct attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn
from ..attacks.base import Attack
from .cache import AdversarialCache
from .metrics import test_accuracy

__all__ = ["TransferResult", "transfer_attack_accuracy"]


@dataclass
class TransferResult:
    """Accuracy of a victim under surrogate-crafted examples."""

    attack: str
    white_box_accuracy: float
    transfer_accuracy: float

    @property
    def transfer_gap(self) -> float:
        """Positive when the direct white-box attack is stronger than the
        transferred one — the expected situation for a real defense."""
        return self.transfer_accuracy - self.white_box_accuracy


def transfer_attack_accuracy(
    victim: nn.Module,
    surrogate: nn.Module,
    attacks: Dict[str, Attack],
    images: np.ndarray,
    labels: np.ndarray,
    cache: Optional[AdversarialCache] = None,
) -> Dict[str, TransferResult]:
    """Measure white-box vs transferred accuracy for each attack.

    ``surrogate`` plays the adversary's substitute model: examples are
    generated against it and replayed on ``victim``.  With a ``cache``, the
    surrogate-crafted batches (and the direct white-box ones) are replayed
    from disk on repeated runs — useful because the same surrogate examples
    are typically measured against several victims.
    """
    if len(images) == 0:
        raise ValueError("transfer evaluation needs at least one example")

    def craft(attack: Attack, model: nn.Module) -> np.ndarray:
        if cache is not None:
            return cache.get_or_generate(attack, model, images, labels)[0]
        return attack(model, images, labels)

    results: Dict[str, TransferResult] = {}
    for name, attack in attacks.items():
        direct = craft(attack, victim)
        transferred = craft(attack, surrogate)
        results[name] = TransferResult(
            attack=name,
            white_box_accuracy=test_accuracy(victim, direct, labels),
            transfer_accuracy=test_accuracy(victim, transferred, labels),
        )
    return results
