"""Text reports in the layout of the paper's tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .framework import EvaluationResult

__all__ = ["format_accuracy_table", "format_timing_table", "format_series"]


def format_accuracy_table(results: Sequence[EvaluationResult],
                          example_types: Sequence[str]) -> str:
    """Render results as a Table III-style grid (rows = defenses,
    columns = example types, cells = percent accuracy)."""
    header = f"{'defense':14s}" + "".join(f"{t:>10s}" for t in example_types)
    lines = [header, "-" * len(header)]
    for r in results:
        cells = "".join(
            f"{r.accuracy.get(t, float('nan')) * 100.0:9.2f}%"
            for t in example_types
        )
        lines.append(f"{r.defense:14s}{cells}")
    return "\n".join(lines)


def format_timing_table(results: Sequence[EvaluationResult]) -> str:
    """Render per-epoch training time, Figure 5-style."""
    header = f"{'defense':14s}{'sec/epoch':>12s}"
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(f"{r.defense:14s}{r.mean_epoch_seconds:12.3f}")
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, List[float]]) -> str:
    """Render named numeric series (loss curves) as aligned columns."""
    lines = [title]
    for name, values in series.items():
        rendered = " ".join(
            f"{v:8.3f}" if v == v and abs(v) != float("inf") else "     nan"
            for v in values
        )
        lines.append(f"  {name:28s} {rendered}")
    return "\n".join(lines)
