"""Sharded, optionally multi-process adversarial crafting.

The evaluation grid — (defense model) x (attack) x (test batch) — is
embarrassingly parallel across test examples, yet crafting has always run
on a single core.  This module partitions a test batch into deterministic
contiguous shards and crafts every (attack, shard) cell in a spawn-safe
worker pool, such that the merged result is **bit-for-bit** the
single-process result:

* **deterministic layout** — :func:`plan_shards` depends only on the batch
  size and the configured ``shard_size``, never on the worker count, so
  running with 1, 2 or 16 workers schedules the *same* computation;
* **per-shard RNG windows** — RNG-consuming attacks (PGD's random starts)
  are rewound to exactly the draws the full-batch stream assigns to their
  rows (:meth:`repro.attacks.base.Attack.for_shard`), so sharding never
  changes the randomness an example sees;
* **order-preserving merge** — shard outputs concatenate back in row
  order, and scoring happens in the parent on the merged batch through
  the same ``predict_labels`` path the single-process engine uses;
* **shared crash-safe cache** — every worker opens its own
  :class:`~repro.eval.cache.AdversarialCache` over the same directory;
  entries publish by atomic write-then-rename and recency lives in the
  lock-guarded sidecar journal, so concurrent workers never tear or
  resurrect entries.

Workers are **spawn**-started (fork is unsafe under threads and
unavailable on some platforms), live in a persistent pool reused across
suite runs, and receive the victim model pickled once per run (re-used
across that run's tasks, memoized per worker by fingerprint).  The
``repro`` package must therefore be importable in a fresh interpreter
(``PYTHONPATH=src`` or an installed package), and pool-owning callers
should ``close()`` when done — the engine and runners do.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, \
    Tuple

import numpy as np

from .. import backend as _backend
from ..attacks.base import Attack
from .cache import AdversarialCache, fingerprint_model

__all__ = ["Shard", "plan_shards", "ShardedCrafter", "CraftOutcome",
           "DEFAULT_SHARD_SIZE"]

#: Default rows per shard when the caller does not pin ``shard_size``.
#: Chosen so typical eval batches (96-10000 rows) split into enough
#: shards to feed several workers while each shard still amortizes its
#: forward-pass and IPC overhead.  Independent of the worker count by
#: design: the shard layout — and therefore the computation — must not
#: change when the pool grows.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """One contiguous row range ``[start, stop)`` of a ``total``-row batch."""

    index: int
    start: int
    stop: int
    total: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def plan_shards(n: int, shard_size: Optional[int] = None) -> List[Shard]:
    """Deterministic contiguous partition of ``n`` rows.

    The last shard is ragged when ``shard_size`` does not divide ``n``;
    a ``shard_size >= n`` (including the ``workers > num_examples``
    degenerate case upstream) yields a single full shard.
    """
    if n <= 0:
        raise ValueError(f"cannot shard an empty batch (n={n})")
    size = DEFAULT_SHARD_SIZE if shard_size is None else int(shard_size)
    if size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [Shard(index=i, start=start, stop=min(start + size, n), total=n)
            for i, start in enumerate(range(0, n, size))]


@dataclass
class CraftOutcome:
    """One finished (attack, shard) cell."""

    attack_name: str
    shard: Shard
    adv: np.ndarray
    seconds: float
    from_cache: bool


@dataclass(frozen=True)
class _CraftTask:
    """Everything a worker needs to craft one (attack, shard) cell.

    ``model_path`` points at the pickled victim, published **once per
    run** to a temp file by the crafter's model depot (``None`` on the
    in-process path, which crafts against the live model) — shipping the
    weights through the task pipe per cell would scale IPC with (tasks x
    model size).  ``model_fp`` doubles as the worker-side memoization
    key and, when a cache is attached, the exact weight fingerprint the
    single-process cache keys use.
    """

    attack_name: str
    attack: Attack
    shard: Shard
    images: np.ndarray
    labels: np.ndarray
    model_path: Optional[str]
    model_fp: str
    cache_spec: Optional[dict]


def _craft_cell(attack: Attack, model, images: np.ndarray,
                labels: np.ndarray, cache: Optional[AdversarialCache],
                model_fp: Optional[str]) -> Tuple[np.ndarray, bool, float]:
    """The one crafting code path, shared by parent and workers."""
    start = time.perf_counter()
    if cache is not None:
        adv, hit = cache.get_or_generate(attack, model, images, labels,
                                         model_fingerprint=model_fp)
    else:
        adv = _backend.active().to_numpy(attack(model, images, labels))
        hit = False
    return adv, hit, time.perf_counter() - start


# --------------------------------------------------------------------- #
# worker-process side (spawn target functions must be module-level)
# --------------------------------------------------------------------- #
_WORKER: Dict[str, Any] = {}


def _init_worker(backend_name: str) -> None:
    """Pool initializer: pin the parent's active backend in the child."""
    _backend.use(backend_name)
    _WORKER.clear()


def _worker_model(path: str, fingerprint: str):
    """Load the published victim once per (worker, model) and reuse it."""
    if _WORKER.get("model_fp") != fingerprint:
        with open(path, "rb") as handle:
            _WORKER["model"] = pickle.loads(handle.read())
        _WORKER["model_fp"] = fingerprint
    return _WORKER["model"]


def _worker_cache(spec: Optional[dict]) -> Optional[AdversarialCache]:
    if spec is None:
        return None
    key = (spec["root"], spec.get("max_bytes"))
    if _WORKER.get("cache_key") != key:
        # keep_in_memory=False: a worker sees each shard key at most once
        # per run, so the in-memory layer would only duplicate the batch.
        _WORKER["cache"] = AdversarialCache(spec["root"],
                                            keep_in_memory=False,
                                            max_bytes=spec.get("max_bytes"))
        _WORKER["cache_key"] = key
    return _WORKER["cache"]


def _craft_in_worker(task: _CraftTask) -> CraftOutcome:
    assert task.model_path is not None
    model = _worker_model(task.model_path, task.model_fp)
    cache = _worker_cache(task.cache_spec)
    adv, hit, seconds = _craft_cell(task.attack, model, task.images,
                                    task.labels, cache, task.model_fp)
    return CraftOutcome(attack_name=task.attack_name, shard=task.shard,
                        adv=adv, seconds=seconds, from_cache=hit)


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class ShardedCrafter:
    """Shard planner plus (for ``workers > 1``) a persistent spawn pool.

    ``workers=1`` with an explicit ``shard_size`` runs the identical
    sharded computation in-process — the equality tests lean on this:
    worker count only changes *scheduling*, never results.  The pool is
    created lazily under the backend active at first use and respawned if
    a later call runs under a different backend.
    """

    def __init__(self, workers: int = 1,
                 shard_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.shard_size = shard_size
        self._pool = None
        self._pool_backend: Optional[str] = None
        # Model depot: fingerprint -> [temp path, refcount].  One pickled
        # blob per run on disk (page-cached for the workers) instead of
        # one copy per task through the pool pipe.
        self._models: Dict[str, list] = {}

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def enabled(self) -> bool:
        """Does this crafter change anything relative to the legacy
        single-process, single-shard engine?"""
        return self.parallel or self.shard_size is not None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        import multiprocessing

        backend_name = _backend.active().name
        if self._pool is not None and self._pool_backend != backend_name:
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(self.workers, initializer=_init_worker,
                                  initargs=(backend_name,))
            self._pool_backend = backend_name
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and drop published models
        (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_backend = None
        for path, _ in self._models.values():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._models.clear()

    # ------------------------------------------------------------------ #
    # model depot
    # ------------------------------------------------------------------ #
    def prepare_model(self, model, cache: Optional[AdversarialCache]):
        """Per-run model context: ``(fingerprint, blob, path, cache_spec)``.

        The single home of the keying policy: with a cache attached the
        fingerprint must be :func:`fingerprint_model` so sharded and
        unsharded runs agree on the weight hash; without one, a cheap
        hash of the pickled blob only serves worker memoization.  The
        blob is published to the depot (refcounted — release with
        :meth:`release_model` when the run's outcomes are consumed);
        ``blob``/``path``/``cache_spec`` are ``None`` on the in-process
        path, which uses the live model and the caller's cache instance.
        """
        blob = pickle.dumps(model) if self.parallel else None
        if cache is not None:
            model_fp = fingerprint_model(model)
        else:
            model_fp = model_blob_fingerprint(blob) if blob else ""
        path = self._acquire_model(blob, model_fp) if blob else None
        cache_spec = cache.spec() \
            if (cache is not None and self.parallel) else None
        return model_fp, blob, path, cache_spec

    def _acquire_model(self, blob: bytes, fingerprint: str) -> str:
        entry = self._models.get(fingerprint)
        if entry is None:
            fd, path = tempfile.mkstemp(
                prefix=f"repro-shard-model-{fingerprint[:12]}-",
                suffix=".pkl")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            entry = self._models[fingerprint] = [path, 0]
        entry[1] += 1
        return entry[0]

    def release_model(self, fingerprint: str) -> None:
        """Drop one reference to a published model; unlink at zero."""
        entry = self._models.get(fingerprint)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            try:
                os.unlink(entry[0])
            except OSError:
                pass
            del self._models[fingerprint]

    def __enter__(self) -> "ShardedCrafter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def build_tasks(self, attacks: Dict[str, Attack], images: np.ndarray,
                    labels: np.ndarray, model_fp: str,
                    model_path: Optional[str],
                    cache_spec: Optional[dict]) -> List[_CraftTask]:
        """Grid tasks in deterministic (attack order, shard order)."""
        shards = plan_shards(len(images), self.shard_size)
        return [
            _CraftTask(attack_name=name,
                       attack=attack.for_shard(shard.start, shard.total),
                       shard=shard,
                       images=images[shard.start:shard.stop],
                       labels=labels[shard.start:shard.stop],
                       model_path=model_path,
                       model_fp=model_fp,
                       cache_spec=cache_spec)
            for name, attack in attacks.items()
            for shard in shards
        ]

    def run_tasks(self, tasks: Sequence[_CraftTask], model,
                  cache: Optional[AdversarialCache]
                  ) -> Iterator[CraftOutcome]:
        """Yield outcomes in task order.

        In-process when ``workers == 1`` (live model, the caller's own
        cache instance with its in-memory layer); otherwise streamed from
        the pool, so the caller can merge and score attack ``i`` while
        attack ``i+1`` is still crafting.
        """
        if not self.parallel:
            for task in tasks:
                adv, hit, seconds = _craft_cell(task.attack, model,
                                                task.images, task.labels,
                                                cache, task.model_fp)
                yield CraftOutcome(attack_name=task.attack_name,
                                   shard=task.shard, adv=adv,
                                   seconds=seconds, from_cache=hit)
            return
        yield from self._ensure_pool().imap(_craft_in_worker, tasks)

    def run_tasks_async(self, tasks: Sequence[_CraftTask]):
        """Submit the whole grid without blocking; returns the pool's
        ``AsyncResult`` (``ready()`` / ``get()``)."""
        return self._ensure_pool().map_async(_craft_in_worker, tasks)

    # ------------------------------------------------------------------ #
    def craft_grid(self, attacks: Dict[str, Attack], model,
                   images: np.ndarray, labels: np.ndarray,
                   cache: Optional[AdversarialCache] = None
                   ) -> Dict[str, np.ndarray]:
        """Craft every attack's full batch sharded against one model.

        The standalone entry point for callers outside the suite (the
        transfer study crafts a whole grid against the victim, then the
        surrogate).  Publishing the model once for the *whole* grid
        matters twice over: one pickle/temp-file per model instead of
        one per attack, and workers keep their memoized model instead of
        reloading every time the fingerprint alternates.
        """
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        model_fp, _, path, cache_spec = self.prepare_model(model, cache)
        try:
            tasks = self.build_tasks(attacks, images, labels,
                                     model_fp, path, cache_spec)
            outcomes = list(self.run_tasks(tasks, model, cache))
        finally:
            self.release_model(model_fp)
        grouped: Dict[str, List[CraftOutcome]] = {}
        for outcome in outcomes:
            grouped.setdefault(outcome.attack_name, []).append(outcome)
        return {name: merge_outcomes(cells)
                for name, cells in grouped.items()}

    def craft(self, attack: Attack, model, images: np.ndarray,
              labels: np.ndarray, cache: Optional[AdversarialCache] = None
              ) -> np.ndarray:
        """Craft one attack's full batch sharded; returns the merged rows."""
        return self.craft_grid({"attack": attack}, model, images, labels,
                               cache=cache)["attack"]


def model_blob_fingerprint(blob: bytes) -> str:
    """Cheap worker-memoization key when no cache fingerprint is needed."""
    return hashlib.sha256(blob).hexdigest()


def merge_outcomes(outcomes: Iterable[CraftOutcome]) -> np.ndarray:
    """Order-preserving merge of one attack's shard outputs."""
    ordered = sorted(outcomes, key=lambda o: o.shard.index)
    return np.concatenate([o.adv for o in ordered])
