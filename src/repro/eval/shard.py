"""Sharded, optionally multi-process adversarial crafting.

The evaluation grid — (defense model) x (attack) x (test batch) — is
embarrassingly parallel across test examples, yet crafting has always run
on a single core.  This module partitions a test batch into deterministic
contiguous shards and crafts every (attack, shard) cell in a spawn-safe
worker pool, such that the merged result is **bit-for-bit** the
single-process result:

* **deterministic layout** — :func:`plan_shards` depends only on the batch
  size and the configured ``shard_size``, never on the worker count, so
  running with 1, 2 or 16 workers schedules the *same* computation;
* **per-shard RNG windows** — RNG-consuming attacks (PGD's random starts)
  are rewound to exactly the draws the full-batch stream assigns to their
  rows (:meth:`repro.attacks.base.Attack.for_shard`), so sharding never
  changes the randomness an example sees;
* **order-preserving merge** — shard outputs concatenate back in row
  order, and scoring happens in the parent on the merged batch through
  the same ``predict_labels`` path the single-process engine uses;
* **shared crash-safe cache** — every worker opens its own
  :class:`~repro.eval.cache.AdversarialCache` over the same directory;
  entries publish by atomic write-then-rename and recency lives in the
  lock-guarded sidecar journal, so concurrent workers never tear or
  resurrect entries.

The parallel substrate — spawn pool, shard planning, blob depot — lives
in :mod:`repro.utils.pool`, shared with the data-parallel training engine
(:mod:`repro.train.parallel`); this module keeps only the crafting-side
task/worker/merge logic.  A :class:`ShardedCrafter` can either own its
pool or borrow a caller's :class:`~repro.utils.pool.SpawnPool` (``repro
train --workers N`` drives training *and* async probe crafting through
one pool); borrowed pools are left running at :meth:`close`.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple

import numpy as np

from .. import backend as _backend
from .. import obs
from ..attacks.base import Attack
from ..utils.pool import BlobDepot, DEFAULT_SHARD_SIZE, Shard, SpawnPool, \
    WORKER_STATE, blob_fingerprint, plan_shards
from .cache import AdversarialCache, fingerprint_model

__all__ = ["Shard", "plan_shards", "ShardedCrafter", "CraftOutcome",
           "DEFAULT_SHARD_SIZE"]


@dataclass
class CraftOutcome:
    """One finished (attack, shard) cell."""

    attack_name: str
    shard: Shard
    adv: np.ndarray
    seconds: float
    from_cache: bool


@dataclass(frozen=True)
class _CraftTask:
    """Everything a worker needs to craft one (attack, shard) cell.

    ``model_path`` points at the pickled victim, published **once per
    run** to a temp file by the crafter's model depot (``None`` on the
    in-process path, which crafts against the live model) — shipping the
    weights through the task pipe per cell would scale IPC with (tasks x
    model size).  ``model_fp`` doubles as the worker-side memoization
    key and, when a cache is attached, the exact weight fingerprint the
    single-process cache keys use.
    """

    attack_name: str
    attack: Attack
    shard: Shard
    images: np.ndarray
    labels: np.ndarray
    model_path: Optional[str]
    model_fp: str
    cache_spec: Optional[dict]


def _craft_cell(attack: Attack, model, images: np.ndarray,
                labels: np.ndarray, cache: Optional[AdversarialCache],
                model_fp: Optional[str],
                clock: Callable[[], float] = time.perf_counter
                ) -> Tuple[np.ndarray, bool, float]:
    """The one crafting code path, shared by parent and workers."""
    start = clock()
    if cache is not None:
        adv, hit = cache.get_or_generate(attack, model, images, labels,
                                         model_fingerprint=model_fp)
    else:
        adv = _backend.active().to_numpy(attack(model, images, labels))
        hit = False
    return adv, hit, clock() - start


# --------------------------------------------------------------------- #
# worker-process side (spawn target functions must be module-level)
# --------------------------------------------------------------------- #
def _worker_model(path: str, fingerprint: str):
    """Load the published victim once per (worker, model) and reuse it."""
    if WORKER_STATE.get("eval-model-fp") != fingerprint:
        with open(path, "rb") as handle:
            WORKER_STATE["eval-model"] = pickle.loads(handle.read())
        WORKER_STATE["eval-model-fp"] = fingerprint
    return WORKER_STATE["eval-model"]


def _worker_cache(spec: Optional[dict]) -> Optional[AdversarialCache]:
    if spec is None:
        return None
    key = (spec["root"], spec.get("max_bytes"))
    if WORKER_STATE.get("eval-cache-key") != key:
        # keep_in_memory=False: a worker sees each shard key at most once
        # per run, so the in-memory layer would only duplicate the batch.
        WORKER_STATE["eval-cache"] = AdversarialCache(
            spec["root"], keep_in_memory=False,
            max_bytes=spec.get("max_bytes"))
        WORKER_STATE["eval-cache-key"] = key
    return WORKER_STATE["eval-cache"]


def _craft_in_worker(task: _CraftTask) -> CraftOutcome:
    assert task.model_path is not None
    model = _worker_model(task.model_path, task.model_fp)
    cache = _worker_cache(task.cache_spec)
    adv, hit, seconds = _craft_cell(task.attack, model, task.images,
                                    task.labels, cache, task.model_fp)
    return CraftOutcome(attack_name=task.attack_name, shard=task.shard,
                        adv=adv, seconds=seconds, from_cache=hit)


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class ShardedCrafter:
    """Shard planner plus (for ``workers > 1``) a persistent spawn pool.

    ``workers=1`` with an explicit ``shard_size`` runs the identical
    sharded computation in-process — the equality tests lean on this:
    worker count only changes *scheduling*, never results.  The pool is
    created lazily under the backend active at first use and respawned if
    a later call runs under a different backend.  Passing ``pool`` makes
    the crafter borrow an existing :class:`~repro.utils.pool.SpawnPool`
    (its worker count wins); borrowed pools survive :meth:`close`.
    """

    def __init__(self, workers: int = 1,
                 shard_size: Optional[int] = None,
                 pool: Optional[SpawnPool] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.pool = pool if pool is not None else SpawnPool(workers)
        self._owns_pool = pool is None
        self.workers = self.pool.workers
        self.shard_size = shard_size
        self.clock = clock or time.perf_counter
        # Model depot: one pickled blob per run on disk (page-cached for
        # the workers) instead of one copy per task through the pool pipe.
        self._models = BlobDepot(prefix="repro-shard-model-")
        self._tracer = obs.tracer()
        self._m_shards = obs.counter("repro_eval_shards_total",
                                     help="(attack, shard) cells crafted")
        self._m_cached = obs.counter(
            "repro_eval_shard_cache_hits_total",
            help="cells served from the adversarial cache")
        self._h_shard = obs.histogram(
            "repro_eval_shard_seconds",
            help="crafting seconds per (attack, shard) cell",
            buckets=obs.WORK_SECONDS_BUCKETS)

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def enabled(self) -> bool:
        """Does this crafter change anything relative to the legacy
        single-process, single-shard engine?"""
        return self.parallel or self.shard_size is not None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        return self.pool.ensure()

    def close(self) -> None:
        """Shut an owned worker pool down and drop published models
        (idempotent).  Borrowed pools are the owner's to close."""
        if self._owns_pool:
            self.pool.close()
        self._models.clear()

    # ------------------------------------------------------------------ #
    # model depot
    # ------------------------------------------------------------------ #
    def prepare_model(self, model, cache: Optional[AdversarialCache]):
        """Per-run model context: ``(fingerprint, blob, path, cache_spec)``.

        The single home of the keying policy: with a cache attached the
        fingerprint must be :func:`fingerprint_model` so sharded and
        unsharded runs agree on the weight hash; without one, a cheap
        hash of the pickled blob only serves worker memoization.  The
        blob is published to the depot (refcounted — release with
        :meth:`release_model` when the run's outcomes are consumed);
        ``blob``/``path``/``cache_spec`` are ``None`` on the in-process
        path, which uses the live model and the caller's cache instance.
        """
        blob = pickle.dumps(model) if self.parallel else None
        if cache is not None:
            model_fp = fingerprint_model(model)
        else:
            model_fp = model_blob_fingerprint(blob) if blob else ""
        path = self._models.acquire(blob, model_fp) if blob else None
        cache_spec = cache.spec() \
            if (cache is not None and self.parallel) else None
        return model_fp, blob, path, cache_spec

    def release_model(self, fingerprint: str) -> None:
        """Drop one reference to a published model; unlink at zero."""
        self._models.release(fingerprint)

    def __enter__(self) -> "ShardedCrafter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def build_tasks(self, attacks: Dict[str, Attack], images: np.ndarray,
                    labels: np.ndarray, model_fp: str,
                    model_path: Optional[str],
                    cache_spec: Optional[dict]) -> List[_CraftTask]:
        """Grid tasks in deterministic (attack order, shard order)."""
        shards = plan_shards(len(images), self.shard_size)
        return [
            _CraftTask(attack_name=name,
                       attack=attack.for_shard(shard.start, shard.total),
                       shard=shard,
                       images=images[shard.start:shard.stop],
                       labels=labels[shard.start:shard.stop],
                       model_path=model_path,
                       model_fp=model_fp,
                       cache_spec=cache_spec)
            for name, attack in attacks.items()
            for shard in shards
        ]

    def run_tasks(self, tasks: Sequence[_CraftTask], model,
                  cache: Optional[AdversarialCache]
                  ) -> Iterator[CraftOutcome]:
        """Yield outcomes in task order.

        In-process when ``workers == 1`` (live model, the caller's own
        cache instance with its in-memory layer); otherwise streamed from
        the pool, so the caller can merge and score attack ``i`` while
        attack ``i+1`` is still crafting.
        """
        if not self.parallel:
            for task in tasks:
                adv, hit, seconds = _craft_cell(task.attack, model,
                                                task.images, task.labels,
                                                cache, task.model_fp,
                                                clock=self.clock)
                outcome = CraftOutcome(attack_name=task.attack_name,
                                       shard=task.shard, adv=adv,
                                       seconds=seconds, from_cache=hit)
                self._observe(outcome)
                yield outcome
            return
        for outcome in self.pool.imap(_craft_in_worker, tasks):
            self._observe(outcome)
            yield outcome

    def _observe(self, outcome: CraftOutcome) -> None:
        self._m_shards.inc()
        if outcome.from_cache:
            self._m_cached.inc()
        self._h_shard.observe(outcome.seconds)
        if self._tracer is not None:
            self._tracer.emit("eval.shard", outcome.seconds,
                              attack=outcome.attack_name,
                              shard=outcome.shard.index,
                              examples=outcome.shard.size,
                              cached=outcome.from_cache)

    def run_tasks_async(self, tasks: Sequence[_CraftTask]):
        """Submit the whole grid without blocking; returns the pool's
        ``AsyncResult`` (``ready()`` / ``get()``)."""
        return self.pool.map_async(_craft_in_worker, tasks)

    # ------------------------------------------------------------------ #
    def craft_grid(self, attacks: Dict[str, Attack], model,
                   images: np.ndarray, labels: np.ndarray,
                   cache: Optional[AdversarialCache] = None
                   ) -> Dict[str, np.ndarray]:
        """Craft every attack's full batch sharded against one model.

        The standalone entry point for callers outside the suite (the
        transfer study crafts a whole grid against the victim, then the
        surrogate).  Publishing the model once for the *whole* grid
        matters twice over: one pickle/temp-file per model instead of
        one per attack, and workers keep their memoized model instead of
        reloading every time the fingerprint alternates.
        """
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        model_fp, _, path, cache_spec = self.prepare_model(model, cache)
        try:
            tasks = self.build_tasks(attacks, images, labels,
                                     model_fp, path, cache_spec)
            outcomes = list(self.run_tasks(tasks, model, cache))
        finally:
            self.release_model(model_fp)
        grouped: Dict[str, List[CraftOutcome]] = {}
        for outcome in outcomes:
            grouped.setdefault(outcome.attack_name, []).append(outcome)
        return {name: merge_outcomes(cells)
                for name, cells in grouped.items()}

    def craft(self, attack: Attack, model, images: np.ndarray,
              labels: np.ndarray, cache: Optional[AdversarialCache] = None
              ) -> np.ndarray:
        """Craft one attack's full batch sharded; returns the merged rows."""
        return self.craft_grid({"attack": attack}, model, images, labels,
                               cache=cache)["attack"]


def model_blob_fingerprint(blob: bytes) -> str:
    """Cheap worker-memoization key when no cache fingerprint is needed."""
    return blob_fingerprint(blob)


def merge_outcomes(outcomes: Iterable[CraftOutcome]) -> np.ndarray:
    """Order-preserving merge of one attack's shard outputs."""
    ordered = sorted(outcomes, key=lambda o: o.shard.index)
    return np.concatenate([o.adv for o in ordered])
