"""On-disk cache for adversarial example batches.

Crafting adversarial examples is the dominant cost of every repeated
experiment run: table3, table4 and the transfer study all regenerate the
same (model, attack, data) triples whenever a table is re-rendered or a
downstream analysis re-uses a trained classifier.  This module memoizes the
finished batches on disk, keyed by everything the output depends on:

* a SHA-256 over the model's state dict (names, shapes, dtypes, raw bytes),
* the attack's full configuration (class, name and every dataclass field),
* a fingerprint of the input images and labels.

Any weight update, hyper-parameter change or data change therefore produces
a different key and a cache miss; a hit replays the stored ``.npz`` batch
bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Optional, Tuple, Union

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack

__all__ = ["AdversarialCache", "fingerprint_model", "fingerprint_attack",
           "fingerprint_data", "cache_key"]


def _hash_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())


def fingerprint_model(model: nn.Module) -> str:
    """SHA-256 over the model's weights — any training step changes it."""
    h = hashlib.sha256()
    state = model.state_dict()
    for key in sorted(state):
        h.update(key.encode())
        _hash_array(h, state[key])
    return h.hexdigest()


def fingerprint_attack(attack: Attack) -> str:
    """SHA-256 over the attack's class and full dataclass configuration."""
    config = {k: repr(v) for k, v in
              sorted(dataclasses.asdict(attack).items())}
    payload = json.dumps([type(attack).__module__,
                          type(attack).__qualname__, config])
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_data(images: np.ndarray, labels: np.ndarray) -> str:
    """SHA-256 over the exact input batch bytes."""
    h = hashlib.sha256()
    _hash_array(h, np.asarray(images))
    _hash_array(h, np.asarray(labels))
    return h.hexdigest()


def cache_key(model: nn.Module, attack: Attack, images: np.ndarray,
              labels: np.ndarray,
              model_fingerprint: Optional[str] = None,
              data_fingerprint: Optional[str] = None) -> str:
    """Combined key: (weight hash, attack config, data fingerprint).

    ``model_fingerprint`` / ``data_fingerprint`` let callers that run many
    attacks against one fixed model and test batch (the suite) hash each
    once instead of per attack.
    """
    h = hashlib.sha256()
    h.update((model_fingerprint or fingerprint_model(model)).encode())
    h.update(fingerprint_attack(attack).encode())
    h.update((data_fingerprint or fingerprint_data(images, labels)).encode())
    return h.hexdigest()


class AdversarialCache:
    """Directory-backed store of finished adversarial batches.

    Parameters
    ----------
    root:
        Directory for the ``.npz`` entries (created on first store).
    keep_in_memory:
        Also keep loaded/stored batches in a process-local dict so repeated
        hits within one run skip the disk round-trip.
    """

    def __init__(self, root: Union[str, os.PathLike],
                 keep_in_memory: bool = True) -> None:
        self.root = os.fspath(root)
        self.keep_in_memory = keep_in_memory
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    def load(self, key: str) -> Optional[np.ndarray]:
        """Return the stored batch for ``key``, or ``None`` on a miss.

        An unreadable entry (torn by a crash outside the write-then-rename
        window, or hand-edited) is dropped and treated as a miss rather
        than poisoning every later run.
        """
        if key in self._memory:
            return self._memory[key].copy()
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                adv = archive["adv"]
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        if self.keep_in_memory:
            self._memory[key] = adv.copy()
        return adv

    def store(self, key: str, adv: np.ndarray) -> None:
        """Persist a finished batch under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        # Write-then-rename so a crashed run never leaves a torn entry.
        # The temp name is per-process so concurrent runs sharing a cache
        # directory cannot interleave writes into one file; the .npz suffix
        # keeps np.savez from renaming it.
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        np.savez(tmp, adv=adv)
        os.replace(tmp, path)
        if self.keep_in_memory:
            self._memory[key] = np.array(adv, copy=True)

    def get_or_generate(self, attack: Attack, model: nn.Module,
                        images: np.ndarray, labels: np.ndarray,
                        model_fingerprint: Optional[str] = None,
                        data_fingerprint: Optional[str] = None
                        ) -> Tuple[np.ndarray, bool]:
        """Replay a cached batch, or run the attack and cache its output.

        Returns ``(adversarial_batch, was_hit)``.  Pass precomputed
        fingerprints when calling repeatedly against unchanged weights or
        an unchanged test batch.
        """
        key = cache_key(model, attack, images, labels,
                        model_fingerprint=model_fingerprint,
                        data_fingerprint=data_fingerprint)
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            return cached, True
        self.misses += 1
        # Sync to host *before* the store: the archive persists host bytes,
        # and a device backend's crafted batch cannot be np.savez'd as-is.
        adv = _backend.active().to_numpy(attack(model, images, labels))
        self.store(key, adv)
        return adv, False

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for f in os.listdir(self.root)
                   if f.endswith(".npz") and not f.endswith(".tmp.npz"))
