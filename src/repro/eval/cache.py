"""On-disk cache for adversarial example batches.

Crafting adversarial examples is the dominant cost of every repeated
experiment run: table3, table4 and the transfer study all regenerate the
same (model, attack, data) triples whenever a table is re-rendered or a
downstream analysis re-uses a trained classifier.  This module memoizes the
finished batches on disk, keyed by everything the output depends on:

* a SHA-256 over the model's state dict (names, shapes, dtypes, raw bytes),
* the attack's full configuration (class, name and every dataclass field),
* a fingerprint of the input images and labels.

Any weight update, hyper-parameter change or data change therefore produces
a different key and a cache miss; a hit replays the stored ``.npz`` batch
bit-for-bit.

The directory is safe to share between processes (the sharded evaluation
engine points every worker at one cache root): entries are published by
atomic write-then-rename, and recency is recorded in an explicit sidecar
journal (``recency.journal``) guarded by a lock file rather than inferred
from file mtimes — mtime has ~1s granularity on some filesystems, which
made same-second entries evict in arbitrary order and let a cross-process
``touch`` land on (and appear to resurrect) an entry another process had
just evicted.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
import time
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack

__all__ = ["AdversarialCache", "fingerprint_model", "fingerprint_attack",
           "fingerprint_data", "fingerprint_array", "cache_key"]

try:  # POSIX advisory locks; the fallback below covers other platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


def _hash_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())


def fingerprint_model(model: nn.Module) -> str:
    """SHA-256 over the model's weights — any training step changes it."""
    h = hashlib.sha256()
    state = model.state_dict()
    for key in sorted(state):
        h.update(key.encode())
        _hash_array(h, state[key])
    return h.hexdigest()


def fingerprint_attack(attack: Attack) -> str:
    """SHA-256 over the attack's class and full dataclass configuration."""
    config = {k: repr(v) for k, v in
              sorted(dataclasses.asdict(attack).items())}
    payload = json.dumps([type(attack).__module__,
                          type(attack).__qualname__, config])
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_data(images: np.ndarray, labels: np.ndarray) -> str:
    """SHA-256 over the exact input batch bytes."""
    h = hashlib.sha256()
    _hash_array(h, np.asarray(images))
    _hash_array(h, np.asarray(labels))
    return h.hexdigest()


def fingerprint_array(array: np.ndarray) -> str:
    """SHA-256 over one array's dtype, shape and exact bytes.

    The label-free sibling of :func:`fingerprint_data`, for consumers that
    hash inputs *without* ground truth — the serving layer's prediction
    cache keys each incoming example this way.
    """
    h = hashlib.sha256()
    _hash_array(h, np.asarray(array))
    return h.hexdigest()


def cache_key(model: nn.Module, attack: Attack, images: np.ndarray,
              labels: np.ndarray,
              model_fingerprint: Optional[str] = None,
              data_fingerprint: Optional[str] = None) -> str:
    """Combined key: (weight hash, attack config, data fingerprint).

    ``model_fingerprint`` / ``data_fingerprint`` let callers that run many
    attacks against one fixed model and test batch (the suite) hash each
    once instead of per attack.
    """
    h = hashlib.sha256()
    h.update((model_fingerprint or fingerprint_model(model)).encode())
    h.update(fingerprint_attack(attack).encode())
    h.update((data_fingerprint or fingerprint_data(images, labels)).encode())
    return h.hexdigest()


class _DirectoryLock:
    """Advisory cross-process lock on one file inside the cache root.

    ``fcntl.flock`` where available (released by the kernel even if the
    holder crashes); elsewhere an ``O_EXCL`` spin with a staleness bound so
    a dead holder cannot wedge the cache forever.  Re-entrant within one
    instance so journal helpers can compose.
    """

    #: A create-exclusive lock older than this is presumed abandoned.
    STALE_SECONDS = 30.0

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = None
        self._depth = 0

    def __enter__(self) -> "_DirectoryLock":
        if self._depth == 0:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            if fcntl is not None:
                self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR)
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            else:  # pragma: no cover - non-POSIX
                while True:
                    try:
                        self._fd = os.open(self.path,
                                           os.O_CREAT | os.O_EXCL | os.O_RDWR)
                        break
                    except FileExistsError:
                        try:
                            if (time.time() - os.path.getmtime(self.path)
                                    > self.STALE_SECONDS):
                                os.unlink(self.path)
                                continue
                        except OSError:
                            pass
                        time.sleep(0.01)
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
            else:  # pragma: no cover - non-POSIX
                os.close(self._fd)
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
            self._fd = None


class AdversarialCache:
    """Directory-backed store of finished adversarial batches.

    Parameters
    ----------
    root:
        Directory for the ``.npz`` entries (created on first store).
    keep_in_memory:
        Also keep loaded/stored batches in a process-local dict so repeated
        hits within one run skip the disk round-trip.
    max_bytes:
        Optional cap on the on-disk footprint.  When set, entries are
        tracked least-recently-used via the sidecar recency journal (see
        below) and the oldest are deleted after each store until the
        directory fits.  Eviction only ever deletes *finished* entries —
        :meth:`get_or_generate` returns the freshly-crafted batch it just
        stored regardless, so a cap that is too small degrades into extra
        regeneration, never into wrong results.  Eviction re-reads the
        journal under the directory lock, so the cap is enforced over the
        whole directory and respects recency bumps made by *other*
        processes sharing it.

    Recency journal
    ---------------
    ``<root>/recency.journal`` is an append-only JSONL sidecar: one record
    per store (and, for capped instances, per hit), appended under
    ``<root>/cache.lock``.  Replaying it yields the authoritative
    least-recently-used order — no mtime involved, so same-second entries
    keep their true order and an evicted key cannot be resurrected by a
    concurrent recency bump.  Entries on disk that predate the journal are
    ranked least-recent (deterministically, by name).  A torn final line
    (crash mid-append) is skipped on replay; the journal is compacted in
    place once it accumulates enough dead weight.
    """

    JOURNAL_NAME = "recency.journal"
    LOCK_NAME = "cache.lock"
    #: Journal lines tolerated before a locked rewrite compacts them.
    COMPACT_THRESHOLD = 4096

    def __init__(self, root: Union[str, os.PathLike],
                 keep_in_memory: bool = True,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.fspath(root)
        self.keep_in_memory = keep_in_memory
        self.max_bytes = max_bytes
        self._memory: dict = {}
        self._lru: "collections.OrderedDict[str, int]" = \
            collections.OrderedDict()
        self._lock = _DirectoryLock(os.path.join(self.root, self.LOCK_NAME))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if max_bytes is not None and os.path.isdir(self.root):
            with self._lock:
                self._lru = self._replay_recency()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    @property
    def _journal_path(self) -> str:
        return os.path.join(self.root, self.JOURNAL_NAME)

    def spec(self) -> dict:
        """Constructor kwargs that re-open this cache elsewhere — the
        sharded engine hands them to worker processes, which must build
        their own instances over the shared directory."""
        return {"root": self.root, "max_bytes": self.max_bytes}

    # ------------------------------------------------------------------ #
    # recency journal
    # ------------------------------------------------------------------ #
    def _journal_records(self) -> Iterator[dict]:
        try:
            with open(self._journal_path, "r") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail line from a crashed append
                    if isinstance(record, dict) and "key" in record:
                        yield record
        except OSError:
            return

    def _journal_append(self, record: dict) -> None:
        with self._lock:
            with open(self._journal_path, "a") as handle:
                handle.write(json.dumps(record) + "\n")

    def _disk_entries(self) -> dict:
        """``{key: size}`` for every finished entry in the directory."""
        entries = {}
        if not os.path.isdir(self.root):
            return entries
        for fname in os.listdir(self.root):
            if not fname.endswith(".npz") or fname.endswith(".tmp.npz"):
                continue
            try:
                entries[fname[:-len(".npz")]] = \
                    os.path.getsize(os.path.join(self.root, fname))
            except OSError:
                continue
        return entries

    def _replay_recency(self) -> "collections.OrderedDict[str, int]":
        """Authoritative LRU order (oldest first).  Call under the lock."""
        on_disk = self._disk_entries()
        order: "collections.OrderedDict[str, None]" = \
            collections.OrderedDict()
        lines = 0
        for record in self._journal_records():
            lines += 1
            key = record["key"]
            if record.get("evicted"):
                order.pop(key, None)
            elif key in on_disk:
                order[key] = None
                order.move_to_end(key)
        # Entries never journaled (legacy caches, foreign writers, or a
        # crash between rename and append) rank least-recent, in a
        # deterministic order.
        lru: "collections.OrderedDict[str, int]" = collections.OrderedDict()
        for key in sorted(set(on_disk) - set(order)):
            lru[key] = on_disk[key]
        for key in order:
            lru[key] = on_disk[key]
        if lines > self.COMPACT_THRESHOLD:
            self._compact_journal(lru)
        return lru

    def _compact_journal(
            self, lru: "collections.OrderedDict[str, int]") -> None:
        """Rewrite the journal as one record per live key.  Under lock."""
        tmp = f"{self._journal_path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            for key, size in lru.items():
                handle.write(json.dumps({"key": key, "size": size}) + "\n")
        os.replace(tmp, self._journal_path)

    @property
    def total_bytes(self) -> int:
        """On-disk footprint of the entries this instance tracks."""
        return sum(self._lru.values())

    def _touch(self, key: str) -> None:
        """Mark ``key`` most-recently-used (journaled, not mtime)."""
        if self.max_bytes is None:
            return
        if key not in self._lru:
            # A hit on an entry another process stored after this
            # instance's construction: adopt it, so the recency bump
            # below still reaches the journal — otherwise a hot foreign
            # entry would keep ranking by its original store record and
            # evict first.
            try:
                self._lru[key] = os.path.getsize(self._path(key))
            except OSError:
                return  # entry vanished (concurrent eviction); no bump
        self._lru.move_to_end(key)
        self._journal_append({"key": key})

    def _forget(self, key: str) -> None:
        self._lru.pop(key, None)
        self._memory.pop(key, None)

    def _evict_over_cap(self) -> None:
        assert self.max_bytes is not None
        if self.total_bytes <= self.max_bytes:
            # Under-cap by this instance's own view: no lock, no replay.
            # Foreign entries this view hasn't seen are picked up by the
            # next over-cap store or the next construction — the cap is
            # a footprint bound, not a hard real-time invariant, and an
            # O(directory) locked scan per store would serialize every
            # writer sharing the directory.
            return
        with self._lock:
            # Re-replay under the lock: another process may have stored,
            # touched or evicted since we last looked, and eviction must
            # rank by the *global* recency, not this instance's view.
            lru = self._replay_recency()
            while sum(lru.values()) > self.max_bytes and lru:
                key, _ = lru.popitem(last=False)
                self._memory.pop(key, None)
                try:
                    os.remove(self._path(key))
                except OSError:
                    pass
                self._journal_append({"key": key, "evicted": True})
                self.evictions += 1
            self._lru = lru

    def load(self, key: str) -> Optional[np.ndarray]:
        """Return the stored batch for ``key``, or ``None`` on a miss.

        An unreadable entry (torn by a crash outside the write-then-rename
        window, or hand-edited) is dropped and treated as a miss rather
        than poisoning every later run.
        """
        if key in self._memory:
            self._touch(key)
            return self._memory[key].copy()
        path = self._path(key)
        if not os.path.exists(path):
            self._lru.pop(key, None)
            return None
        try:
            with np.load(path) as archive:
                adv = archive["adv"]
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            self._forget(key)
            return None
        self._touch(key)
        if self.keep_in_memory:
            self._memory[key] = adv.copy()
        return adv

    def store(self, key: str, adv: np.ndarray) -> None:
        """Persist a finished batch under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        # Write-then-rename so a crashed run never leaves a torn entry.
        # The temp name is per-process so concurrent runs sharing a cache
        # directory cannot interleave writes into one file; the .npz suffix
        # keeps np.savez from renaming it.
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        np.savez(tmp, adv=adv)
        os.replace(tmp, path)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        # Journal the store regardless of capping: an uncapped writer's
        # entries must still carry recency for any capped process sharing
        # the directory.
        self._journal_append({"key": key, "size": size})
        if self.keep_in_memory:
            self._memory[key] = np.array(adv, copy=True)
        if self.max_bytes is not None:
            self._lru[key] = size
            self._lru.move_to_end(key)
            self._evict_over_cap()

    def get_or_generate(self, attack: Attack, model: nn.Module,
                        images: np.ndarray, labels: np.ndarray,
                        model_fingerprint: Optional[str] = None,
                        data_fingerprint: Optional[str] = None
                        ) -> Tuple[np.ndarray, bool]:
        """Replay a cached batch, or run the attack and cache its output.

        Returns ``(adversarial_batch, was_hit)``.  Pass precomputed
        fingerprints when calling repeatedly against unchanged weights or
        an unchanged test batch.
        """
        key = cache_key(model, attack, images, labels,
                        model_fingerprint=model_fingerprint,
                        data_fingerprint=data_fingerprint)
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            return cached, True
        self.misses += 1
        # Sync to host *before* the store: the archive persists host bytes,
        # and a device backend's crafted batch cannot be np.savez'd as-is.
        adv = _backend.active().to_numpy(attack(model, images, labels))
        self.store(key, adv)
        return adv, False

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for f in os.listdir(self.root)
                   if f.endswith(".npz") and not f.endswith(".tmp.npz"))
