"""On-disk cache for adversarial example batches.

Crafting adversarial examples is the dominant cost of every repeated
experiment run: table3, table4 and the transfer study all regenerate the
same (model, attack, data) triples whenever a table is re-rendered or a
downstream analysis re-uses a trained classifier.  This module memoizes the
finished batches on disk, keyed by everything the output depends on:

* a SHA-256 over the model's state dict (names, shapes, dtypes, raw bytes),
* the attack's full configuration (class, name and every dataclass field),
* a fingerprint of the input images and labels.

Any weight update, hyper-parameter change or data change therefore produces
a different key and a cache miss; a hit replays the stored ``.npz`` batch
bit-for-bit.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
from typing import Optional, Tuple, Union

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack

__all__ = ["AdversarialCache", "fingerprint_model", "fingerprint_attack",
           "fingerprint_data", "fingerprint_array", "cache_key"]


def _hash_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())


def fingerprint_model(model: nn.Module) -> str:
    """SHA-256 over the model's weights — any training step changes it."""
    h = hashlib.sha256()
    state = model.state_dict()
    for key in sorted(state):
        h.update(key.encode())
        _hash_array(h, state[key])
    return h.hexdigest()


def fingerprint_attack(attack: Attack) -> str:
    """SHA-256 over the attack's class and full dataclass configuration."""
    config = {k: repr(v) for k, v in
              sorted(dataclasses.asdict(attack).items())}
    payload = json.dumps([type(attack).__module__,
                          type(attack).__qualname__, config])
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_data(images: np.ndarray, labels: np.ndarray) -> str:
    """SHA-256 over the exact input batch bytes."""
    h = hashlib.sha256()
    _hash_array(h, np.asarray(images))
    _hash_array(h, np.asarray(labels))
    return h.hexdigest()


def fingerprint_array(array: np.ndarray) -> str:
    """SHA-256 over one array's dtype, shape and exact bytes.

    The label-free sibling of :func:`fingerprint_data`, for consumers that
    hash inputs *without* ground truth — the serving layer's prediction
    cache keys each incoming example this way.
    """
    h = hashlib.sha256()
    _hash_array(h, np.asarray(array))
    return h.hexdigest()


def cache_key(model: nn.Module, attack: Attack, images: np.ndarray,
              labels: np.ndarray,
              model_fingerprint: Optional[str] = None,
              data_fingerprint: Optional[str] = None) -> str:
    """Combined key: (weight hash, attack config, data fingerprint).

    ``model_fingerprint`` / ``data_fingerprint`` let callers that run many
    attacks against one fixed model and test batch (the suite) hash each
    once instead of per attack.
    """
    h = hashlib.sha256()
    h.update((model_fingerprint or fingerprint_model(model)).encode())
    h.update(fingerprint_attack(attack).encode())
    h.update((data_fingerprint or fingerprint_data(images, labels)).encode())
    return h.hexdigest()


class AdversarialCache:
    """Directory-backed store of finished adversarial batches.

    Parameters
    ----------
    root:
        Directory for the ``.npz`` entries (created on first store).
    keep_in_memory:
        Also keep loaded/stored batches in a process-local dict so repeated
        hits within one run skip the disk round-trip.
    max_bytes:
        Optional cap on the on-disk footprint.  When set, entries are
        tracked least-recently-used (existing entries are ranked by file
        mtime at construction; hits bump both the in-process order and the
        mtime so recency survives across runs) and the oldest are deleted
        after each store until the directory fits.  Eviction only ever
        deletes *finished* entries — :meth:`get_or_generate` returns the
        freshly-crafted batch it just stored regardless, so a cap that is
        too small degrades into extra regeneration, never into wrong
        results.  The cap is per-writer: concurrent processes sharing a
        directory each enforce it over the entries they have seen.
    """

    def __init__(self, root: Union[str, os.PathLike],
                 keep_in_memory: bool = True,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.fspath(root)
        self.keep_in_memory = keep_in_memory
        self.max_bytes = max_bytes
        self._memory: dict = {}
        self._lru: "collections.OrderedDict[str, int]" = \
            collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if max_bytes is not None and os.path.isdir(self.root):
            entries = []
            for fname in os.listdir(self.root):
                if not fname.endswith(".npz") or fname.endswith(".tmp.npz"):
                    continue
                try:
                    stat = os.stat(os.path.join(self.root, fname))
                except OSError:
                    continue
                entries.append((stat.st_mtime, fname[:-len(".npz")],
                                stat.st_size))
            for _, key, size in sorted(entries):
                self._lru[key] = size

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    @property
    def total_bytes(self) -> int:
        """On-disk footprint of the entries this instance tracks."""
        return sum(self._lru.values())

    def _touch(self, key: str) -> None:
        """Mark ``key`` most-recently-used (and persist via mtime)."""
        if self.max_bytes is None or key not in self._lru:
            return
        self._lru.move_to_end(key)
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def _forget(self, key: str) -> None:
        self._lru.pop(key, None)
        self._memory.pop(key, None)

    def _evict_over_cap(self) -> None:
        assert self.max_bytes is not None
        while self.total_bytes > self.max_bytes and self._lru:
            key, _ = self._lru.popitem(last=False)
            self._memory.pop(key, None)
            try:
                os.remove(self._path(key))
            except OSError:
                pass
            self.evictions += 1

    def load(self, key: str) -> Optional[np.ndarray]:
        """Return the stored batch for ``key``, or ``None`` on a miss.

        An unreadable entry (torn by a crash outside the write-then-rename
        window, or hand-edited) is dropped and treated as a miss rather
        than poisoning every later run.
        """
        if key in self._memory:
            self._touch(key)
            return self._memory[key].copy()
        path = self._path(key)
        if not os.path.exists(path):
            self._lru.pop(key, None)
            return None
        try:
            with np.load(path) as archive:
                adv = archive["adv"]
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            self._forget(key)
            return None
        self._touch(key)
        if self.keep_in_memory:
            self._memory[key] = adv.copy()
        return adv

    def store(self, key: str, adv: np.ndarray) -> None:
        """Persist a finished batch under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        # Write-then-rename so a crashed run never leaves a torn entry.
        # The temp name is per-process so concurrent runs sharing a cache
        # directory cannot interleave writes into one file; the .npz suffix
        # keeps np.savez from renaming it.
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        np.savez(tmp, adv=adv)
        os.replace(tmp, path)
        if self.keep_in_memory:
            self._memory[key] = np.array(adv, copy=True)
        if self.max_bytes is not None:
            try:
                self._lru[key] = os.path.getsize(path)
            except OSError:
                self._lru[key] = 0
            self._lru.move_to_end(key)
            self._evict_over_cap()

    def get_or_generate(self, attack: Attack, model: nn.Module,
                        images: np.ndarray, labels: np.ndarray,
                        model_fingerprint: Optional[str] = None,
                        data_fingerprint: Optional[str] = None
                        ) -> Tuple[np.ndarray, bool]:
        """Replay a cached batch, or run the attack and cache its output.

        Returns ``(adversarial_batch, was_hit)``.  Pass precomputed
        fingerprints when calling repeatedly against unchanged weights or
        an unchanged test batch.
        """
        key = cache_key(model, attack, images, labels,
                        model_fingerprint=model_fingerprint,
                        data_fingerprint=data_fingerprint)
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            return cached, True
        self.misses += 1
        # Sync to host *before* the store: the archive persists host bytes,
        # and a device backend's crafted batch cannot be np.savez'd as-is.
        adv = _backend.active().to_numpy(attack(model, images, labels))
        self.store(key, adv)
        return adv, False

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for f in os.listdir(self.root)
                   if f.endswith(".npz") and not f.endswith(".tmp.npz"))
