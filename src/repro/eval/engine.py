"""Batched robustness-evaluation engine.

Every headline artifact (Table III/IV accuracy grids, the transfer study)
reduces to the same inner loop: craft adversarial counterparts of one test
batch per attack, classify them, tabulate per-attack accuracy.  The
:class:`AttackSuite` runner owns that loop and makes it cheap:

* **one shared clean forward pass** — the clean logits are computed once and
  reused for the ``original`` accuracy and the per-attack flip counts,
  instead of once per metric;
* **per-example early stopping** — every iterative attack is switched to its
  active-mask path (see :mod:`repro.attacks.base`), so the working batch
  shrinks as examples are fooled and PGD/BIM/MIM/CW only spend gradient
  steps on still-correct examples;
* **adversarial caching** — with an :class:`~repro.eval.cache.AdversarialCache`
  attached, finished batches are replayed bit-for-bit across runs keyed by
  (model weights, attack config, data);
* **sharded multi-process crafting** — with ``workers > 1`` (or an explicit
  ``shard_size``) the test batch is partitioned into deterministic shards
  crafted by a spawn-safe worker pool (:mod:`repro.eval.shard`) and merged
  order-preserving; per-shard RNG windows replay exactly the draws the
  full-batch stream assigns to each shard's rows, and scoring runs in the
  parent over the merged batch, so a sharded run's ``SuiteResult`` is
  identical to the single-process engine's and the worker count never
  changes results — only wall-clock.

Results stream into the existing :class:`~repro.eval.framework.EvaluationResult`
/ :mod:`repro.eval.reporting` types, so all table renderers keep working.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack
from .cache import AdversarialCache, fingerprint_data, fingerprint_model
from .metrics import predict_labels
from .shard import CraftOutcome, ShardedCrafter, merge_outcomes

__all__ = ["AttackRecord", "SuiteResult", "AttackSuite",
           "PendingSuiteResult"]


@dataclass
class AttackRecord:
    """Per-attack telemetry from one :class:`AttackSuite` run.

    ``seconds`` covers generation only (attack run or cache replay);
    scoring the result against the victim is excluded.
    """

    attack: str
    accuracy: float
    seconds: float
    from_cache: bool = False
    flipped: int = 0          # correctly-classified examples the attack broke
    evaluated: int = 0

    def __str__(self) -> str:
        source = "cache" if self.from_cache else "fresh"
        return (f"{self.attack:10s} acc={self.accuracy * 100:6.2f}%  "
                f"flipped={self.flipped:d}/{self.evaluated:d}  "
                f"{self.seconds:7.3f}s  [{source}]")


@dataclass
class SuiteResult:
    """Everything one suite run measured for one model."""

    model_name: str
    dataset: str
    clean_accuracy: float
    records: List[AttackRecord] = field(default_factory=list)

    @property
    def accuracy(self) -> Dict[str, float]:
        """Accuracy dict in the shape ``EvaluationResult`` expects."""
        out = {"original": self.clean_accuracy}
        for record in self.records:
            out[record.attack] = record.accuracy
        return out

    @property
    def generation_seconds(self) -> float:
        return sum(r.seconds for r in self.records)


class AttackSuite:
    """Evaluate one or more models against a named attack grid.

    Parameters
    ----------
    attacks:
        Named attack instances (the grid columns).
    cache:
        Optional :class:`AdversarialCache`; hits replay stored batches.
    early_stop:
        ``True``/``False`` forces every attack on/off its per-example
        early-stopping path; the default ``None`` respects each attack's
        own flag (experiment configs build their attacks with early
        stopping on, so the engine path is the default where it matters).
    batch_size:
        Forward-pass batch size for the accuracy measurements.
    workers:
        Crafting processes.  The default ``1`` (with ``shard_size`` unset)
        preserves the original single-process code path exactly;
        ``workers > 1`` fans the (attack, shard) grid out over a
        persistent spawn pool.  Results are independent of the worker
        count — the shard layout is a function of the data size and
        ``shard_size`` alone.
    shard_size:
        Rows per shard (default
        :data:`~repro.eval.shard.DEFAULT_SHARD_SIZE` when sharding is
        active).  Setting it with ``workers=1`` runs the identical
        sharded computation in-process — useful to pin shard-layout
        equality without paying for a pool.

    Pool-owning suites should be closed (:meth:`close`, or use the suite
    as a context manager); an unclosed pool is reaped at interpreter
    exit, but explicitly is better.
    """

    def __init__(self, attacks: Dict[str, Attack],
                 cache: Optional[AdversarialCache] = None,
                 early_stop: Optional[bool] = None,
                 batch_size: int = 256,
                 workers: int = 1,
                 shard_size: Optional[int] = None,
                 pool=None) -> None:
        # An empty grid is allowed: the suite then measures clean accuracy
        # only (the framework supports attack-free scenarios).
        self.attacks: Dict[str, Attack] = {}
        for name, attack in attacks.items():
            if early_stop is not None and hasattr(attack, "early_stop"):
                attack = dataclasses.replace(attack, early_stop=early_stop)
            self.attacks[name] = attack
        self.cache = cache
        self.batch_size = batch_size
        # ``pool``: borrow an existing :class:`~repro.utils.pool.SpawnPool`
        # (its worker count wins) instead of spawning one — this is how
        # ``repro train --workers N`` drives training and async probe
        # crafting through a single pool.  Borrowed pools survive
        # :meth:`close`.
        crafter = ShardedCrafter(workers=workers, shard_size=shard_size,
                                 pool=pool)
        self.crafter: Optional[ShardedCrafter] = \
            crafter if crafter.enabled else None

    @property
    def workers(self) -> int:
        return self.crafter.workers if self.crafter is not None else 1

    @property
    def parallel(self) -> bool:
        return self.crafter is not None and self.crafter.parallel

    def close(self) -> None:
        """Release the worker pool, if any (idempotent)."""
        if self.crafter is not None:
            self.crafter.close()

    def __enter__(self) -> "AttackSuite":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, model: nn.Module, images: np.ndarray, labels: np.ndarray,
            model_name: str = "model", dataset: str = "dataset",
            on_record: Optional[Callable[[AttackRecord], None]] = None
            ) -> SuiteResult:
        """Craft + score every attack against ``model`` on one test batch.

        ``on_record`` is called after each attack finishes, so callers can
        stream rows (the CLI uses it for progress output).
        """
        # The engine's own arrays are host-side: the cache fingerprints and
        # stores host bytes, and the accuracy bookkeeping is scalar work.
        # Attacks and forward passes move batches onto the active backend
        # themselves, so the hot loops still run wherever the backend says.
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        if len(images) == 0:
            raise ValueError("evaluation needs at least one test example")
        with nn.inference_mode(model):
            return self._run_inference(model, images, labels, model_name,
                                       dataset, on_record)

    def _clean_scored_result(self, model, images, labels, model_name,
                             dataset):
        """The scoring preamble both sync and async paths share: one
        clean forward pass and the result shell it seeds."""
        clean_preds = predict_labels(model, images, self.batch_size)
        clean_correct = clean_preds == labels
        result = SuiteResult(model_name=model_name, dataset=dataset,
                             clean_accuracy=float(clean_correct.mean()))
        return clean_correct, result

    def _run_inference(self, model, images, labels, model_name, dataset,
                       on_record) -> SuiteResult:
        # The whole grid runs under inference_mode: attacks and
        # predict_labels each force eval mode themselves (and restore it),
        # so accuracies are unchanged — but the suite as a whole now
        # guarantees the caller's model comes back with every submodule
        # flag exactly as it was, even if an attack raises mid-grid.
        clean_correct, result = self._clean_scored_result(
            model, images, labels, model_name, dataset)
        if self.crafter is not None:
            self._run_sharded(model, images, labels, clean_correct,
                              result, on_record)
            return result
        # Weights and the test batch are fixed for the whole grid: hash
        # them once, not per attack.
        model_fp = data_fp = None
        if self.cache is not None:
            model_fp = fingerprint_model(model)
            data_fp = fingerprint_data(images, labels)
        for name, attack in self.attacks.items():
            start = time.perf_counter()
            if self.cache is not None:
                adv, hit = self.cache.get_or_generate(
                    attack, model, images, labels,
                    model_fingerprint=model_fp, data_fingerprint=data_fp)
            else:
                adv, hit = attack(model, images, labels), False
            adv = _backend.active().to_numpy(adv)
            generation_seconds = time.perf_counter() - start
            self._score_attack(model, name, adv, generation_seconds, hit,
                               labels, clean_correct, result, on_record)
        return result

    def _score_attack(self, model, name, adv, seconds, hit, labels,
                      clean_correct, result, on_record) -> None:
        """Measure one crafted batch against the victim (parent-side)."""
        adv_preds = predict_labels(model, adv, self.batch_size)
        adv_correct = adv_preds == labels
        record = AttackRecord(
            attack=name,
            accuracy=float(adv_correct.mean()),
            seconds=seconds,
            from_cache=hit,
            flipped=int((clean_correct & ~adv_correct).sum()),
            evaluated=len(labels),
        )
        result.records.append(record)
        if on_record is not None:
            on_record(record)

    # ------------------------------------------------------------------ #
    # sharded path
    # ------------------------------------------------------------------ #
    def _grid_tasks(self, model, images, labels):
        """Task list + per-run context for the sharded grid.

        Fingerprint/depot/cache-spec policy lives in
        :meth:`ShardedCrafter.prepare_model` (one home, shared with the
        transfer study); the published model must be released via
        ``crafter.release_model(model_fp)`` once the run's outcomes are
        consumed.
        """
        assert self.crafter is not None
        model_fp, blob, path, cache_spec = \
            self.crafter.prepare_model(model, self.cache)
        tasks = self.crafter.build_tasks(self.attacks, images, labels,
                                         model_fp, path, cache_spec)
        return tasks, blob, model_fp

    def _run_sharded(self, model, images, labels, clean_correct, result,
                     on_record) -> None:
        """Craft the grid sharded, merge per attack, score in the parent.

        Outcomes stream back in task order (attacks x shards), so each
        attack is merged and scored as soon as its last shard lands —
        parent-side scoring overlaps the workers crafting the next
        attack.
        """
        tasks, _, model_fp = self._grid_tasks(model, images, labels)
        try:
            self._score_outcomes(
                model, labels, clean_correct, result, on_record,
                self.crafter.run_tasks(tasks, model, self.cache))
        finally:
            self.crafter.release_model(model_fp)

    def _score_outcomes(self, model, labels, clean_correct, result,
                        on_record, outcomes) -> None:
        pending: List[CraftOutcome] = []
        for outcome in outcomes:
            if pending and pending[0].attack_name != outcome.attack_name:
                self._merge_and_score(model, labels, clean_correct, result,
                                      on_record, pending)
                pending = []
            pending.append(outcome)
        if pending:
            self._merge_and_score(model, labels, clean_correct, result,
                                  on_record, pending)

    def _merge_and_score(self, model, labels, clean_correct, result,
                         on_record, outcomes: List[CraftOutcome]) -> None:
        adv = merge_outcomes(outcomes)
        # ``seconds`` sums the shards' crafting time (the comparable
        # quantity across worker counts); wall-clock shrinks with the
        # pool, per-shard work does not.  ``from_cache`` means *every*
        # shard replayed.
        self._score_attack(
            model, outcomes[0].attack_name, adv,
            sum(o.seconds for o in outcomes),
            all(o.from_cache for o in outcomes),
            labels, clean_correct, result, on_record)

    def run_grid(self, models: Dict[str, nn.Module], images: np.ndarray,
                 labels: np.ndarray, dataset: str = "dataset"
                 ) -> List[SuiteResult]:
        """Evaluate a model x attack grid (one suite run per model)."""
        return [self.run(model, images, labels, model_name=name,
                         dataset=dataset)
                for name, model in models.items()]

    # ------------------------------------------------------------------ #
    # asynchronous runs (in-training probes overlap the next epoch)
    # ------------------------------------------------------------------ #
    def run_async(self, model: nn.Module, images: np.ndarray,
                  labels: np.ndarray, model_name: str = "model",
                  dataset: str = "dataset") -> "PendingSuiteResult":
        """Submit a suite run against a **snapshot** of ``model``.

        With a worker pool the crafting proceeds in the background while
        the caller keeps going (a training loop starts its next epoch);
        :meth:`PendingSuiteResult.result` merges and scores — against the
        snapshot, so later weight updates cannot leak in.  Without a pool
        this degrades to a synchronous run, already complete on return.
        """
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        if len(images) == 0:
            raise ValueError("evaluation needs at least one test example")
        if self.crafter is None or not self.crafter.parallel:
            return PendingSuiteResult(
                completed=self.run(model, images, labels,
                                   model_name=model_name, dataset=dataset))
        tasks, blob, model_fp = self._grid_tasks(model, images, labels)
        handle = self.crafter.run_tasks_async(tasks)
        return PendingSuiteResult(suite=self, handle=handle,
                                  model_blob=blob, model_fp=model_fp,
                                  images=images,
                                  labels=labels, model_name=model_name,
                                  dataset=dataset)


class PendingSuiteResult:
    """Future-like handle for an asynchronous :meth:`AttackSuite.run_async`.

    ``ready()`` never blocks; ``result()`` blocks until crafting finishes,
    then scores the merged batches in the calling process against the
    snapshotted weights (memoized — repeated calls return the same
    object).
    """

    def __init__(self, completed: Optional[SuiteResult] = None,
                 suite: Optional["AttackSuite"] = None, handle=None,
                 model_blob: Optional[bytes] = None,
                 model_fp: Optional[str] = None,
                 images: Optional[np.ndarray] = None,
                 labels: Optional[np.ndarray] = None,
                 model_name: str = "model", dataset: str = "dataset"
                 ) -> None:
        self._result = completed
        self._suite = suite
        self._handle = handle
        self._model_blob = model_blob
        self._model_fp = model_fp
        self._images = images
        self._labels = labels
        self._model_name = model_name
        self._dataset = dataset

    def ready(self) -> bool:
        return self._result is not None or self._handle.ready()

    def result(self) -> SuiteResult:
        if self._result is not None:
            return self._result
        try:
            outcomes = self._handle.get()
        finally:
            self._suite.crafter.release_model(self._model_fp)
        suite = self._suite
        model = pickle.loads(self._model_blob)
        with nn.inference_mode(model):
            clean_correct, result = suite._clean_scored_result(
                model, self._images, self._labels, self._model_name,
                self._dataset)
            suite._score_outcomes(model, self._labels, clean_correct,
                                  result, None, outcomes)
        self._result = result
        self._model_blob = None  # the snapshot served its purpose
        return result
