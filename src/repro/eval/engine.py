"""Batched robustness-evaluation engine.

Every headline artifact (Table III/IV accuracy grids, the transfer study)
reduces to the same inner loop: craft adversarial counterparts of one test
batch per attack, classify them, tabulate per-attack accuracy.  The
:class:`AttackSuite` runner owns that loop and makes it cheap:

* **one shared clean forward pass** — the clean logits are computed once and
  reused for the ``original`` accuracy and the per-attack flip counts,
  instead of once per metric;
* **per-example early stopping** — every iterative attack is switched to its
  active-mask path (see :mod:`repro.attacks.base`), so the working batch
  shrinks as examples are fooled and PGD/BIM/MIM/CW only spend gradient
  steps on still-correct examples;
* **adversarial caching** — with an :class:`~repro.eval.cache.AdversarialCache`
  attached, finished batches are replayed bit-for-bit across runs keyed by
  (model weights, attack config, data).

Results stream into the existing :class:`~repro.eval.framework.EvaluationResult`
/ :mod:`repro.eval.reporting` types, so all table renderers keep working.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack
from .cache import AdversarialCache, fingerprint_data, fingerprint_model
from .metrics import predict_labels

__all__ = ["AttackRecord", "SuiteResult", "AttackSuite"]


@dataclass
class AttackRecord:
    """Per-attack telemetry from one :class:`AttackSuite` run.

    ``seconds`` covers generation only (attack run or cache replay);
    scoring the result against the victim is excluded.
    """

    attack: str
    accuracy: float
    seconds: float
    from_cache: bool = False
    flipped: int = 0          # correctly-classified examples the attack broke
    evaluated: int = 0

    def __str__(self) -> str:
        source = "cache" if self.from_cache else "fresh"
        return (f"{self.attack:10s} acc={self.accuracy * 100:6.2f}%  "
                f"flipped={self.flipped:d}/{self.evaluated:d}  "
                f"{self.seconds:7.3f}s  [{source}]")


@dataclass
class SuiteResult:
    """Everything one suite run measured for one model."""

    model_name: str
    dataset: str
    clean_accuracy: float
    records: List[AttackRecord] = field(default_factory=list)

    @property
    def accuracy(self) -> Dict[str, float]:
        """Accuracy dict in the shape ``EvaluationResult`` expects."""
        out = {"original": self.clean_accuracy}
        for record in self.records:
            out[record.attack] = record.accuracy
        return out

    @property
    def generation_seconds(self) -> float:
        return sum(r.seconds for r in self.records)


class AttackSuite:
    """Evaluate one or more models against a named attack grid.

    Parameters
    ----------
    attacks:
        Named attack instances (the grid columns).
    cache:
        Optional :class:`AdversarialCache`; hits replay stored batches.
    early_stop:
        ``True``/``False`` forces every attack on/off its per-example
        early-stopping path; the default ``None`` respects each attack's
        own flag (experiment configs build their attacks with early
        stopping on, so the engine path is the default where it matters).
    batch_size:
        Forward-pass batch size for the accuracy measurements.
    """

    def __init__(self, attacks: Dict[str, Attack],
                 cache: Optional[AdversarialCache] = None,
                 early_stop: Optional[bool] = None,
                 batch_size: int = 256) -> None:
        # An empty grid is allowed: the suite then measures clean accuracy
        # only (the framework supports attack-free scenarios).
        self.attacks: Dict[str, Attack] = {}
        for name, attack in attacks.items():
            if early_stop is not None and hasattr(attack, "early_stop"):
                attack = dataclasses.replace(attack, early_stop=early_stop)
            self.attacks[name] = attack
        self.cache = cache
        self.batch_size = batch_size

    def run(self, model: nn.Module, images: np.ndarray, labels: np.ndarray,
            model_name: str = "model", dataset: str = "dataset",
            on_record: Optional[Callable[[AttackRecord], None]] = None
            ) -> SuiteResult:
        """Craft + score every attack against ``model`` on one test batch.

        ``on_record`` is called after each attack finishes, so callers can
        stream rows (the CLI uses it for progress output).
        """
        # The engine's own arrays are host-side: the cache fingerprints and
        # stores host bytes, and the accuracy bookkeeping is scalar work.
        # Attacks and forward passes move batches onto the active backend
        # themselves, so the hot loops still run wherever the backend says.
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        if len(images) == 0:
            raise ValueError("evaluation needs at least one test example")
        with nn.inference_mode(model):
            return self._run_inference(model, images, labels, model_name,
                                       dataset, on_record)

    def _run_inference(self, model, images, labels, model_name, dataset,
                       on_record) -> SuiteResult:
        # The whole grid runs under inference_mode: attacks and
        # predict_labels each force eval mode themselves (and restore it),
        # so accuracies are unchanged — but the suite as a whole now
        # guarantees the caller's model comes back with every submodule
        # flag exactly as it was, even if an attack raises mid-grid.
        clean_preds = predict_labels(model, images, self.batch_size)
        clean_correct = clean_preds == labels
        result = SuiteResult(model_name=model_name, dataset=dataset,
                             clean_accuracy=float(clean_correct.mean()))
        # Weights and the test batch are fixed for the whole grid: hash
        # them once, not per attack.
        model_fp = data_fp = None
        if self.cache is not None:
            model_fp = fingerprint_model(model)
            data_fp = fingerprint_data(images, labels)
        for name, attack in self.attacks.items():
            start = time.perf_counter()
            if self.cache is not None:
                adv, hit = self.cache.get_or_generate(
                    attack, model, images, labels,
                    model_fingerprint=model_fp, data_fingerprint=data_fp)
            else:
                adv, hit = attack(model, images, labels), False
            adv = _backend.active().to_numpy(adv)
            generation_seconds = time.perf_counter() - start
            adv_preds = predict_labels(model, adv, self.batch_size)
            adv_correct = adv_preds == labels
            record = AttackRecord(
                attack=name,
                accuracy=float(adv_correct.mean()),
                seconds=generation_seconds,
                from_cache=hit,
                flipped=int((clean_correct & ~adv_correct).sum()),
                evaluated=len(images),
            )
            result.records.append(record)
            if on_record is not None:
                on_record(record)
        return result

    def run_grid(self, models: Dict[str, nn.Module], images: np.ndarray,
                 labels: np.ndarray, dataset: str = "dataset"
                 ) -> List[SuiteResult]:
        """Evaluate a model x attack grid (one suite run per model)."""
        return [self.run(model, images, labels, model_name=name,
                         dataset=dataset)
                for name, model in models.items()]
