"""``repro.eval`` — the Figure 3 evaluation framework and Sec. IV-E metrics."""

from .cache import AdversarialCache, cache_key, fingerprint_attack, \
    fingerprint_data, fingerprint_model
from .engine import AttackRecord, AttackSuite, PendingSuiteResult, SuiteResult
from .framework import EvaluationFramework, EvaluationResult
from .metrics import AccuracyReport, FilterMetrics, filter_rates, \
    predict_labels, test_accuracy
from .reporting import format_accuracy_table, format_series, format_timing_table
from .shard import Shard, ShardedCrafter, plan_shards
from .transfer import TransferResult, transfer_attack_accuracy

__all__ = [
    "AdversarialCache",
    "cache_key",
    "fingerprint_attack",
    "fingerprint_data",
    "fingerprint_model",
    "AttackRecord",
    "AttackSuite",
    "PendingSuiteResult",
    "SuiteResult",
    "Shard",
    "ShardedCrafter",
    "plan_shards",
    "EvaluationFramework",
    "EvaluationResult",
    "AccuracyReport",
    "FilterMetrics",
    "filter_rates",
    "predict_labels",
    "test_accuracy",
    "format_accuracy_table",
    "format_timing_table",
    "format_series",
    "TransferResult",
    "transfer_attack_accuracy",
]
