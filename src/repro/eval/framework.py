"""The evaluation framework of Figure 3.

Wires the three modules together: **Preprocessing** (scaled, separated,
optionally augmented data), **Defense** (a trainer that produces a
classifier), **Attack** (generators producing adversarial counterparts of
the test set), then computes the Sec. IV-E metrics.  Different attacks and
defenses plug in to form test scenarios, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import nn
from ..attacks.base import Attack
from ..data.datasets import DataSplit
from ..defenses.base import Trainer, TrainingHistory
from .cache import AdversarialCache
from .engine import AttackSuite, SuiteResult

__all__ = ["EvaluationResult", "EvaluationFramework"]


@dataclass
class EvaluationResult:
    """Everything measured for one defense on one dataset."""

    defense: str
    dataset: str
    accuracy: Dict[str, float] = field(default_factory=dict)
    history: Optional[TrainingHistory] = None

    @property
    def mean_epoch_seconds(self) -> float:
        return self.history.mean_epoch_seconds if self.history else 0.0


class EvaluationFramework:
    """Run (defense trainer) x (attack suite) on one preprocessed split.

    Parameters
    ----------
    split:
        Output of the Preprocessing module (scaled + separated).
    attacks:
        Named attack instances; each original test image gets its own
        adversarial counterpart per attack, as in Sec. IV-C.
    eval_size:
        Number of test examples used for accuracy (attacks are expensive;
        the FAST preset evaluates on a subset).
    cache:
        Optional adversarial-example cache — repeated runs against the same
        trained weights replay stored batches instead of regenerating them.
    workers, shard_size:
        Sharded crafting (see :class:`AttackSuite`): ``workers > 1`` fans
        the attack grid out over a spawn pool with identical results.
        Close the framework (or use it as a context manager) when a pool
        was requested.
    """

    def __init__(self, split: DataSplit, attacks: Dict[str, Attack],
                 eval_size: Optional[int] = None,
                 cache: Optional[AdversarialCache] = None,
                 workers: int = 1,
                 shard_size: Optional[int] = None) -> None:
        self.split = split
        self.attacks = dict(attacks)
        n = len(split.test) if eval_size is None else min(eval_size,
                                                          len(split.test))
        if n <= 0:
            raise ValueError("evaluation needs at least one test example")
        self._test_x = split.test.images[:n]
        self._test_y = split.test.labels[:n]
        # early_stop=None: each attack keeps the flag its config chose, so
        # the framework never silently changes attack semantics.
        self.suite = AttackSuite(self.attacks, cache=cache, early_stop=None,
                                 workers=workers, shard_size=shard_size)
        self.last_suite_result: Optional[SuiteResult] = None

    def close(self) -> None:
        """Release the suite's worker pool, if any."""
        self.suite.close()

    def __enter__(self) -> "EvaluationFramework":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def evaluate(self, trainer: Trainer,
                 defense_name: Optional[str] = None) -> EvaluationResult:
        """Train the defense, attack the trained classifier, measure
        accuracy on original and every adversarial example type."""
        name = defense_name or trainer.name
        history = trainer.fit(self.split.train)
        return self.evaluate_pretrained(trainer.model, name, history=history)

    def evaluate_pretrained(self, model: nn.Module, defense_name: str,
                            history: Optional[TrainingHistory] = None
                            ) -> EvaluationResult:
        """Measure an already-trained classifier (used when one training run
        feeds several analyses)."""
        suite_result = self.suite.run(model, self._test_x, self._test_y,
                                      model_name=defense_name,
                                      dataset=self.split.name)
        self.last_suite_result = suite_result
        result = EvaluationResult(defense=defense_name,
                                  dataset=self.split.name, history=history)
        result.accuracy.update(suite_result.accuracy)
        return result
