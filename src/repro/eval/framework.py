"""The evaluation framework of Figure 3.

Wires the three modules together: **Preprocessing** (scaled, separated,
optionally augmented data), **Defense** (a trainer that produces a
classifier), **Attack** (generators producing adversarial counterparts of
the test set), then computes the Sec. IV-E metrics.  Different attacks and
defenses plug in to form test scenarios, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import nn
from ..attacks.base import Attack
from ..data.datasets import DataSplit
from ..defenses.base import Trainer, TrainingHistory
from .metrics import test_accuracy

__all__ = ["EvaluationResult", "EvaluationFramework"]


@dataclass
class EvaluationResult:
    """Everything measured for one defense on one dataset."""

    defense: str
    dataset: str
    accuracy: Dict[str, float] = field(default_factory=dict)
    history: Optional[TrainingHistory] = None

    @property
    def mean_epoch_seconds(self) -> float:
        return self.history.mean_epoch_seconds if self.history else 0.0


class EvaluationFramework:
    """Run (defense trainer) x (attack suite) on one preprocessed split.

    Parameters
    ----------
    split:
        Output of the Preprocessing module (scaled + separated).
    attacks:
        Named attack instances; each original test image gets its own
        adversarial counterpart per attack, as in Sec. IV-C.
    eval_size:
        Number of test examples used for accuracy (attacks are expensive;
        the FAST preset evaluates on a subset).
    """

    def __init__(self, split: DataSplit, attacks: Dict[str, Attack],
                 eval_size: Optional[int] = None) -> None:
        self.split = split
        self.attacks = dict(attacks)
        n = len(split.test) if eval_size is None else min(eval_size,
                                                          len(split.test))
        if n <= 0:
            raise ValueError("evaluation needs at least one test example")
        self._test_x = split.test.images[:n]
        self._test_y = split.test.labels[:n]

    def evaluate(self, trainer: Trainer,
                 defense_name: Optional[str] = None) -> EvaluationResult:
        """Train the defense, attack the trained classifier, measure
        accuracy on original and every adversarial example type."""
        name = defense_name or trainer.name
        history = trainer.fit(self.split.train)
        result = EvaluationResult(defense=name, dataset=self.split.name,
                                  history=history)
        model = trainer.model
        result.accuracy["original"] = test_accuracy(
            model, self._test_x, self._test_y)
        for attack_name, attack in self.attacks.items():
            adv = attack(model, self._test_x, self._test_y)
            result.accuracy[attack_name] = test_accuracy(
                model, adv, self._test_y)
        return result

    def evaluate_pretrained(self, model: nn.Module, defense_name: str,
                            history: Optional[TrainingHistory] = None
                            ) -> EvaluationResult:
        """Measure an already-trained classifier (used when one training run
        feeds several analyses)."""
        result = EvaluationResult(defense=defense_name,
                                  dataset=self.split.name, history=history)
        result.accuracy["original"] = test_accuracy(
            model, self._test_x, self._test_y)
        for attack_name, attack in self.attacks.items():
            adv = attack(model, self._test_x, self._test_y)
            result.accuracy[attack_name] = test_accuracy(
                model, adv, self._test_y)
        return result
