"""Evaluation metrics (Sec. IV-E).

The paper's test-accuracy metric counts, over a tested example set, the
fraction of non-failed tests, where a failure is a misclassified or rejected
original example, or an accepted-but-misclassified adversarial example.
None of the evaluated classifiers reject inputs, so both cases reduce to
argmax-vs-ground-truth — but computed *separately* for original and
adversarial examples, as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .. import backend as _backend
from .. import nn

__all__ = ["test_accuracy", "predict_labels", "AccuracyReport"]


def predict_labels(model: nn.Module, images: np.ndarray,
                   batch_size: int = 256) -> np.ndarray:
    """Argmax predictions in eval mode, batched to bound memory.

    Always returns a **host** array: predictions feed host-side scoring,
    caching and reporting, so this is where a device backend syncs.
    """
    b = _backend.active()
    was_training = model.training
    model.eval()
    try:
        out = []
        for start in range(0, len(images), batch_size):
            with nn.no_grad():
                logits = model(nn.Tensor(images[start:start + batch_size])).data
            out.append(b.to_numpy(logits.argmax(axis=1)))
    finally:
        if was_training:
            model.train()
    return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


def test_accuracy(model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> float:
    """Fraction of examples classified correctly (the Sec. IV-E metric for
    a non-rejecting classifier)."""
    if len(images) == 0:
        raise ValueError("cannot compute accuracy on an empty set")
    preds = predict_labels(model, images)
    return float((preds == np.asarray(labels)).mean())


@dataclass
class AccuracyReport:
    """Accuracy of one classifier on one example type."""

    defense: str
    example_type: str
    accuracy: float

    def __str__(self) -> str:
        return f"{self.defense:12s} {self.example_type:10s} " \
               f"{self.accuracy * 100.0:6.2f}%"
