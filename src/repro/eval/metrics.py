"""Evaluation metrics (Sec. IV-E).

The paper's test-accuracy metric counts, over a tested example set, the
fraction of non-failed tests, where a failure is a misclassified or rejected
original example, or an accepted-but-misclassified adversarial example.
None of the evaluated classifiers reject inputs, so both cases reduce to
argmax-vs-ground-truth — but computed *separately* for original and
adversarial examples, as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .. import backend as _backend
from .. import nn

__all__ = ["test_accuracy", "predict_labels", "AccuracyReport",
           "FilterMetrics", "filter_rates"]


def predict_labels(model: nn.Module, images: np.ndarray,
                   batch_size: int = 256) -> np.ndarray:
    """Argmax predictions in eval mode, batched to bound memory.

    Always returns a **host** array: predictions feed host-side scoring,
    caching and reporting, so this is where a device backend syncs.
    """
    b = _backend.active()
    # inference_mode restores every submodule's exact flag on exit, so a
    # shared model (e.g. one the serving layer borrowed mid-training)
    # never comes back with its mode permanently flipped.
    with nn.inference_mode(model):
        out = []
        for start in range(0, len(images), batch_size):
            with nn.no_grad():
                logits = model(nn.Tensor(images[start:start + batch_size])).data
            out.append(b.to_numpy(logits.argmax(axis=1)))
    return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


def test_accuracy(model: nn.Module, images: np.ndarray,
                  labels: np.ndarray) -> float:
    """Fraction of examples classified correctly (the Sec. IV-E metric for
    a non-rejecting classifier)."""
    if len(images) == 0:
        raise ValueError("cannot compute accuracy on an empty set")
    preds = predict_labels(model, images)
    return float((preds == np.asarray(labels)).mean())


@dataclass
class FilterMetrics:
    """Adversarial-input filter quality (the Sec. IV-E rejection framing).

    The paper's test-accuracy metric counts a *rejected original* as a
    failure and an *accepted adversarial* as a failure; for a detector
    that scores inputs and flags those above a threshold, the two failure
    modes reduce to exactly these two rates:

    * ``detection_rate`` — flagged fraction of adversarial traffic
      (higher is better; ``1 - detection_rate`` of attacks slip through),
    * ``false_positive_rate`` — flagged fraction of clean traffic
      (lower is better; every false positive rejects a good request).
    """

    detection_rate: float
    false_positive_rate: float
    threshold: float
    adversarial_examples: int = 0
    clean_examples: int = 0

    def __str__(self) -> str:
        return (f"detection {self.detection_rate * 100:6.2f}% "
                f"({self.adversarial_examples} adv)   "
                f"false-positive {self.false_positive_rate * 100:6.2f}% "
                f"({self.clean_examples} clean)   "
                f"@ threshold {self.threshold:.3f}")


def filter_rates(clean_scores: Iterable[float],
                 adv_scores: Iterable[float],
                 threshold: float) -> FilterMetrics:
    """Detection / false-positive rates of a score-above-threshold filter.

    ``clean_scores`` / ``adv_scores`` are suspicion scores (higher = more
    likely adversarial) for traffic of known provenance — e.g. the GanDef
    discriminator's perturbed-probabilities on labeled evaluation streams.
    Either stream may be empty; its rate is then reported as 0.0.
    """
    clean = np.asarray(list(clean_scores), dtype=np.float64)
    adv = np.asarray(list(adv_scores), dtype=np.float64)
    return FilterMetrics(
        detection_rate=float((adv > threshold).mean()) if adv.size else 0.0,
        false_positive_rate=float((clean > threshold).mean())
        if clean.size else 0.0,
        threshold=float(threshold),
        adversarial_examples=int(adv.size),
        clean_examples=int(clean.size),
    )


@dataclass
class AccuracyReport:
    """Accuracy of one classifier on one example type."""

    defense: str
    example_type: str
    accuracy: float

    def __str__(self) -> str:
        return f"{self.defense:12s} {self.example_type:10s} " \
               f"{self.accuracy * 100.0:6.2f}%"
