"""Graph capture + fused replay: the ``compiled`` backend.

The hot loop of every iterative attack (PGD/BIM/MIM at the paper's
Sec. IV-C budgets) re-runs the *identical* forward/backward at a fixed
batch shape dozens of times.  Eagerly, each run pays for tape
construction, one closure dispatch per op, a topological sort, and a
fresh output allocation per op.  :class:`CompiledBackend` removes all of
that: the first run at a given (model, shape, mode) key executes eagerly
under a recording hook (:data:`repro.nn.tensor._TRACER`) — so the cold
call returns bit-exact eager results — and compiles the captured graph
into a :class:`Plan`, a flat list of closures that write into
preallocated buffers drawn from the :class:`FastNumpyBackend` pool.
Replays then run the plan: no :class:`~repro.nn.tensor.Tensor` objects,
no tape, no sort, and elementwise chains (ReLU forward masking + backward
masking, the softmax-cross-entropy gradient head) fused into single
in-place passes over those buffers.

Bitwise contract
----------------
Every plan step replays the reference backend's *exact* expression
sequence (same ufuncs, same operand order, same dtypes) with ``out=``
variants writing into the preallocated buffers — IEEE-754 results are
unchanged by the destination, so replayed logits and input gradients are
bit-identical to eager execution (pinned by ``tests/backend/``).

Invalidation / fallback rules
-----------------------------
* **Plans never go stale.**  Parameter arrays are *re-read from the live
  ``Parameter`` objects on every replay*, so in-place weight mutation
  (the fused SGD/Adam steps) and rebinding (``load_state_dict`` during a
  checkpoint hot-reload) are picked up immediately; a parameter whose
  shape or dtype changed invalidates the plan and forces a re-trace.
* **Keys**: plans cache per model object (weakly — a hot-reloaded
  ``ModelRegistry`` entry is a new model and so a new cache), keyed by
  (input shape, input dtype, per-module training flags).  A ragged final
  batch is simply a different key: it traces its own plan or, below the
  worthwhile size, falls back to eager.
* **Eager fallback is transparent**: graphs containing untraceable ops
  (data-dependent indexing — DeepFool's per-class loops, CW's
  formulation, active dropout) poison their key and run eagerly forever
  after; so does any call where a parameter still requires gradients
  (the attack seam freezes them).  The fallback path *is* the eager
  path, so results are identical by construction.

The single-process assumption of the eager substrate carries over:
plans and their buffers are not thread-safe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from .. import obs
from .fast import FastNumpyBackend
from .numpy_backend import conv_output_size

__all__ = ["CompiledBackend", "Plan", "TraceUnsupported", "trace"]


def _plan_hit_ratio(values):
    replays = values.get("repro_backend_plan_replays_total", 0.0)
    total = replays + values.get("repro_backend_plans_built_total", 0.0)
    return replays / total if total else 0.0


class TraceUnsupported(RuntimeError):
    """The captured graph contains an op the plan compiler cannot replay."""


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #
class _Recorder:
    """Collects ``(out, parents, op)`` triples in creation order — which is
    also eager evaluation order, so the forward plan just replays it."""

    __slots__ = ("nodes",)

    def __init__(self) -> None:
        self.nodes: List[Tuple[Any, Tuple[Any, ...], Any]] = []

    def record(self, out, parents, op) -> None:
        self.nodes.append((out, parents, op))


class _recording:
    """Install a :class:`_Recorder` on the tensor layer for one eager run."""

    def __init__(self) -> None:
        self.recorder = _Recorder()

    def __enter__(self) -> _Recorder:
        from ..nn import tensor as tensor_mod
        self._mod = tensor_mod
        if tensor_mod._TRACER[0] is not None:
            raise RuntimeError("nested graph capture is not supported")
        tensor_mod._TRACER[0] = self.recorder
        return self.recorder

    def __exit__(self, *exc) -> None:
        self._mod._TRACER[0] = None


# --------------------------------------------------------------------- #
# the compiled plan
# --------------------------------------------------------------------- #
class Plan:
    """A captured forward/backward as a flat list of buffer-writing steps.

    ``vals[slot]`` holds every node's forward array: plan-owned buffers
    for op outputs, the caller's arrays for inputs, live ``p.data`` reads
    for parameters (refreshed each replay — that is the weight-mutation
    invalidation story), and baked arrays for traced constants.
    ``grads[slot]`` holds backward arrays, reset each replay.

    Arrays returned by :meth:`replay` (the output and the input
    gradients) may live in plan-owned buffers: they are valid until the
    next replay of the same plan.  Every caller on the attack hot loop
    consumes them within the iteration.
    """

    def __init__(self, backend: "FastNumpyBackend") -> None:
        self._b = backend
        self._vals: List[Any] = []
        self._grads: List[Any] = []
        self._fwd: List[Callable[[], None]] = []
        self._bwd: List[Callable[[], None]] = []
        # (slot, Parameter, shape, dtype) — read live each replay.
        self._params: List[Tuple[int, Any, Tuple[int, ...], Any]] = []
        self._input_slots: List[int] = []
        self._input_shapes: List[Tuple[int, ...]] = []
        self._grad_slots: List[int] = []
        self._out_slot: int = -1
        # Labels for the fused cross-entropy head (loss-grad plans only).
        self._label_cell: List[Any] = [None]
        #: Total bytes of plan-owned workspace (drives the LRU byte cap).
        self.buffer_bytes = 0
        self.replays = 0

    # -- validity ------------------------------------------------------ #
    def params_valid(self) -> bool:
        """Whether every bound parameter still has its traced geometry.

        Values are read live, so weight *mutation* never invalidates; a
        parameter rebound to a different shape or dtype does.
        """
        for _, p, shape, dtype in self._params:
            d = p.data
            if d.shape != shape or d.dtype != dtype:
                return False
        return True

    def matches(self, *arrays) -> bool:
        if len(arrays) != len(self._input_slots):
            return False
        return all(a.shape == s for a, s in zip(arrays, self._input_shapes))

    # -- execution ----------------------------------------------------- #
    def replay(self, *arrays):
        """Run the plan on same-shaped inputs; returns the output array.

        Input gradients are available via :meth:`input_grads` afterwards.
        """
        if not self.matches(*arrays):
            raise ValueError(
                f"plan traced for shapes {self._input_shapes}, got "
                f"{[a.shape for a in arrays]}")
        vals = self._vals
        for slot, p, _, _ in self._params:
            vals[slot] = p.data
        for slot, arr in zip(self._input_slots, arrays):
            vals[slot] = arr
        for step in self._fwd:
            step()
        grads = self._grads
        for slot in self._grad_slots:
            grads[slot] = None
        for step in self._bwd:
            step()
        self.replays += 1
        return vals[self._out_slot]

    def input_grads(self) -> Tuple[Any, ...]:
        """Gradients w.r.t. the traced inputs, in input order (valid until
        the next replay)."""
        return tuple(self._grads[slot] for slot in self._input_slots)


_UNSUPPORTED = object()   # poison marker: this key runs eagerly forever


# --------------------------------------------------------------------- #
# plan compiler
# --------------------------------------------------------------------- #
class _PlanBuilder:
    """Compile a recorded graph into a :class:`Plan`.

    Forward steps are emitted in creation (= eager evaluation) order over
    the ancestors of the output; backward steps replay *exactly* the
    eager tape walk — ``reversed(output._topological_order())`` — with
    per-edge contribution order preserved, so gradient accumulation is
    associativity-identical to the eager pass.
    """

    def __init__(self, backend: "FastNumpyBackend", recorder: _Recorder,
                 inputs: Sequence[Any], output: Any) -> None:
        from ..nn.modules import Parameter
        self._Parameter = Parameter
        self.b = backend
        self.plan = Plan(backend)
        self.recorder = recorder
        self.inputs = list(inputs)
        self.output = output
        self.slots: Dict[int, int] = {}          # id(tensor) -> slot
        # slot -> the plan-owned array that holds that node's forward
        # value on every replay (see _register_static).
        self.static_bufs: Dict[int, Any] = {}

    # -- slot management ----------------------------------------------- #
    def _new_slot(self) -> int:
        self.plan._vals.append(None)
        self.plan._grads.append(None)
        return len(self.plan._vals) - 1

    def _define(self, tensor) -> int:
        """Slot for an interior node (an op output being compiled)."""
        key = id(tensor)
        slot = self.slots.get(key)
        if slot is None:
            slot = self._new_slot()
            self.slots[key] = slot
        return slot

    def _slot(self, tensor) -> int:
        """Slot of ``tensor``, classifying unseen tensors as leaves.

        Interior nodes are always registered via :meth:`_define` before
        any consumer resolves them (compilation runs in creation order),
        so an unseen tensor here really is a graph leaf.
        """
        key = id(tensor)
        slot = self.slots.get(key)
        if slot is not None:
            return slot
        slot = self._new_slot()
        self.slots[key] = slot
        if any(tensor is t for t in self.inputs):
            return slot           # input: bound per replay (handled below)
        if isinstance(tensor, self._Parameter):
            if tensor.requires_grad:
                raise TraceUnsupported(
                    "parameter gradients are not compiled (the attack seam "
                    "freezes parameters; train-time graphs run eagerly)")
            self.plan._params.append(
                (slot, tensor, tensor.data.shape, tensor.data.dtype))
            return slot
        if tensor.requires_grad:
            raise TraceUnsupported(
                f"leaf {tensor!r} requires grad but is not a traced input")
        # Constant (e.g. the 1/count factor mean() bakes): hold the array.
        self.plan._vals[slot] = tensor.data
        return slot

    def _buffer(self, shape, dtype=np.float32):
        """A plan-owned buffer drawn from the backend pool (never
        released: the plan is its owner for life)."""
        buf = self.b.scratch(tuple(shape), dtype)
        self.plan.buffer_bytes += buf.nbytes
        return buf

    def _register_static(self, slot: int, buf) -> None:
        """Declare that ``slot``'s forward value lives in ``buf`` — the
        *same array object* on every replay.  Downstream kernels may then
        prebuild strided views of it at compile time instead of paying
        per-replay index machinery."""
        self.static_bufs[slot] = buf

    def _static(self, slot: int):
        return self.static_bufs.get(slot)

    def _adder(self, slot: int) -> Callable[[Any], None]:
        """Accumulator closure for one gradient contribution into ``slot``.

        Mirrors ``backend.accumulate``: the first contribution to land (in
        backward *run* order — the eager tape's accumulation order) adopts
        the array, later ones ``+=`` into it.  Replay resets every grad
        slot to ``None`` first, so the run-time check is what keeps
        multi-consumer accumulation in the eager order regardless of the
        order the consumers were *compiled* in.
        """
        grads = self.plan._grads

        def put(arr, s=slot):
            if grads[s] is None:
                grads[s] = arr
            else:
                grads[s] += arr
        return put

    # -- graph walk ---------------------------------------------------- #
    def build(self) -> Plan:
        recorded = {id(out): (out, parents, op)
                    for out, parents, op in self.recorder.nodes}
        if id(self.output) not in recorded:
            raise TraceUnsupported("output is not a traced op")

        # Ancestors of the output, in creation order (dead branches and
        # anything computed outside the recording window are dropped).
        ancestors = set()
        stack = [self.output]
        while stack:
            node = stack.pop()
            if id(node) in ancestors:
                continue
            ancestors.add(id(node))
            entry = recorded.get(id(node))
            if entry is not None:
                stack.extend(entry[1])
        fwd_nodes = [entry for entry in self.recorder.nodes
                     if id(entry[0]) in ancestors]

        # Which slots need gradients: the inputs, plus anything that
        # (transitively) consumes them.
        needs: set = {id(t) for t in self.inputs}
        for out, parents, _ in fwd_nodes:
            if any(id(p) in needs for p in parents):
                needs.add(id(out))
        if id(self.output) not in needs:
            raise TraceUnsupported("output does not depend on any input")

        compilers = _OP_COMPILERS
        emitted: Dict[int, Tuple[Callable, Optional[Callable]]] = {}
        for out, parents, op in fwd_nodes:
            name, attrs = (op, ()) if isinstance(op, str) else \
                (op[0], op[1]) if isinstance(op, tuple) else (None, ())
            compile_fn = compilers.get(name)
            if compile_fn is None:
                raise TraceUnsupported(f"op {op!r} has no compiled kernel")
            node = _NodeCtx(self, out, parents, attrs, needs)
            emitted[id(out)] = compile_fn(self, node)
            self.plan._fwd.append(emitted[id(out)][0])

        # Backward: replicate the eager walk exactly.  The tape on the
        # traced tensors is still live, so the very DFS the eager
        # backward would run gives the step order (and thereby the
        # accumulation order) bit-for-bit.
        for node in reversed(self.output._topological_order()):
            entry = emitted.get(id(node))
            if entry is not None and entry[1] is not None:
                self.plan._bwd.append(entry[1])

        for t in self.inputs:
            slot = self.slots.get(id(t))
            if slot is None:
                raise TraceUnsupported("input does not reach the output")
            self.plan._input_slots.append(slot)
            self.plan._input_shapes.append(t.data.shape)
        self.plan._out_slot = self.slots[id(self.output)]
        self.plan._grad_slots = [i for i in range(len(self.plan._grads))]
        return self.plan


class _NodeCtx:
    """Per-node compile context handed to the op kernel compilers."""

    __slots__ = ("out", "parents", "attrs", "slot", "parent_slots",
                 "shape", "dtype", "needs_grad", "parent_needs")

    def __init__(self, builder: _PlanBuilder, out, parents, attrs, needs):
        self.out = out
        self.parents = parents
        self.attrs = attrs
        self.parent_slots = tuple(builder._slot(p) for p in parents)
        self.slot = builder._define(out)
        self.shape = out.data.shape
        self.dtype = out.data.dtype
        self.needs_grad = id(out) in needs
        self.parent_needs = tuple(id(p) in needs for p in parents)


# --------------------------------------------------------------------- #
# compile-time machinery for the conv/pool workspace kernels
# --------------------------------------------------------------------- #
def _patch_view(x, n, c, kh, kw, oh, ow, sh, sw):
    """The (N, C, kh, kw, oh, ow) sliding-window view im2col copies from —
    identical strides to the eager backends' as_strided call."""
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s[0], s[1], s[2], s[3], s[2] * sh, s[3] * sw),
        writeable=False,
    )


def _filler(shape):
    """Deterministic rounding-sensitive sample data for compile-time
    contraction verification when no captured array is available (an
    integer ramp would sum exactly and mask kernel-order divergence)."""
    size = int(np.prod(shape))
    return np.sin(np.arange(size, dtype=np.float64)) \
        .astype(np.float32).reshape(shape)


def _frozen_contraction(b, subscripts, a_sample, b_sample):
    """Resolve fast.einsum's verify-then-trust at compile time.

    Every replay must serve exactly what the eager fast path converges
    to for this (subscripts, shapes) key: the BLAS shortcut once proven
    bit-identical to the reference contraction, the reference otherwise.
    The verdict is computed here — on the capture run's real arrays —
    and shared with the backend's own cache so eager and replayed calls
    can never disagree.  Returns ``run(a, b, out)``.
    """
    bk = b.b
    shortcut = bk._SHORTCUTS[subscripts]
    key = (subscripts, (a_sample.shape, b_sample.shape))
    reference = None
    ok = bk._matmul_ok.get(key)
    if not isinstance(ok, bool):
        reference = np.einsum(subscripts, a_sample, b_sample, optimize=True)
        ok = np.array_equal(reference, shortcut(a_sample, b_sample))
        bk._matmul_ok[key] = ok
    if ok:
        if subscripts == "ok,nkl->nol":
            def run(a, b2, o):
                np.matmul(a, b2, out=o)
        else:  # "ok,nol->nkl": the weight-transposed input-grad fold
            def run(a, b2, o):
                np.matmul(a.T, b2, out=o)
        return run
    # Broadcast-matmul and the reference disagree for this geometry: the
    # reference collapses the batch into one flattened GEMM (different
    # blocking, different bits).  Replicate that exact preparation —
    # gather the batch-last operand into a (contracted, batch*cols)
    # buffer, one 2-D GEMM, permute back — with plan-owned buffers, and
    # keep it only if it proves bit-identical on the captured data;
    # otherwise replay the einsum itself with its path frozen.
    if reference is None:
        reference = np.einsum(subscripts, a_sample, b_sample, optimize=True)
    o_dim, k_dim = a_sample.shape
    n_dim, _, l_dim = b_sample.shape
    if subscripts == "ok,nkl->nol":
        rows, transpose_a = o_dim, False
    else:  # "ok,nol->nkl"
        rows, transpose_a = k_dim, True
    rhs = b._buffer((b_sample.shape[1], n_dim * l_dim))
    rhs3 = rhs.reshape(b_sample.shape[1], n_dim, l_dim)
    prod = b._buffer((rows, n_dim * l_dim))
    prod_t = prod.reshape(rows, n_dim, l_dim).transpose(1, 0, 2)

    if transpose_a:
        def run(a, b2, o):
            np.copyto(rhs3, b2.transpose(1, 0, 2))
            np.matmul(a.T, rhs, out=prod)
            np.copyto(o, prod_t)
    else:
        def run(a, b2, o):
            np.copyto(rhs3, b2.transpose(1, 0, 2))
            np.matmul(a, rhs, out=prod)
            np.copyto(o, prod_t)
    check = np.empty_like(reference)
    run(a_sample, b_sample, check)
    if np.array_equal(reference, check):
        return run
    path = np.einsum_path(subscripts, a_sample, b_sample, optimize=True)[0]

    def run_einsum(a, b2, o, subs=subscripts, p=path):
        np.einsum(subs, a, b2, out=o, optimize=p)
    return run_einsum


def _static_col2im(b: "_PlanBuilder", gcols6, xsh, kh, kw, sh, sw,
                   ph, pw, oh, ow):
    """Compile-time col2im: a preallocated padded accumulator plus
    prebuilt slice-view pairs replaying the reference kh*kw accumulation
    loop in the identical order (or, for exact non-overlapping tiling,
    the pure-permutation transpose copy — no sums, so bit-trivial).

    Returns ``(run, grad_view)``: ``run()`` folds ``gcols6`` into the
    accumulator, after which ``grad_view`` holds the input gradient.
    """
    n, c, h, w = xsh
    ph2, pw2 = h + 2 * ph, w + 2 * pw
    folded = b._buffer((n, c, ph2, pw2))
    if sh == kh and sw == kw and oh * kh == ph2 and ow * kw == pw2:
        dst6 = folded.reshape(n, c, oh, kh, ow, kw)
        src_t = gcols6.transpose(0, 1, 4, 2, 5, 3)

        def run():
            np.copyto(dst6, src_t)
    else:
        pairs = []
        for ki in range(kh):
            i_end = ki + sh * oh
            for kj in range(kw):
                j_end = kj + sw * ow
                pairs.append((folded[:, :, ki:i_end:sh, kj:j_end:sw],
                              gcols6[:, :, ki, kj]))

        def run():
            folded.fill(0.0)
            for dst, src in pairs:
                np.add(dst, src, out=dst)   # == reference `+=`, same order
    if ph or pw:
        return run, folded[:, :, ph:ph + h, pw:pw + w]
    return run, folded


# --------------------------------------------------------------------- #
# op kernels
#
# Each compiler returns ``(fwd, bwd_or_None)`` closures over the plan's
# ``vals``/``grads`` lists and preallocated buffers.  Every kernel
# replays the eager op's reference expressions with ``out=`` variants —
# see the module docstring's bitwise contract.
# --------------------------------------------------------------------- #
def _passthrough_edge(b: _PlanBuilder, node: _NodeCtx, pi: int):
    """Copy-through gradient edge (add/sub left side): eager accumulates
    the child's (shared, non-owned) grad, which the backends copy."""
    pslot = node.parent_slots[pi]
    pshape = node.parents[pi].data.shape
    if pshape != node.shape:
        raise TraceUnsupported("broadcast gradient onto a traced-input "
                               "path is not compiled")
    edge = b._buffer(pshape)
    put = b._adder(pslot)
    grads = b.plan._grads
    i = node.slot

    def bwd_part():
        np.copyto(edge, grads[i])
        put(edge)
    return bwd_part


def _check_same_shape(node: _NodeCtx, pi: int) -> None:
    if node.parents[pi].data.shape != node.shape:
        raise TraceUnsupported("broadcast gradient onto a traced-input "
                               "path is not compiled")


def _compile_add(b: _PlanBuilder, node: _NodeCtx):
    pa, pb = node.parent_slots
    vals, i = b.plan._vals, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.add(vals[pa], vals[pb], out=out)
        vals[i] = out

    parts = []
    if node.parent_needs[0]:
        parts.append(_passthrough_edge(b, node, 0))
    if node.parent_needs[1]:
        parts.append(_passthrough_edge(b, node, 1))
    return fwd, _combine(parts)


def _compile_sub(b: _PlanBuilder, node: _NodeCtx):
    pa, pb = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.subtract(vals[pa], vals[pb], out=out)
        vals[i] = out

    parts = []
    if node.parent_needs[0]:
        parts.append(_passthrough_edge(b, node, 0))
    if node.parent_needs[1]:
        _check_same_shape(node, 1)
        edge = b._buffer(node.parents[1].data.shape)
        put = b._adder(pb)

        def neg_part():
            np.negative(grads[i], out=edge)
            put(edge)
        parts.append(neg_part)
    return fwd, _combine(parts)


def _compile_neg(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.negative(vals[pa], out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        _check_same_shape(node, 0)
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            np.negative(grads[i], out=edge)
            put(edge)
    return fwd, bwd


def _compile_mul(b: _PlanBuilder, node: _NodeCtx):
    pa, pb = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.multiply(vals[pa], vals[pb], out=out)
        vals[i] = out

    parts = []
    for pi, pslot, other in ((0, pa, pb), (1, pb, pa)):
        if not node.parent_needs[pi]:
            continue
        _check_same_shape(node, pi)
        edge = b._buffer(node.shape)
        put = b._adder(pslot)

        def mul_part(e=edge, p=put, o=other):
            np.multiply(grads[i], vals[o], out=e)
            p(e)
        parts.append(mul_part)
    return fwd, _combine(parts)


def _compile_div(b: _PlanBuilder, node: _NodeCtx):
    pa, pb = node.parent_slots
    if node.parent_needs[1]:
        raise TraceUnsupported("gradient through a division denominator "
                               "is not compiled")
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.divide(vals[pa], vals[pb], out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        _check_same_shape(node, 0)
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            np.divide(grads[i], vals[pb], out=edge)
            put(edge)
    return fwd, bwd


def _compile_matmul(b: _PlanBuilder, node: _NodeCtx):
    pa, pb = node.parent_slots
    if node.parent_needs[1]:
        raise TraceUnsupported("matmul weight gradients are not compiled")
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.matmul(vals[pa], vals[pb], out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(node.parents[0].data.shape)
        put = b._adder(pa)

        def bwd():
            # eager: grad @ swapaxes(other, -1, -2)
            np.matmul(grads[i], vals[pb].swapaxes(-1, -2), out=edge)
            put(edge)
    return fwd, bwd


def _compile_reshape(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    shape = node.shape
    pshape = node.parents[0].data.shape

    src = b._static(pa)
    if src is not None:
        view = src.reshape(shape)             # stable view of a static buf
        b._register_static(i, view)

        def fwd():
            vals[i] = view
    else:
        def fwd():
            vals[i] = vals[pa].reshape(shape)  # view, exactly like eager

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(pshape)
        put = b._adder(pa)

        def bwd():
            np.copyto(edge, grads[i].reshape(pshape))
            put(edge)
    return fwd, bwd


def _compile_sum(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    axis, keepdims = node.attrs
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    pshape = node.parents[0].data.shape
    out = b._buffer(node.shape, node.dtype)
    b._register_static(i, out)

    def fwd():
        np.sum(vals[pa], axis=axis, keepdims=keepdims, out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(pshape)
        put = b._adder(pa)
        expand = axis is not None and not keepdims

        def bwd():
            g = grads[i]
            if expand:
                g = np.expand_dims(g, axis)
            np.copyto(edge, g)                # broadcast copy, as eager
            put(edge)
    return fwd, bwd


def _compile_relu(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    maskb = b._buffer(node.shape, np.bool_)
    mask = b._buffer(node.shape)
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        # eager: mask = (x > 0).astype(float32); out = x * mask — fused
        # into one pass over preallocated buffers.
        x = vals[pa]
        np.greater(x, 0, out=maskb)
        np.copyto(mask, maskb, casting="unsafe")
        np.multiply(x, mask, out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            np.multiply(grads[i], mask, out=edge)   # fused ReLU backward
            put(edge)
    return fwd, bwd


def _compile_leaky_relu(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    (slope,) = node.attrs
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    maskb = b._buffer(node.shape, np.bool_)
    mask = b._buffer(node.shape)
    scale = b._buffer(node.shape)
    out = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        # eager: scale = mask + slope * (1 - mask); out = x * scale
        x = vals[pa]
        np.greater(x, 0, out=maskb)
        np.copyto(mask, maskb, casting="unsafe")
        np.subtract(1.0, mask, out=scale)
        np.multiply(slope, scale, out=scale)
        np.add(mask, scale, out=scale)
        np.multiply(x, scale, out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            np.multiply(grads[i], scale, out=edge)
            put(edge)
    return fwd, bwd


def _compile_sigmoid(b: _PlanBuilder, node: _NodeCtx):
    from ..nn.functional import _stable_sigmoid   # compile time, not import
    (pa,) = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    tmp = b._buffer(node.shape)

    def fwd():
        vals[i] = _stable_sigmoid(vals[pa])   # same helper as eager

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            # eager: grad * out * (1 - out), left-associated
            o = vals[i]
            np.multiply(grads[i], o, out=edge)
            np.subtract(1.0, o, out=tmp)
            edge *= tmp
            put(edge)
    return fwd, bwd


def _compile_tanh(b: _PlanBuilder, node: _NodeCtx):
    (pa,) = node.parent_slots
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    out = b._buffer(node.shape)
    tmp = b._buffer(node.shape)
    b._register_static(i, out)

    def fwd():
        np.tanh(vals[pa], out=out)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        edge = b._buffer(node.shape)
        put = b._adder(pa)

        def bwd():
            # eager: grad * (1 - out ** 2)
            np.power(out, 2, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            np.multiply(grads[i], tmp, out=edge)
            put(edge)
    return fwd, bwd


def _compile_conv2d(b: _PlanBuilder, node: _NodeCtx):
    sh, sw, ph, pw = node.attrs
    px = node.parent_slots[0]
    pwslot = node.parent_slots[1]
    pbias = node.parent_slots[2] if len(node.parents) > 2 else None
    if any(node.parent_needs[1:]):
        raise TraceUnsupported("conv weight/bias gradients are not compiled")
    weight = node.parents[1]
    out_c, _, kh, kw = weight.data.shape
    xsh = node.parents[0].data.shape
    n, c, h, w = xsh
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    length = oh * ow
    k = c * kh * kw
    oshape = node.shape
    bk = b.b
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot
    track_grad = node.parent_needs[0]

    # Plan-static im2col: the zero border of ``padded`` is written once
    # here; each replay refreshes only the interior and runs the two
    # copies eager im2col performs (pad fill, patch gather) straight
    # through prebuilt views — no allocation, no index machinery.
    padded = b._buffer((n, c, h + 2 * ph, w + 2 * pw))
    padded.fill(0.0)
    interior = padded[:, :, ph:ph + h, pw:pw + w]
    patches = _patch_view(padded, n, c, kh, kw, oh, ow, sh, sw)
    cols = b._buffer((n, k, length))
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    out = b._buffer(oshape)
    out3 = out.reshape(n, out_c, length)
    b._register_static(i, out)

    # Prime the workspace with the capture run's real activation so the
    # contraction verdicts below are computed on real data.
    np.copyto(interior, node.parents[0].data)
    np.copyto(cols6, patches)
    mm_fwd = _frozen_contraction(b, "ok,nkl->nol",
                                 weight.data.reshape(out_c, k), cols)

    # Weights are read live (rebinding-safe), but the reshaped views are
    # cached by array identity: in-place optimizer steps keep the same
    # array, so the steady state pays an `is` check instead of a reshape.
    wcache: List[Any] = [None, None]

    def w_mat():
        wd = vals[pwslot]
        if wd is not wcache[0]:
            wcache[0] = wd
            wcache[1] = wd.reshape(out_c, k)
        return wcache[1]

    bcache: List[Any] = [None, None]

    def fwd():
        np.copyto(interior, vals[px])
        np.copyto(cols6, patches)
        mm_fwd(w_mat(), cols, out3)
        if pbias is not None:
            bd = vals[pbias]
            if bd is not bcache[0]:
                bcache[0] = bd
                bcache[1] = bd.reshape(1, out_c, 1, 1)
            np.add(out, bcache[1], out=out)
        vals[i] = out

    bwd = None
    if track_grad:
        gcols = b._buffer((n, k, length))
        gcols6 = gcols.reshape(n, c, kh, kw, oh, ow)
        fold, gx_view = _static_col2im(b, gcols6, xsh, kh, kw, sh, sw,
                                       ph, pw, oh, ow)
        # With padding the fold leaves the input grad as a strided slice;
        # compact it so downstream reshapes stay copy-free views (eager
        # materialises a contiguous grad too, via accumulate's copy).
        gxbuf = b._buffer(xsh) if (ph or pw) else None
        g_cap = node.out.grad
        g_sample = (g_cap.reshape(n, out_c, length) if g_cap is not None
                    else _filler((n, out_c, length)))
        mm_bwd = _frozen_contraction(b, "ok,nol->nkl",
                                     weight.data.reshape(out_c, k), g_sample)
        put = b._adder(px)
        gcache: List[Any] = [None, None]

        def bwd():
            g = grads[i]
            if g is not gcache[0]:
                gcache[0] = g
                gcache[1] = g.reshape(n, out_c, length)
            mm_bwd(w_mat(), gcache[1], gcols)
            fold()
            if gxbuf is not None:
                np.copyto(gxbuf, gx_view)
                put(gxbuf)
            else:
                put(gx_view)
    return fwd, bwd


def _compile_maxpool2d(b: _PlanBuilder, node: _NodeCtx):
    kh, kw, sh, sw = node.attrs
    (px,) = node.parent_slots
    xsh = node.parents[0].data.shape
    n, c, h, w = xsh
    oshape = node.shape
    oh, ow = oshape[2], oshape[3]
    length = oh * ow
    k2 = kh * kw
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot

    # Static workspace: when the parent's value lives in a plan-owned
    # buffer the sliding-window view is prebuilt here; the argmax result
    # and the gather grids (what take/put_along_axis rebuild per call)
    # are plan-owned as well.
    src = b._static(px)
    patches = (None if src is None else
               _patch_view(src, n, c, kh, kw, oh, ow, sh, sw))
    cols = b._buffer((n, c, k2, length))
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    arg = b._buffer((n, c, length), np.intp)
    out = b._buffer(oshape)
    out3 = out.reshape(n, c, length)
    b._register_static(i, out)
    n_g = np.arange(n).reshape(n, 1, 1)
    c_g = np.arange(c).reshape(1, c, 1)
    l_g = np.arange(length).reshape(1, 1, length)

    def fwd():
        p = patches if patches is not None else \
            _patch_view(vals[px], n, c, kh, kw, oh, ow, sh, sw)
        np.copyto(cols6, p)
        cols.argmax(axis=2, out=arg)   # == np.argmax, minus the wrapper
        # eager: take_along_axis == this prebuilt-grid gather
        np.copyto(out3, cols[n_g, c_g, arg, l_g])
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        gcols = b._buffer((n, c, k2, length))
        gcols6 = gcols.reshape(n, c, kh, kw, oh, ow)
        fold, gx_view = _static_col2im(b, gcols6, xsh, kh, kw, sh, sw,
                                       0, 0, oh, ow)
        put = b._adder(px)
        gcache: List[Any] = [None, None]

        def bwd():
            g = grads[i]
            if g is not gcache[0]:
                gcache[0] = g
                gcache[1] = g.reshape(n, c, length)
            gcols.fill(0.0)
            # eager: put_along_axis == this prebuilt-grid scatter
            gcols[n_g, c_g, arg, l_g] = gcache[1]
            fold()
            put(gx_view)
    return fwd, bwd


def _compile_avgpool2d(b: _PlanBuilder, node: _NodeCtx):
    kh, kw, sh, sw = node.attrs
    (px,) = node.parent_slots
    xsh = node.parents[0].data.shape
    n, c, h, w = xsh
    oshape = node.shape
    oh, ow = oshape[2], oshape[3]
    length = oh * ow
    k2 = kh * kw
    area = float(k2)
    bk = b.b
    vals, grads, i = b.plan._vals, b.plan._grads, node.slot

    src = b._static(px)
    patches = (None if src is None else
               _patch_view(src, n, c, kh, kw, oh, ow, sh, sw))
    cols = b._buffer((n, c, k2, length))
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    out = b._buffer(oshape)
    out3 = out.reshape(n, c, length)
    b._register_static(i, out)

    def fwd():
        p = patches if patches is not None else \
            _patch_view(vals[px], n, c, kh, kw, oh, ow, sh, sw)
        np.copyto(cols6, p)
        np.mean(cols, axis=2, out=out3)
        vals[i] = out

    bwd = None
    if node.parent_needs[0]:
        put = b._adder(px)

        def bwd():
            g = np.repeat(grads[i].reshape(n, c, 1, -1) / area, k2, axis=2)
            g = g.reshape(n, c * k2, length)
            put(bk.col2im(g, xsh, kh, kw, sh, sw, 0, 0))
    return fwd, bwd


def _combine(parts: List[Callable[[], None]]) -> Optional[Callable[[], None]]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]

    def bwd():
        for part in parts:
            part()
    return bwd


_OP_COMPILERS: Dict[Optional[str], Callable] = {
    "add": _compile_add,
    "sub": _compile_sub,
    "neg": _compile_neg,
    "mul": _compile_mul,
    "div": _compile_div,
    "matmul": _compile_matmul,
    "reshape": _compile_reshape,
    "sum": _compile_sum,
    "relu": _compile_relu,
    "leaky_relu": _compile_leaky_relu,
    "sigmoid": _compile_sigmoid,
    "tanh": _compile_tanh,
    "conv2d": _compile_conv2d,
    "maxpool2d": _compile_maxpool2d,
    "avgpool2d": _compile_avgpool2d,
}


# --------------------------------------------------------------------- #
# backward seeds
# --------------------------------------------------------------------- #
def _attach_ones_seed(plan: Plan) -> None:
    """Generic trace: seed the output gradient with ones, exactly like
    ``Tensor.backward()`` with no argument."""
    out_slot = plan._out_slot
    seed = np.ones(plan._seed_shape,              # type: ignore[attr-defined]
                   dtype=np.float32)
    grads = plan._grads

    def inject():
        grads[out_slot] = seed
    plan._bwd.insert(0, inject)


def _attach_ce_seed(plan: Plan, backend: "FastNumpyBackend") -> None:
    """Fused softmax-cross-entropy gradient head.

    Replays, ufunc for ufunc, what the eager chain
    ``softmax_cross_entropy(logits, labels).backward()`` feeds into the
    logits node: ``d(mean(-log_softmax(z)[rows, labels]))/dz``, i.e. the
    log-softmax backward applied to the scatter of ``-1/n`` — see the
    step comments for the exact eager correspondence.  One fused pass
    over six preallocated (n, k) / (n, 1) buffers replaces ~10 tape
    nodes per iteration.
    """
    out_slot = plan._out_slot
    n, k = plan._seed_shape                       # type: ignore[attr-defined]
    vals, grads = plan._vals, plan._grads
    label_cell = plan._label_cell
    mx = backend.scratch((n, 1), np.float32)
    shifted = backend.scratch((n, k), np.float32)
    se = backend.scratch((n, 1), np.float32)
    logp = backend.scratch((n, k), np.float32)
    soft = backend.scratch((n, k), np.float32)
    full = backend.scratch((n, k), np.float32)
    rs = backend.scratch((n, 1), np.float32)
    tmp = backend.scratch((n, k), np.float32)
    gz = backend.scratch((n, k), np.float32)
    rows = np.arange(n)
    # The scatter value: eager seeds backward with ones(()), multiplies by
    # the baked float32(1/n) mean factor, broadcasts over the batch and
    # negates — all exact float32 ops, baked here once.
    c = np.ones((), np.float32) * np.asarray(1.0 / n).astype(np.float32)
    negc = -(np.broadcast_to(c, (n,)).copy())

    def inject():
        z = vals[out_slot]
        # log_softmax forward (only `soft` is needed by the gradient);
        # np.max/np.sum dispatch to exactly these ufunc reductions — the
        # direct calls serve the same kernels minus the wrapper layer.
        np.maximum.reduce(z, axis=-1, keepdims=True, out=mx)
        np.subtract(z, mx, out=shifted)
        np.exp(shifted, out=tmp)
        np.add.reduce(tmp, axis=-1, keepdims=True, out=se)
        np.log(se, out=se)
        np.subtract(shifted, se, out=logp)
        np.exp(logp, out=soft)
        # picked/neg/mean backward: scatter -1/n at (row, label).  Eager
        # uses index_add on the zeroed buffer; one unique index per row,
        # so plain fancy assignment lands the identical values without
        # np.add.at's unbuffered-loop overhead.
        full.fill(0.0)
        full[rows, label_cell[0]] = negc
        # log_softmax backward: full - soft * full.sum(-1, keepdims=True)
        np.add.reduce(full, axis=-1, keepdims=True, out=rs)
        np.multiply(soft, rs, out=tmp)
        np.subtract(full, tmp, out=gz)
        grads[out_slot] = gz
    plan._bwd.insert(0, inject)


# --------------------------------------------------------------------- #
# public trace entry point
# --------------------------------------------------------------------- #
def trace(fn, *example_inputs, backend: Optional[Any] = None):
    """Capture one eager run of ``fn`` into a replayable :class:`Plan`.

    ``fn`` receives one :class:`~repro.nn.tensor.Tensor` per example
    input (floating-point inputs get ``requires_grad=True``) and must
    return a single Tensor.  The returned ``(output, plan)`` pair holds
    the eager result of the capture run and a plan whose
    ``plan.replay(*arrays)`` recomputes the forward for same-shaped
    inputs; ``plan.input_grads()`` then holds gradients of
    ``sum(output)`` w.r.t. the inputs (the ones-seeded backward of
    ``Tensor.backward()``).

    Raises :class:`TraceUnsupported` when the captured graph contains an
    op with no compiled kernel — callers fall back to eager execution.
    """
    from .. import backend as backend_registry
    from ..nn.tensor import Tensor
    b = backend or backend_registry.active()
    tensors = []
    for arr in example_inputs:
        arr = b.asarray(arr)
        tensors.append(Tensor(arr, requires_grad=arr.dtype.kind == "f"))
    with _recording() as recorder:
        out = fn(*tensors)
    if not isinstance(out, Tensor):
        raise TraceUnsupported("traced function must return a single Tensor")
    grad_inputs = [t for t in tensors if t.requires_grad]
    builder = _PlanBuilder(b, recorder, grad_inputs, out)
    plan = builder.build()
    plan._seed_shape = out.data.shape             # type: ignore[attr-defined]
    _attach_ones_seed(plan)
    return out, plan


# --------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------- #
class CompiledBackend(FastNumpyBackend):
    """``fast`` semantics everywhere, plus plan capture/replay on the
    attack seam (``attacks.base.logits_and_input_grad``)."""

    name = "compiled"

    #: Early-stopping attacks shrink the active set, minting one plan per
    #: surviving batch size; a bounded LRU keeps the hoard in check.
    _MAX_PLANS_PER_MODEL = 64
    #: Plans own their workspaces for life, so the LRU is also capped by
    #: total workspace bytes per model (large-batch grids would otherwise
    #: pin one conv workspace per surviving batch size).
    _MAX_PLAN_BYTES_PER_MODEL = 512 * 1024 * 1024
    #: Below this batch size tracing overhead is not worth recouping —
    #: the tail of an early-stopping loop runs eagerly.
    _MIN_COMPILE_BATCH = 2

    def __init__(self) -> None:
        super().__init__()
        self._plans: "WeakKeyDictionary[Any, OrderedDict]" = \
            WeakKeyDictionary()
        # Flat (modules, parameters) per model: the replay-path guards
        # must not pay a module-tree walk per attack iteration.  Refreshed
        # on every cold build (which is when structure could have grown,
        # e.g. lazily-materialised heads).
        self._model_info: "WeakKeyDictionary[Any, Tuple[list, list]]" = \
            WeakKeyDictionary()
        self._tensor_mod = None
        self.stats = {"plans_built": 0, "replays": 0, "eager_calls": 0,
                      "invalidations": 0, "unsupported": 0}
        obs.register(self, CompiledBackend._collect_metrics)
        obs.derive("repro_backend_plan_cache_hit_ratio", _plan_hit_ratio,
                   help="plan replays / (replays + cold builds)")

    #: Scrape-series name per ``stats`` key (stable names are an API).
    _STAT_METRICS = {
        "plans_built": ("repro_backend_plans_built_total",
                        "compiled plans built (cold captures)"),
        "replays": ("repro_backend_plan_replays_total",
                    "compiled-plan cache hits (replays)"),
        "eager_calls": ("repro_backend_plan_eager_calls_total",
                        "calls that ran eagerly (uncompilable or "
                        "sub-threshold)"),
        "invalidations": ("repro_backend_plan_invalidations_total",
                          "plans dropped because parameters changed"),
        "unsupported": ("repro_backend_plan_unsupported_total",
                        "graphs poisoned as untraceable"),
    }

    def _collect_metrics(self) -> list:
        """Scrape-time view of the plan cache: the ``stats`` counters
        (GIL-atomic int reads; no lock needed) plus live plan count and
        pinned workspace bytes."""
        samples = [
            obs.Sample.make(name, "counter", float(self.stats[key]),
                            help=help_)
            for key, (name, help_) in self._STAT_METRICS.items()
        ]
        plan_count = 0
        plan_bytes = 0
        try:
            per_model = list(self._plans.values())
        except RuntimeError:            # pragma: no cover - GC race
            per_model = []
        for plans in per_model:
            for plan in list(plans.values()):
                plan_count += 1
                if plan is not _UNSUPPORTED:
                    plan_bytes += plan.buffer_bytes
        samples.append(obs.Sample.make(
            "repro_backend_plans", "gauge", float(plan_count),
            help="live compiled plans (poison markers included)"))
        samples.append(obs.Sample.make(
            "repro_backend_plan_bytes", "gauge", float(plan_bytes),
            help="workspace bytes pinned by live plans"))
        return samples

    # -- the attack seam ---------------------------------------------- #
    def loss_and_input_grad(self, model, images, labels):
        """Logits and input gradient of the mean softmax cross-entropy.

        Returns ``(logits, grad)`` — replayed from a cached plan when one
        matches, else computed eagerly under capture (building the plan
        as a side effect).  Returns ``None`` when this call must run on
        the caller's eager path (trainable parameters, grads disabled,
        nested capture, poisoned graph, sub-threshold batch).

        Returned arrays may be plan-owned buffers, valid until the next
        call on the same (model, shape, mode) key — the attack loops
        consume them within the iteration.
        """
        tensor_mod = self._tensor_mod
        if tensor_mod is None:
            from ..nn import tensor as tensor_mod
            self._tensor_mod = tensor_mod
        info = self._model_info.get(model)
        if info is None:
            info = (list(model.modules()), list(model.parameters()))
            self._model_info[model] = info
        modules, params = info
        if not tensor_mod._GRAD_ENABLED[0] \
                or tensor_mod._TRACER[0] is not None \
                or images.shape[0] < self._MIN_COMPILE_BATCH \
                or any(p.requires_grad for p in params):
            self.stats["eager_calls"] += 1
            return None
        # The key pins the traced *program*, not just the shapes: training
        # flags change layer behaviour, and a swapped ``forward`` (an
        # instance override or a monkeypatched class) is a different graph
        # — the function objects ride in the key so such a swap re-captures
        # instead of serving the stale plan.
        key = (images.shape, str(images.dtype),
               tuple(m._training for m in modules),
               tuple(m.__dict__.get("forward",
                                    getattr(type(m), "forward", None))
                     for m in modules))
        plans = self._plans.get(model)
        if plans is None:
            plans = OrderedDict()
            self._plans[model] = plans
        entry = plans.get(key)
        if entry is _UNSUPPORTED:
            self.stats["eager_calls"] += 1
            return None
        if entry is not None and not entry.params_valid():
            del plans[key]
            self.stats["invalidations"] += 1
            entry = None
        if entry is not None:
            plans.move_to_end(key)
            self.stats["replays"] += 1
            logits = entry._replay_loss_grad(images, labels)
            return logits, entry.input_grads()[0]
        return self._build(model, plans, key, images, labels)

    def _build(self, model, plans, key, images, labels):
        """Cold path: run eagerly under capture, then compile the plan.
        The eager run's results are returned either way, so an
        unsupported graph costs nothing beyond the poison marker."""
        from ..nn.losses import softmax_cross_entropy
        from ..nn.tensor import Tensor
        x = Tensor(images, requires_grad=True)
        with _recording() as recorder:
            logits = model(x)
        loss = softmax_cross_entropy(logits, labels)
        loss.backward()
        # The capture ran the full model, so any lazily-materialised
        # structure now exists: refresh the flat guard lists.
        self._model_info[model] = (list(model.modules()),
                                   list(model.parameters()))
        try:
            builder = _PlanBuilder(self, recorder, [x], logits)
            plan = builder.build()
            plan._seed_shape = logits.data.shape  # type: ignore[attr-defined]
            _attach_ce_seed(plan, self)
        except TraceUnsupported:
            plans[key] = _UNSUPPORTED
            self.stats["unsupported"] += 1
            return logits.data, x.grad
        plans[key] = plan
        plans.move_to_end(key)
        self._trim(plans)
        self.stats["plans_built"] += 1
        return logits.data, x.grad

    def _trim(self, plans) -> None:
        """Evict least-recently-used plans past the count or byte caps
        (poison markers hold no workspace but age out with the rest)."""
        def workspace_bytes():
            return sum(p.buffer_bytes for p in plans.values()
                       if p is not _UNSUPPORTED)
        while len(plans) > self._MAX_PLANS_PER_MODEL or (
                len(plans) > 1
                and workspace_bytes() > self._MAX_PLAN_BYTES_PER_MODEL):
            plans.popitem(last=False)


def _replay_loss_grad(self: Plan, images, labels) -> Any:
    """Replay a loss-grad plan: stage the labels for the fused CE head,
    then run the standard replay."""
    labels = np.asarray(labels)
    # eager _as_labels: one-hot rows -> argmax, else an int64 cast.  The
    # labels only index the scatter, so the already-int64 hot path skips
    # the defensive copy an astype would make.
    if labels.ndim == 2:
        labels = labels.argmax(axis=1)
    elif labels.dtype != np.int64:
        labels = labels.astype(np.int64)
    self._label_cell[0] = labels
    return self.replay(images)


Plan._replay_loss_grad = _replay_loss_grad
