"""Optional GPU backend: ``cupy`` as a drop-in array namespace.

Registered automatically by :mod:`repro.backend` when ``cupy`` is
importable; on CPU-only machines this module is never imported and the
backend simply does not appear in :func:`repro.backend.available_backends`.

The design keeps determinism anchored on the host: RNG streams stay
``numpy.random.Generator`` (see :mod:`repro.backend.base`), stochastic
draws are made on the CPU and transferred, and ``to_numpy`` synchronizes
results back for host-side scoring, caching and checkpointing.  Everything
between those boundaries — tensor ops, conv kernels, attack loops — runs on
the device through ``self.xp``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import cupy
import numpy as np

from .base import conv_output_size
from .numpy_backend import NumpyBackend

__all__ = ["CupyBackend"]


class CupyBackend(NumpyBackend):
    """``ArrayOps`` over cupy device arrays."""

    name = "cupy"

    @property
    def xp(self):
        return cupy

    # ------------------------------------------------------------------ #
    # creation / transfer
    # ------------------------------------------------------------------ #
    def asarray(self, data: Any, dtype=None):
        return cupy.asarray(data, dtype=dtype)

    def to_numpy(self, arr: Any) -> np.ndarray:
        return cupy.asnumpy(arr) if isinstance(arr, cupy.ndarray) \
            else np.asarray(arr)

    # ------------------------------------------------------------------ #
    # scratch buffers (cupy has its own memory pool underneath)
    # ------------------------------------------------------------------ #
    def scratch(self, shape: Tuple[int, ...], dtype=np.float32,
                zero: bool = False):
        return cupy.zeros(shape, dtype=dtype) if zero \
            else cupy.empty(shape, dtype=dtype)

    # ------------------------------------------------------------------ #
    # contraction / indexing kernels
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands: Any):
        return cupy.einsum(subscripts, *operands)

    def index_add(self, target, index, update) -> None:
        cupyx = __import__("cupyx")
        cupyx.scatter_add(target, index, update)

    def im2col(self, x, kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int):
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        if pad_h or pad_w:
            x = cupy.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
        s = x.strides
        # Unlike the CPU backends' kernel, no ``writeable=False`` guard on
        # the view: cupy's as_strided does not accept the keyword.
        view = cupy.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kh, kw, out_h, out_w),
            strides=(s[0], s[1], s[2], s[3], s[2] * stride_h, s[3] * stride_w),
        )
        return view.reshape(n, c * kh * kw, out_h * out_w).copy()

    def col2im(self, cols, x_shape: Tuple[int, int, int, int],
               kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int):
        n, c, h, w = x_shape
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        padded = cupy.zeros((n, c, h + 2 * pad_h, w + 2 * pad_w),
                            dtype=cols.dtype)
        cols = cols.reshape(n, c, kh, kw, out_h, out_w)
        for i in range(kh):
            i_end = i + stride_h * out_h
            for j in range(kw):
                j_end = j + stride_w * out_w
                padded[:, :, i:i_end:stride_h, j:j_end:stride_w] += \
                    cols[:, :, i, j]
        if pad_h or pad_w:
            return padded[:, :, pad_h:pad_h + h, pad_w:pad_w + w]
        return padded

    # ------------------------------------------------------------------ #
    # autodiff tape / optimizer steps: the inherited reference expressions
    # are already namespace-generic for these (ndarray arithmetic and
    # ``zeros_like`` resolve on the operand type), except first-use copy:
    # ------------------------------------------------------------------ #
    def accumulate(self, current: Optional[Any], update: Any,
                   owned: bool = False):
        if current is None:
            return update.copy()
        current += update
        return current
