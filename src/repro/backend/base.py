"""The array-backend seam: the :class:`ArrayOps` protocol.

``repro.nn`` (and everything above it) never talks to ``numpy`` directly on
a hot path; it talks to the *active backend*, an object satisfying this
protocol.  The protocol has two halves:

* **the namespace** — ``backend.xp`` is a numpy-compatible array module
  (``numpy`` itself for the two CPU backends, ``cupy`` for the GPU one).
  Element-wise math, reductions and shape ops go through it unchanged, so
  the calling code reads exactly like the numpy it replaced.
* **the capability methods** — operations whose *implementation strategy*
  differs between backends: array creation/transfer, scratch-buffer
  management, the im2col/col2im kernels, tensor-contraction dispatch,
  scatter-add indexing, gradient accumulation on the autodiff tape, the
  fused optimizer update steps and RNG derivation.

The reference implementation is
:class:`~repro.backend.numpy_backend.NumpyBackend`; it is bit-identical to
the pre-seam code by construction (same expressions, same evaluation
order).  :class:`~repro.backend.fast.FastNumpyBackend` keeps the numerics
and changes only the memory behaviour; ``CupyBackend`` swaps the namespace
for ``cupy`` when it is installed.

RNG streams are **always host-side** (``numpy.random.Generator`` seeded via
SHA-256 of ``(seed, tag)``) on every backend: stochastic draws happen on
the CPU and are transferred with :meth:`ArrayOps.asarray`, which is what
makes seeded runs reproducible *across* backends.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["ArrayOps", "conv_output_size"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output (size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding})"
        )
    return out


@runtime_checkable
class ArrayOps(Protocol):
    """What a backend must provide.  See the module docstring for the
    namespace/capability split; parameter conventions follow numpy."""

    #: Registry name (``"numpy"``, ``"fast"``, ``"cupy"``).
    name: str

    @property
    def xp(self) -> Any:
        """The numpy-compatible array namespace for element-wise math,
        reductions, shape ops and comparisons."""

    # ------------------------------------------------------------------ #
    # creation / transfer
    # ------------------------------------------------------------------ #
    def asarray(self, data: Any, dtype: Optional[np.dtype] = None) -> Any:
        """Coerce ``data`` to a backend array (no copy when already one)."""

    def to_numpy(self, arr: Any) -> np.ndarray:
        """Host view/copy of ``arr`` (identity for CPU backends)."""

    # ------------------------------------------------------------------ #
    # scratch buffers
    # ------------------------------------------------------------------ #
    def scratch(self, shape: Tuple[int, ...], dtype: Any = np.float32,
                zero: bool = False) -> Any:
        """A working buffer of the given geometry.  The reference backend
        allocates; pooling backends recycle released buffers, so contents
        are garbage unless ``zero`` is set."""

    def release(self, buf: Any) -> None:
        """Hand a buffer obtained from :meth:`scratch` / :meth:`im2col`
        back for reuse.  Call only when no live array references it; a
        buffer that is never released is simply reclaimed by the GC."""

    # ------------------------------------------------------------------ #
    # contraction / indexing kernels
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """Tensor contraction (the conv forward/backward workhorse)."""

    def index_add(self, target: Any, index: Any, update: Any) -> None:
        """Unbuffered in-place scatter-add (``np.add.at`` semantics)."""

    def im2col(self, x: Any, kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int) -> Any:
        """Unfold NCHW patches into ``(N, C*kh*kw, out_h*out_w)`` columns.
        The result may be a pooled buffer: callers that are done with it
        should :meth:`release` it."""

    def col2im(self, cols: Any, x_shape: Tuple[int, int, int, int],
               kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int) -> Any:
        """Adjoint of :meth:`im2col` (overlaps accumulate).  Never pooled —
        the result usually becomes a gradient and outlives the op."""

    # ------------------------------------------------------------------ #
    # autodiff tape
    # ------------------------------------------------------------------ #
    def accumulate(self, current: Optional[Any], update: Any,
                   owned: bool = False) -> Any:
        """Fold ``update`` into a gradient slot and return the new slot
        value.  ``owned`` promises that ``update`` is a freshly-computed
        temporary no other code holds, which lets a backend adopt it
        in place of copying."""

    # ------------------------------------------------------------------ #
    # fused attack step
    # ------------------------------------------------------------------ #
    def signed_ascent(self, adv: Any, grad: Any, step: float, origin: Any,
                      eps: float, low: float, high: float) -> Any:
        """One signed-gradient ascent step with projection:
        ``clip(clip(adv + step * sign(grad), origin ± eps), [low, high])``
        as a single fused pass.  May return a pooled buffer — callers
        release it after consuming it."""

    # ------------------------------------------------------------------ #
    # fused optimizer steps
    # ------------------------------------------------------------------ #
    def sgd_step(self, param: Any, grad: Any, velocity: Optional[Any],
                 lr: float, momentum: float, weight_decay: float
                 ) -> Optional[Any]:
        """One SGD update, mutating ``param`` in place; returns the new
        velocity buffer (``None`` while momentum is off)."""

    def adam_step(self, param: Any, grad: Any, m: Optional[Any],
                  v: Optional[Any], lr: float, b1: float, b2: float,
                  eps: float, weight_decay: float, steps: int
                  ) -> Tuple[Any, Any]:
        """One Adam update, mutating ``param`` in place; returns the new
        ``(m, v)`` moment buffers."""

    # ------------------------------------------------------------------ #
    # RNG
    # ------------------------------------------------------------------ #
    def derive_rng(self, seed: int, tag: str = "") -> np.random.Generator:
        """Independent host-side generator for ``(seed, tag)`` — identical
        streams on every backend (see module docstring)."""
