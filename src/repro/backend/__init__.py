"""``repro.backend`` — pluggable array backends for the whole stack.

The autodiff tensor, the conv kernels, the attacks and the trainers all
dispatch their array work through the **active backend**, an object
satisfying the :class:`~repro.backend.base.ArrayOps` protocol.  Four
implementations ship:

* ``numpy`` — the reference; bit-identical to the pre-seam code (default),
* ``fast`` — same numerics, allocation-avoiding (pooled im2col workspaces,
  cached einsum paths, fused in-place optimizer steps, in-place gradient
  accumulation); see :class:`~repro.backend.fast.FastNumpyBackend`,
* ``compiled`` — ``fast`` plus graph capture: the attack hot loop's
  forward/backward is traced once per (model, shape, mode) into a static
  buffer-reusing plan and replayed with no tape or per-op dispatch,
  falling back to eager for anything untraceable; see
  :class:`~repro.backend.compiled.CompiledBackend`,
* ``cupy`` — GPU execution, auto-registered only when cupy is installed.

Selection::

    import repro.backend as backend

    backend.use("fast")            # switch the global default
    with backend.use("numpy"):     # or scoped: restores on exit
        ...

    REPRO_BACKEND=fast python -m repro table3 ...   # process default
    python -m repro table3 --backend fast ...       # per-run override

``use`` switches immediately in both forms: called bare it is a permanent
global switch, used as a context manager it additionally restores the
previously-active backend on exit.  Checkpoints record the backend that
produced them (see :mod:`repro.train.checkpoint`), and the cross-backend
equivalence suite (``tests/backend/test_parity.py``) pins ``numpy`` ⇔
``fast`` agreement from gradcheck up to Table 3 accuracies.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Callable, Dict, List, Optional, Tuple, Union

from .base import ArrayOps, conv_output_size
from .compiled import CompiledBackend
from .fast import FastNumpyBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "ArrayOps",
    "NumpyBackend",
    "FastNumpyBackend",
    "CompiledBackend",
    "conv_output_size",
    "register",
    "get_backend",
    "available_backends",
    "resolve",
    "active",
    "use",
    "DEFAULT_BACKEND_ENV",
]

#: Environment variable naming the process-default backend.
DEFAULT_BACKEND_ENV = "REPRO_BACKEND"

_FACTORIES: Dict[str, Callable[[], ArrayOps]] = {}
_INSTANCES: Dict[str, ArrayOps] = {}
_ACTIVE: List[Optional[ArrayOps]] = [None]


def register(name: str, factory: Callable[[], ArrayOps]) -> None:
    """Register a backend factory under ``name`` (idempotent per name)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> ArrayOps:
    """The (cached) backend instance registered under ``name``."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; choose from {sorted(_FACTORIES)}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def resolve(name: Optional[str], fallback: str = "numpy") -> str:
    """Map a backend name to one that is actually registered here.

    Provenance metadata travels with artifacts — a checkpoint records the
    backend that produced it — but the process reading the artifact may
    not have that backend (a ``cupy``-trained checkpoint served on a
    CPU-only box).  ``resolve`` keeps the recorded name when it is
    available and otherwise falls back, so callers can pin execution to
    the producing backend without first probing the registry.
    """
    if name in _FACTORIES:
        assert name is not None
        return name
    if fallback not in _FACTORIES:
        raise KeyError(
            f"fallback backend {fallback!r} is not registered; "
            f"choose from {sorted(_FACTORIES)}")
    return fallback


def active() -> ArrayOps:
    """The currently-active backend (resolving the ``REPRO_BACKEND``
    process default on first use)."""
    backend = _ACTIVE[0]
    if backend is None:
        backend = get_backend(os.environ.get(DEFAULT_BACKEND_ENV, "numpy"))
        _ACTIVE[0] = backend
    return backend


class use:
    """Activate a backend — global switch and context manager in one.

    ``backend.use("fast")`` switches the global default immediately;
    ``with backend.use("fast"): ...`` additionally restores whatever was
    active before on exit.
    """

    def __init__(self, backend: Union[str, ArrayOps]) -> None:
        self._prev = active()
        _ACTIVE[0] = get_backend(backend) if isinstance(backend, str) \
            else backend

    def __enter__(self) -> ArrayOps:
        current = _ACTIVE[0]
        assert current is not None
        return current

    def __exit__(self, *exc) -> None:
        _ACTIVE[0] = self._prev


register("numpy", NumpyBackend)
register("fast", FastNumpyBackend)
register("compiled", CompiledBackend)

# cupy rides along as a drop-in third backend when (and only when) it is
# installed; a CPU-only environment never imports it.
if importlib.util.find_spec("cupy") is not None:  # pragma: no cover
    try:
        from .cupy_backend import CupyBackend

        register("cupy", CupyBackend)
    except Exception:  # pragma: no cover - broken cupy install
        pass
