"""The accelerated CPU backend: same numerics, better memory behaviour.

:class:`FastNumpyBackend` keeps every arithmetic expression of the
reference backend — each fused kernel below replays the reference's
operations in the same order on the same dtypes, so results are
bit-identical (IEEE-754 addition and multiplication are commutative, and no
reassociation is performed) — and attacks only the allocator:

* **pooled im2col workspaces** — the column matrix a convolution or pooling
  layer unfolds into is the largest allocation on the forward/backward hot
  path; instead of a fresh ``(N, C*kh*kw, L)`` array per call, buffers are
  recycled through a shape-keyed free list (``release`` returns them).
* **verified BLAS shortcuts for the conv contractions** — the im2col
  matmuls dispatch straight to ``np.matmul``/``np.tensordot`` for every
  (subscripts, shapes) key where a first-call comparison proved the
  shortcut bit-identical to ``np.einsum(..., optimize=True)``; unverified
  geometries keep the reference einsum.
* **fused in-place SGD/Adam steps** — moment and parameter updates write
  into their existing buffers through scratch temporaries instead of
  allocating 4-6 intermediates per parameter per step.
* **in-place gradient accumulation** — a backward closure that hands the
  tape a freshly-computed temporary (``owned=True``) donates the array as
  the gradient slot instead of it being copied.

Buffer-pool contract: a pooled array handed out by ``im2col``/``scratch``
is reused only after ``release``; an un-released buffer is ordinary garbage
(the pool holds no reference), so forgetting to release is a missed
optimization, never a correctness bug.  Releasing a buffer that something
still references *is* a bug — the autodiff layer only releases column
workspaces after the (single) backward pass that reads them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from .base import conv_output_size
from .numpy_backend import NumpyBackend

__all__ = ["FastNumpyBackend"]

# Free-list entries kept per (shape, dtype) key; beyond this, released
# buffers are dropped to the GC so the pool cannot hoard memory.
_POOL_DEPTH = 8


class _BufferPool:
    """Size-tolerant free list of flat numpy buffers.

    Buffers are stored 1-D per dtype; ``acquire`` carves a contiguous view
    of the requested geometry out of the smallest free buffer that fits
    (callers overwrite every element, so surplus tail bytes are inert).
    The size tolerance is what keeps the pool hot under the *shrinking*
    workspace shapes of early-stopping attack loops, where an exact-shape
    pool would miss on almost every iteration.

    ``release`` resolves a view back to its base buffer; the pool never
    tracks outstanding handles, so an un-released buffer is ordinary
    garbage and any whole, writable, C-contiguous array a caller owns
    outright may be donated.
    """

    def __init__(self) -> None:
        self._free: Dict[Any, List[np.ndarray]] = {}
        #: Served from the free list vs. freshly allocated.  A steady-state
        #: hot loop (e.g. compiled-plan replay) must stop growing
        #: ``misses`` once warm — pinned by the backend test suite.
        self.hits = 0
        self.misses = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        stack = self._free.get(dtype)
        if stack:
            # Smallest free buffer that fits (the list is kept sorted by
            # size, so the first large-enough entry is the best fit).
            for i, buf in enumerate(stack):
                if buf.size >= count:
                    del stack[i]
                    self.hits += 1
                    # Entries are whole owning allocations; a *donated*
                    # one (release of a fresh gradient array or attack
                    # iterate) keeps its original n-D shape, so flatten
                    # before carving — C-contiguous, so it's a view.
                    return buf.reshape(-1)[:count].reshape(shape)
        self.misses += 1
        return np.empty(count, dtype=dtype).reshape(shape)

    def release(self, buf: np.ndarray) -> None:
        if buf.base is not None:
            # A view carved by ``acquire`` (or a caller's reshape of one)
            # resolves to its flat base buffer.
            buf = buf.base
            if not isinstance(buf, np.ndarray):
                return
        if not (buf.flags.c_contiguous and buf.flags.writeable):
            return
        buf = buf.reshape(-1)
        buf = buf.base if buf.base is not None else buf
        stack = self._free.setdefault(buf.dtype, [])
        if any(b is buf for b in stack):
            return
        if len(stack) < _POOL_DEPTH:
            stack.append(buf)
        elif stack[0].size < buf.size:
            # Full: prefer keeping the largest buffers.  Acquire is
            # size-tolerant (small requests carve views out of big
            # buffers), so evicting the smallest entry loses nothing,
            # while dropping a big workspace would doom every later
            # large acquire to a fresh allocation — exactly what happens
            # when compiled plans permanently adopt the big entries and
            # small per-iteration gradient buffers flood the list.
            stack[0] = buf
        else:
            return
        stack.sort(key=lambda b: b.size)


class FastNumpyBackend(NumpyBackend):
    """Allocation-avoiding CPU backend (see module docstring)."""

    name = "fast"

    def __init__(self) -> None:
        self._pool = _BufferPool()
        self._matmul_ok: Dict[Tuple[str, Tuple[Tuple[int, ...], ...]],
                              bool] = {}
        obs.register(self, FastNumpyBackend._collect_metrics)

    def _collect_metrics(self) -> List[obs.Sample]:
        """Scrape-time view of the buffer pool's hit/miss counters."""
        return [
            obs.Sample.make("repro_backend_pool_hits_total", "counter",
                            float(self._pool.hits),
                            help="scratch-buffer pool hits"),
            obs.Sample.make("repro_backend_pool_misses_total", "counter",
                            float(self._pool.misses),
                            help="scratch-buffer pool misses "
                                 "(fresh allocations)"),
        ]

    # ------------------------------------------------------------------ #
    # scratch buffers
    # ------------------------------------------------------------------ #
    def scratch(self, shape: Tuple[int, ...], dtype=np.float32,
                zero: bool = False) -> np.ndarray:
        buf = self._pool.acquire(shape, dtype)
        if zero:
            buf.fill(0)
        return buf

    def release(self, buf: Any) -> None:
        if isinstance(buf, np.ndarray):
            # Views (reshapes of a pooled buffer) resolve to their base.
            self._pool.release(buf if buf.base is None else buf.base)

    def pool_stats(self) -> Dict[str, int]:
        """Free-list hit/miss counters (observability for the steady-state
        no-allocation guarantee of compiled-plan replay)."""
        return {"hits": self._pool.hits, "misses": self._pool.misses}

    # ------------------------------------------------------------------ #
    # contraction kernels
    # ------------------------------------------------------------------ #
    # The conv contractions have direct BLAS formulations that skip
    # einsum's per-call subscript parsing and operand massaging — usually,
    # but not for every operand geometry, the bit-exact same kernel
    # sequence (numpy's dispatch between its batched-matmul and tensordot
    # strategies is size-dependent, batch dimension included).  ``einsum``
    # therefore *verifies then trusts*, per exact (subscripts, shapes) key,
    # and lazily: a shape's first sighting runs the plain reference (shapes
    # that never recur — the shrinking active sets of early-stopping
    # attacks — cost nothing extra), its second sighting computes both and
    # compares, and from then on the shortcut serves every recurrence that
    # proved bit-identical.  Kernel dispatch is deterministic per shape, so
    # one bitwise match on real data pins the summation order; the
    # cross-backend parity suite re-checks end to end.
    _SHORTCUTS = {
        "ok,nkl->nol": lambda w, cols: np.matmul(w, cols),
        "ok,nol->nkl": lambda w, g: np.matmul(w.T, g),
        "nol,nkl->ok": lambda g, cols: np.tensordot(g, cols,
                                                    ((0, 2), (0, 2))),
    }
    _SEEN = "seen-once"

    def einsum(self, subscripts: str, *operands: Any) -> np.ndarray:
        shortcut = self._SHORTCUTS.get(subscripts)
        if shortcut is not None:
            key = (subscripts, tuple(op.shape for op in operands))
            state = self._matmul_ok.get(key)
            if state is True:
                return shortcut(*operands)
            if state is None:
                self._matmul_ok[key] = self._SEEN
            elif state is self._SEEN:
                reference = np.einsum(subscripts, *operands, optimize=True)
                self._matmul_ok[key] = np.array_equal(
                    reference, shortcut(*operands))
                return reference
        return np.einsum(subscripts, *operands, optimize=True)

    def im2col(self, x: np.ndarray, kh: int, kw: int, stride_h: int,
               stride_w: int, pad_h: int, pad_w: int) -> np.ndarray:
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        if pad_h or pad_w:
            padded = self._pool.acquire(
                (n, c, h + 2 * pad_h, w + 2 * pad_w), x.dtype)
            padded.fill(0)
            padded[:, :, pad_h:pad_h + h, pad_w:pad_w + w] = x
            x = padded
        else:
            padded = None
        s = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kh, kw, out_h, out_w),
            strides=(s[0], s[1], s[2], s[3], s[2] * stride_h, s[3] * stride_w),
            writeable=False,
        )
        cols = self._pool.acquire((n, c * kh * kw, out_h * out_w), x.dtype)
        # The pooled (N, C*kh*kw, L) buffer is C-contiguous, so reshaping it
        # to the patch layout is a view: copyto fills it straight from the
        # strided view with no intermediate.
        np.copyto(cols.reshape(n, c, kh, kw, out_h, out_w), view)
        if padded is not None:
            self._pool.release(padded)
        return cols

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
               kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int) -> np.ndarray:
        n, c, h, w = x_shape
        ph, pw = h + 2 * pad_h, w + 2 * pad_w
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        if (stride_h == kh and stride_w == kw
                and out_h * kh == ph and out_w * kw == pw):
            # Exact non-overlapping tiling (the pooling geometry): every
            # output element receives exactly one column entry, so the fold
            # is a pure layout permutation — one transpose-copy instead of
            # kh*kw strided accumulation passes.  Bit-identical: no sums.
            folded = cols.reshape(n, c, kh, kw, out_h, out_w) \
                .transpose(0, 1, 4, 2, 5, 3).reshape(n, c, ph, pw)
            if pad_h or pad_w:
                return folded[:, :, pad_h:pad_h + h, pad_w:pad_w + w]
            # transpose().reshape() above already copied; safe to return.
            return folded
        return super().col2im(cols, x_shape, kh, kw, stride_h, stride_w,
                              pad_h, pad_w)

    # ------------------------------------------------------------------ #
    # autodiff tape
    # ------------------------------------------------------------------ #
    def accumulate(self, current: Optional[np.ndarray], update: np.ndarray,
                   owned: bool = False) -> np.ndarray:
        if current is None:
            # Adopt owned temporaries; copy shared/broadcast views like the
            # reference does.  Non-writeable arrays (broadcast views) can
            # never be adopted even when flagged owned.
            if owned and update.flags.writeable:
                return update
            return update.copy()
        current += update
        return current

    # ------------------------------------------------------------------ #
    # fused attack step
    # ------------------------------------------------------------------ #
    def signed_ascent(self, adv: np.ndarray, grad: np.ndarray, step: float,
                      origin: np.ndarray, eps: float,
                      low: float, high: float) -> np.ndarray:
        # sign -> mul -> add -> ball clip -> box clip, one pass over a
        # pooled buffer, replaying the reference's exact expression order
        # (``adv + step * sign(grad)`` — scalar multiplication commutes
        # bitwise; clip-with-``out=`` computes the same min/max chain).
        out = self._pool.acquire(adv.shape, np.float32)
        np.sign(grad, out=out)
        np.multiply(out, step, out=out)   # == step * sign(grad)
        np.add(adv, out, out=out)
        lo = self._pool.acquire(adv.shape, np.float32)
        hi = self._pool.acquire(adv.shape, np.float32)
        np.subtract(origin, eps, out=lo)
        np.add(origin, eps, out=hi)
        np.clip(out, lo, hi, out=out)
        np.clip(out, low, high, out=out)
        self._pool.release(hi)
        self._pool.release(lo)
        return out

    # ------------------------------------------------------------------ #
    # fused optimizer steps
    # ------------------------------------------------------------------ #
    def sgd_step(self, param: np.ndarray, grad: np.ndarray,
                 velocity: Optional[np.ndarray], lr: float, momentum: float,
                 weight_decay: float) -> Optional[np.ndarray]:
        work = self._pool.acquire(param.shape, param.dtype)
        if weight_decay:
            np.multiply(param, weight_decay, out=work)
            work += grad                     # == grad + weight_decay * param
            grad = work
        if momentum:
            v = velocity
            if v is None:
                v = np.zeros_like(param)
            np.multiply(v, momentum, out=v)
            v += grad                        # == momentum * v + grad
            velocity = v
            grad = v
        np.multiply(grad, lr, out=work)
        param -= work                        # == param - lr * grad
        self._pool.release(work)
        return velocity

    def adam_step(self, param: np.ndarray, grad: np.ndarray,
                  m: Optional[np.ndarray], v: Optional[np.ndarray],
                  lr: float, b1: float, b2: float, eps: float,
                  weight_decay: float, steps: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
        work = self._pool.acquire(param.shape, param.dtype)
        tmp = self._pool.acquire(param.shape, param.dtype)
        if weight_decay:
            wd = self._pool.acquire(param.shape, param.dtype)
            np.multiply(param, weight_decay, out=wd)
            wd += grad                       # == grad + weight_decay * param
            grad = wd
        else:
            wd = None
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        # m = b1 * m + (1 - b1) * grad, replayed in the reference's order.
        np.multiply(m, b1, out=m)
        np.multiply(grad, 1.0 - b1, out=work)
        m += work
        # v = b2 * v + ((1 - b2) * grad) * grad — note the reference's
        # left-associated product, preserved exactly.
        np.multiply(v, b2, out=v)
        np.multiply(grad, 1.0 - b2, out=work)
        work *= grad
        v += work
        # param -= lr * m_hat / (sqrt(v_hat) + eps)
        np.divide(m, 1.0 - b1 ** steps, out=work)      # m_hat
        np.divide(v, 1.0 - b2 ** steps, out=tmp)       # v_hat
        np.sqrt(tmp, out=tmp)
        tmp += eps
        np.multiply(work, lr, out=work)
        work /= tmp
        param -= work
        if wd is not None:
            self._pool.release(wd)
        self._pool.release(tmp)
        self._pool.release(work)
        return m, v
