"""The reference backend: plain numpy, bit-identical to the pre-seam code.

Every method here is the exact expression (same operations, same evaluation
order, same dtypes) that used to live inline in ``repro.nn`` before the
backend seam was introduced, so activating :class:`NumpyBackend` — the
default — reproduces the seed implementation bit for bit.  All seeded
equivalence tests (attack accuracies, checkpoint/resume bit-identity) pin
that property.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Tuple

import numpy as np

from .base import conv_output_size

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """CPU reference implementation of the :class:`~repro.backend.base.ArrayOps`
    protocol (see there for the contract)."""

    name = "numpy"

    @property
    def xp(self):
        return np

    # ------------------------------------------------------------------ #
    # creation / transfer
    # ------------------------------------------------------------------ #
    def asarray(self, data: Any, dtype=None) -> np.ndarray:
        return np.asarray(data, dtype=dtype)

    def to_numpy(self, arr: Any) -> np.ndarray:
        return np.asarray(arr)

    # ------------------------------------------------------------------ #
    # scratch buffers (reference: plain allocation, release is a no-op)
    # ------------------------------------------------------------------ #
    def scratch(self, shape: Tuple[int, ...], dtype=np.float32,
                zero: bool = False) -> np.ndarray:
        return np.zeros(shape, dtype=dtype) if zero \
            else np.empty(shape, dtype=dtype)

    def release(self, buf: Any) -> None:
        pass

    # ------------------------------------------------------------------ #
    # contraction / indexing kernels
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands: Any) -> np.ndarray:
        return np.einsum(subscripts, *operands, optimize=True)

    def index_add(self, target: np.ndarray, index: Any,
                  update: np.ndarray) -> None:
        np.add.at(target, index, update)

    def im2col(self, x: np.ndarray, kh: int, kw: int, stride_h: int,
               stride_w: int, pad_h: int, pad_w: int) -> np.ndarray:
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        if pad_h or pad_w:
            x = np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
        # Strided view of all patches: (N, C, kh, kw, out_h, out_w)
        s = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kh, kw, out_h, out_w),
            strides=(s[0], s[1], s[2], s[3], s[2] * stride_h, s[3] * stride_w),
            writeable=False,
        )
        return view.reshape(n, c * kh * kw, out_h * out_w).copy()

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
               kh: int, kw: int, stride_h: int, stride_w: int,
               pad_h: int, pad_w: int) -> np.ndarray:
        n, c, h, w = x_shape
        out_h = conv_output_size(h, kh, stride_h, pad_h)
        out_w = conv_output_size(w, kw, stride_w, pad_w)
        padded = np.zeros((n, c, h + 2 * pad_h, w + 2 * pad_w),
                          dtype=cols.dtype)
        cols = cols.reshape(n, c, kh, kw, out_h, out_w)
        for i in range(kh):
            i_end = i + stride_h * out_h
            for j in range(kw):
                j_end = j + stride_w * out_w
                padded[:, :, i:i_end:stride_h, j:j_end:stride_w] += \
                    cols[:, :, i, j]
        if pad_h or pad_w:
            return padded[:, :, pad_h:pad_h + h, pad_w:pad_w + w]
        return padded

    # ------------------------------------------------------------------ #
    # autodiff tape
    # ------------------------------------------------------------------ #
    def accumulate(self, current: Optional[np.ndarray], update: np.ndarray,
                   owned: bool = False) -> np.ndarray:
        # The reference copies on first use regardless of ownership — the
        # seed implementation always did, and the copy also normalizes
        # non-writeable broadcast views into plain arrays.
        if current is None:
            return update.copy()
        current += update
        return current

    # ------------------------------------------------------------------ #
    # fused attack step
    # ------------------------------------------------------------------ #
    def signed_ascent(self, adv: np.ndarray, grad: np.ndarray, step: float,
                      origin: np.ndarray, eps: float,
                      low: float, high: float) -> np.ndarray:
        """One signed-gradient ascent step with l-inf ball + box projection.

        The reference spells out exactly the expression the attack loops
        used inline — ``adv + step * sign(grad)`` clipped onto
        ``[origin - eps, origin + eps]`` and then onto ``[low, high]`` —
        so a backend's fused override must only change memory behaviour,
        never the arithmetic.  The result may be a pooled buffer on such
        backends: callers release it once they have consumed it.
        """
        xp = self.xp
        out = adv + step * xp.sign(grad)
        out = xp.clip(out, origin - eps, origin + eps)
        return xp.clip(out, low, high).astype(np.float32, copy=False)

    # ------------------------------------------------------------------ #
    # fused optimizer steps (reference: the seed's exact expressions)
    # ------------------------------------------------------------------ #
    def sgd_step(self, param: np.ndarray, grad: np.ndarray,
                 velocity: Optional[np.ndarray], lr: float, momentum: float,
                 weight_decay: float) -> Optional[np.ndarray]:
        if weight_decay:
            grad = grad + weight_decay * param
        if momentum:
            v = velocity
            if v is None:
                v = np.zeros_like(param)
            v = momentum * v + grad
            velocity = v
            grad = v
        param -= lr * grad
        return velocity

    def adam_step(self, param: np.ndarray, grad: np.ndarray,
                  m: Optional[np.ndarray], v: Optional[np.ndarray],
                  lr: float, b1: float, b2: float, eps: float,
                  weight_decay: float, steps: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
        if weight_decay:
            grad = grad + weight_decay * param
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = b1 * m + (1.0 - b1) * grad
        v = b2 * v + (1.0 - b2) * grad * grad
        m_hat = m / (1.0 - b1 ** steps)
        v_hat = v / (1.0 - b2 ** steps)
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)
        return m, v

    # ------------------------------------------------------------------ #
    # RNG
    # ------------------------------------------------------------------ #
    def derive_rng(self, seed: int, tag: str = "") -> np.random.Generator:
        digest = hashlib.sha256(f"{seed}:{tag}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(child_seed)
