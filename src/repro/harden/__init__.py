"""``repro.harden`` — the online hardening loop.

The serve tier's :class:`~repro.serve.quarantine.QuarantineStore`
captures gate-flagged traffic; this package closes the loop around it:

* :func:`fine_tune` — resume the serving checkpoint and anchor the
  GanDef discriminator on the quarantine's source bits (label-free, the
  Sec. III-B signal), staging a candidate archive;
* :func:`run_canary` / :class:`CanaryPolicy` — measure candidate vs
  baseline (clean, robust, detection, false-positive) and decide;
* :class:`HardeningLoop` / :func:`run_harden` — the ``repro harden``
  orchestrator that serves, quarantines, fine-tunes, canaries and
  hot-swaps promoted candidates through the registry's staged
  promote/rollback, deterministically from one seed.
"""

from .canary import CanaryPolicy, CanaryReport, GateEval, decide, \
    evaluate_entry, run_canary
from .finetune import FineTuneResult, fine_tune
from .loop import CycleResult, HardeningLoop, HardenReport, run_harden

__all__ = [
    "CanaryPolicy",
    "CanaryReport",
    "GateEval",
    "decide",
    "evaluate_entry",
    "run_canary",
    "FineTuneResult",
    "fine_tune",
    "CycleResult",
    "HardenReport",
    "HardeningLoop",
    "run_harden",
]
