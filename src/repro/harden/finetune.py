"""Fine-tune a served defense on its own quarantined traffic.

The key observation that makes label-free hardening possible: GanDef's
discriminator trains on the *source bit* (clean = 0, perturbed = 1),
never on class labels (Sec. III-B).  Quarantined serving traffic has no
trustworthy labels by construction — the gate flagged it as adversarial
— but its provenance *is* its source bit, so it anchors the
discriminator directly: quarantined examples enter as source 1 paired
with clean training data as source 0, through the same inner-loop
update Algorithm 1 uses (:meth:`GanDefTrainer.discriminator_anchor_step`).
The classifier continues training only on the clean split — pseudo-
labeling adversarial examples with the victim's own (attacked)
predictions would entrench exactly the mistakes the attack caused.

Defenses without a discriminator have no label-free seam; for them the
fallback is pseudo-labeled continuation on the quarantine (documented
limitation — the canary gate is the safety net that keeps a poisoned
candidate out of production).

Everything is deterministic: the quarantine store orders examples by
content key, the anchor mix is drawn from a derived named RNG stream,
and the candidate's provenance metadata carries no timestamps — the
same base checkpoint plus the same quarantined traffic produce a
bit-identical candidate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from .. import backend as _backend
from .. import obs
from ..eval.metrics import predict_labels
from ..serve.quarantine import QuarantineStore
from ..train.checkpoint import load_checkpoint, read_checkpoint_meta, \
    save_checkpoint
from ..utils.rng import derive_rng

__all__ = ["FineTuneResult", "fine_tune"]


@dataclass
class FineTuneResult:
    """What one fine-tune round produced."""

    candidate_path: str
    trainer_name: str
    base_checkpoint: str
    quarantined: int                 # examples the round trained against
    epochs: int                      # continuation epochs on the clean split
    disc_passes: int                 # anchor passes over the quarantine
    anchor_steps: int                # discriminator (or fallback) updates
    anchored: bool                   # True: source-bit seam; False: fallback
    meta: Dict = None                # the candidate's checkpoint metadata


def _anchor_discriminator(trainer, quarantine_x: np.ndarray,
                          clean_x: np.ndarray, passes: int,
                          seed: int, steps_counter) -> int:
    """Source-bit anchoring: each pass pairs every quarantined example
    (source 1) with a freshly-sampled clean example (source 0), shuffles,
    and runs the batched discriminator inner-loop update."""
    rng = derive_rng(seed, "harden-disc")
    steps = 0
    for _ in range(passes):
        idx = rng.integers(0, len(clean_x), size=len(quarantine_x))
        x = np.concatenate([clean_x[idx], quarantine_x], axis=0)
        s = np.concatenate([
            np.zeros(len(idx), dtype=np.float32),
            np.ones(len(quarantine_x), dtype=np.float32),
        ])
        order = rng.permutation(len(x))
        x, s = x[order], s[order]
        for start in range(0, len(x), trainer.batch_size):
            trainer.discriminator_anchor_step(
                x[start:start + trainer.batch_size],
                s[start:start + trainer.batch_size])
            steps += 1
            steps_counter.inc()
    return steps


def _pseudo_label_continuation(trainer, quarantine_x: np.ndarray,
                               passes: int, seed: int,
                               steps_counter) -> int:
    """Fallback for discriminator-less defenses: continue training on the
    quarantine under the current model's own predictions.  Documented
    limitation — a successful attack makes those predictions wrong, so
    the canary gate decides whether the result is servable."""
    rng = derive_rng(seed, "harden-pseudo")
    pseudo = predict_labels(trainer.model, quarantine_x)
    steps = 0
    for _ in range(passes):
        order = rng.permutation(len(quarantine_x))
        x, t = quarantine_x[order], pseudo[order]
        for start in range(0, len(x), trainer.batch_size):
            trainer.train_step(x[start:start + trainer.batch_size],
                               t[start:start + trainer.batch_size])
            steps += 1
            steps_counter.inc()
    return steps


def fine_tune(
    checkpoint_path: Union[str, os.PathLike],
    quarantine: QuarantineStore,
    *,
    dataset: str,
    staging_dir: Union[str, os.PathLike],
    preset: str = "fast",
    seed: int = 0,
    width: Optional[int] = None,
    backend: Optional[str] = None,
    epochs: int = 1,
    disc_passes: int = 1,
    workers: Optional[int] = None,
    candidate_name: str = "candidate.npz",
    verbose: bool = False,
) -> FineTuneResult:
    """Resume the trainer inside ``checkpoint_path`` and harden it on the
    quarantined traffic, writing a candidate checkpoint to ``staging_dir``.

    The archive metadata names the producing trainer; the matching
    defense is rebuilt for ``dataset``/``preset`` (``width`` overriding
    the preset geometry, exactly as the serving registry does) and the
    **full** state restored — optimizer moments, RNG streams, completed
    epochs — so ``epochs`` continuation epochs on the clean split are
    bit-identical to a training run that never stopped.  ``disc_passes``
    anchor passes over the quarantine follow (see the module docstring
    for the source-bit seam).  ``workers`` is the tri-state of
    :func:`~repro.experiments.train_run.run_train`: ``None`` keeps the
    legacy eager path, ``1`` attaches the in-process sharded engine,
    ``N > 1`` shards across a spawn pool — the engine paths are
    bit-identical at any worker count (the data-parallel contract).

    The candidate's metadata records its full provenance (base
    checkpoint, quarantine fingerprint and size, epochs, passes, seed)
    with no timestamps, so the same inputs produce a bit-identical
    candidate archive.
    """
    if epochs < 0:
        raise ValueError(f"epochs must be non-negative, got {epochs}")
    if disc_passes < 0:
        raise ValueError(
            f"disc_passes must be non-negative, got {disc_passes}")
    # Deferred: the experiment factories pull in every trainer.
    import dataclasses

    from ..experiments.config import get_config
    from ..experiments.runners import build_trainer, load_config_split
    from ..train.parallel import ParallelTrainEngine
    from ..utils.pool import SpawnPool

    steps_counter = obs.counter(
        "repro_harden_finetune_steps_total",
        help="fine-tune update steps taken by the hardening loop")
    tracer = obs.tracer()
    checkpoint_path = os.fspath(checkpoint_path)
    meta = read_checkpoint_meta(checkpoint_path)
    trainer_name = meta.get("trainer", "")
    config = get_config(preset)
    cfg = config.dataset(dataset)
    if width is not None:
        cfg = dataclasses.replace(cfg, model_width=width)
    if backend is not None:
        _backend.get_backend(backend)
        backend_name = backend
    else:
        backend_name = _backend.resolve(meta.get("backend"))

    quarantine_x, _ = quarantine.examples()
    with _backend.use(backend_name):
        trainer = build_trainer(trainer_name, cfg, seed=seed)
        load_checkpoint(trainer, checkpoint_path)
        split = load_config_split(cfg, seed=seed)

        start = tracer.clock() if tracer is not None else 0.0
        pool = SpawnPool(workers) if workers and workers > 1 else None
        engine = ParallelTrainEngine(trainer, workers=workers or 1,
                                     pool=pool).attach() \
            if workers is not None else None
        try:
            if epochs:
                trainer.epochs = trainer.completed_epochs + epochs
                if verbose:
                    print(f"  continuing {trainer_name} for {epochs} "
                          f"epoch(s) on the clean split ...")
                trainer.fit(split.train, callbacks=())
            anchored = hasattr(trainer, "discriminator_anchor_step")
            anchor_steps = 0
            if disc_passes and len(quarantine_x):
                if verbose:
                    mode = "anchoring discriminator on" if anchored \
                        else "pseudo-label continuation over"
                    print(f"  {mode} {len(quarantine_x)} quarantined "
                          f"example(s), {disc_passes} pass(es) ...")
                if anchored:
                    anchor_steps = _anchor_discriminator(
                        trainer, quarantine_x, split.train.images,
                        disc_passes, seed, steps_counter)
                else:
                    anchor_steps = _pseudo_label_continuation(
                        trainer, quarantine_x, disc_passes, seed,
                        steps_counter)
        finally:
            if engine is not None:
                engine.close()
            if pool is not None:
                pool.close()

        os.makedirs(os.fspath(staging_dir), exist_ok=True)
        candidate_path = os.path.join(os.fspath(staging_dir),
                                      candidate_name)
        save_checkpoint(trainer, candidate_path, extra_meta={"fine_tune": {
            "base_checkpoint": checkpoint_path,
            "quarantine_fingerprint": quarantine.fingerprint(),
            "quarantined": int(len(quarantine_x)),
            "epochs": int(epochs),
            "disc_passes": int(disc_passes),
            "anchored": anchored,
            "seed": int(seed),
        }})
    if tracer is not None:
        tracer.emit("harden.finetune", tracer.clock() - start,
                    trainer=trainer_name, quarantined=len(quarantine_x),
                    epochs=epochs, disc_passes=disc_passes)
    return FineTuneResult(
        candidate_path=candidate_path,
        trainer_name=trainer_name,
        base_checkpoint=checkpoint_path,
        quarantined=int(len(quarantine_x)),
        epochs=epochs,
        disc_passes=disc_passes,
        anchor_steps=anchor_steps,
        anchored=anchored,
        meta={key: value
              for key, value in read_checkpoint_meta(candidate_path).items()
              if key != "state"},
    )
