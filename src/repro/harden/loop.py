"""The closed hardening loop: serve → quarantine → fine-tune → canary →
hot-swap.

One :class:`HardeningLoop` owns the long-lived pieces — the model
registry (so staged promotion and rollback survive across cycles) and
the evaluation pools — and each :meth:`cycle` composes the four
subsystems end to end:

1. **serve** — a fixed PGD attacker's traffic (mixed with clean
   requests) runs through a gated :class:`~repro.serve.server.Server`
   whose :class:`~repro.serve.quarantine.QuarantineStore` flag sink
   captures everything the gate catches;
2. **train** — :func:`~repro.harden.finetune.fine_tune` resumes the
   serving checkpoint and anchors the discriminator on the quarantine,
   staging a candidate archive;
3. **eval** — :func:`~repro.harden.canary.run_canary` measures baseline
   and candidate on the same pools and applies the promote/reject
   policy;
4. **serve** — a promoted candidate hot-swaps in through
   :meth:`~repro.serve.registry.ModelRegistry.promote` (provenance
   recorded in the candidate's own metadata); a rejected one leaves the
   old weights serving.

Everything derives from the loop's seed — traffic, quarantine order,
anchor mixes, attack crafting — so the same seed and the same starting
checkpoint reproduce bit-identical promoted weights.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .. import backend as _backend
from .. import obs
from ..serve.cache import PredictionCache
from ..serve.loadgen import LoadReport, build_mixed_load, \
    craft_adversarial_pool, run_load
from ..serve.quarantine import QuarantineStore
from ..serve.registry import ModelEntry, ModelRegistry
from ..serve.server import Server
from .canary import CanaryPolicy, CanaryReport, run_canary
from .finetune import FineTuneResult, fine_tune

__all__ = ["CycleResult", "HardenReport", "HardeningLoop", "run_harden"]

SERVING_NAME = "model"


@dataclass
class CycleResult:
    """Everything one serve→quarantine→fine-tune→canary→swap cycle did."""

    index: int
    flagged: int                     # examples the gate flagged this cycle
    quarantined: int                 # of those, stored (deduped, capped)
    finetune: FineTuneResult
    canary: CanaryReport
    promoted: bool
    fingerprint: str                 # serving fingerprint after the cycle
    load: LoadReport = None

    @property
    def verdict(self) -> str:
        return self.canary.verdict


@dataclass
class HardenReport:
    """What one ``repro harden`` invocation produced."""

    model: str
    dataset: str
    base_checkpoint: str
    cycles: List[CycleResult] = field(default_factory=list)

    @property
    def promotions(self) -> int:
        return sum(1 for c in self.cycles if c.promoted)


class HardeningLoop:
    """Owns the registry and pools; runs hardening cycles against them.

    ``model`` is a training-checkpoint path or a defense name trained on
    the fly at the preset's scale (``base_epochs`` overriding the preset
    epoch count), exactly like ``repro serve``'s ``--model``.  Per-cycle
    artifacts land under ``workdir/cycle_NNN/`` (``quarantine/`` and
    ``staging/candidate.npz``); the serving registry carries staged
    promotions across cycles, so :meth:`rollback` undoes the latest one.
    """

    def __init__(
        self,
        model: str = "zk-gandef",
        dataset: str = "digits",
        preset: str = "fast",
        seed: int = 0,
        backend: Optional[str] = None,
        width: Optional[int] = None,
        gate: str = "auto",
        gate_threshold: Optional[float] = None,
        requests: int = 128,
        adv_fraction: float = 0.5,
        max_request_size: int = 4,
        max_batch: int = 32,
        deadline_ms: float = 5.0,
        base_epochs: Optional[int] = None,
        finetune_epochs: int = 1,
        disc_passes: int = 1,
        workers: Optional[int] = None,
        policy: Optional[CanaryPolicy] = None,
        workdir: Union[str, os.PathLike] = "harden",
        verbose: bool = False,
    ) -> None:
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.model = model
        self.dataset = dataset
        self.preset = preset
        self.seed = seed
        self.backend = backend
        self.width = width
        self.gate = gate
        self.gate_threshold = gate_threshold
        self.requests = requests
        self.adv_fraction = adv_fraction
        self.max_request_size = max_request_size
        self.max_batch = max_batch
        self.deadline_ms = deadline_ms
        self.base_epochs = base_epochs
        self.finetune_epochs = finetune_epochs
        self.disc_passes = disc_passes
        self.workers = workers
        self.policy = policy or CanaryPolicy()
        self.workdir = os.fspath(workdir)
        self.verbose = verbose

        self.registry = ModelRegistry()
        self.base_checkpoint: Optional[str] = None
        self.completed_cycles = 0
        self._split = None
        self._attacks: Optional[Dict] = None
        self._tracer = obs.tracer()
        self._m_cycles = obs.counter(
            "repro_harden_cycles_total",
            help="hardening cycles completed")
        self._m_promotions = obs.counter(
            "repro_harden_promotions_total",
            help="candidates promoted into serving")
        self._m_rollbacks = obs.counter(
            "repro_harden_rollbacks_total",
            help="promotions rolled back")

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def prepare(self) -> ModelEntry:
        """Resolve the base model into a served registry entry (idempotent).

        A defense name trains at the preset's scale first — through
        :func:`~repro.experiments.train_run.run_train` so ``workers``
        applies and a real checkpoint archive exists for the fine-tune
        stage to resume (the loop never fine-tunes weights it cannot
        trace to an archive).
        """
        if self.base_checkpoint is not None:
            return self.registry.get(SERVING_NAME)
        from ..experiments.config import get_config
        from ..experiments.runners import load_config_split

        if self.model.endswith(".npz") or os.path.sep in self.model or \
                os.path.exists(self.model):
            if not os.path.exists(self.model):
                raise ValueError(f"checkpoint {self.model!r} does not exist")
            self.base_checkpoint = os.fspath(self.model)
        else:
            from ..experiments.train_run import run_train

            if self.width is not None:
                raise ValueError(
                    "width overrides apply to checkpoint models only; "
                    "on-the-fly base training uses the preset geometry")
            if self.verbose:
                print(f"training base {self.model} on {self.dataset} "
                      f"({self.preset} preset) ...")
            result = run_train(
                self.dataset, preset=self.preset, defense=self.model,
                seed=self.seed, epochs=self.base_epochs,
                checkpoint_dir=os.path.join(self.workdir, "base"),
                probe_every=0, backend=self.backend,
                workers=self.workers, verbose=self.verbose)
            self.base_checkpoint = result.checkpoint_path
        entry = self.registry.load(
            SERVING_NAME, self.base_checkpoint, dataset=self.dataset,
            preset=self.preset, seed=self.seed, width=self.width,
            backend=self.backend)

        config = get_config(self.preset)
        cfg = config.dataset(self.dataset)
        self._split = load_config_split(cfg, seed=self.seed)
        self._clean_x = self._split.test.images[:cfg.eval_size]
        self._clean_y = self._split.test.labels[:cfg.eval_size]
        pool = cfg.budget.build(fast=config.fast, seed=self.seed)
        # The fixed attacker: PGD at the paper's Sec. IV-C budget.  One
        # instance for traffic crafting and the canary's adaptive check.
        self._attacks = {"pgd": pool["pgd"]}
        return entry

    # ------------------------------------------------------------------ #
    # one cycle
    # ------------------------------------------------------------------ #
    def cycle(self) -> CycleResult:
        """Run one full serve→quarantine→fine-tune→canary→swap cycle."""
        entry = self.prepare()
        index = self.completed_cycles
        cycle_dir = os.path.join(self.workdir, f"cycle_{index:03d}")
        start = self._tracer.clock() if self._tracer is not None else 0.0

        # serve: the attacker attacks what is deployed *now*.
        attack = self._attacks["pgd"]
        with _backend.use(entry.backend):
            adv_pool = craft_adversarial_pool(
                entry.model, self._clean_x, self._clean_y, attack)
        store = QuarantineStore(os.path.join(cycle_dir, "quarantine"))
        server = Server(self.registry, max_batch=self.max_batch,
                        deadline_ms=self.deadline_ms, gate=self.gate,
                        gate_threshold=self.gate_threshold,
                        cache=PredictionCache(), flag_sink=store)
        traffic = build_mixed_load(
            self._clean_x, adv_pool, num_requests=self.requests,
            max_request_size=self.max_request_size,
            adv_fraction=self.adv_fraction, seed=self.seed + index)
        if self.verbose:
            print(f"[cycle {index}] serving {self.requests} requests "
                  f"({self.adv_fraction:.0%} adversarial, "
                  f"gate={server.gate_for(SERVING_NAME).kind}) ...")
        load = run_load(server, SERVING_NAME, traffic)
        flagged = int(sum(int(h.flagged.sum()) for h in load.handles))
        if self.verbose:
            print(f"[cycle {index}] flagged {flagged}, "
                  f"quarantined {len(store)}")

        # train: resume the serving checkpoint, anchor on the quarantine.
        result = fine_tune(
            entry.checkpoint_path, store, dataset=self.dataset,
            staging_dir=os.path.join(cycle_dir, "staging"),
            preset=self.preset, seed=self.seed, width=self.width,
            backend=entry.backend, epochs=self.finetune_epochs,
            disc_passes=self.disc_passes, workers=self.workers,
            verbose=self.verbose)

        # eval: candidate vs baseline on the same pools, attacks
        # re-crafted against each entry's own weights.
        staging = ModelRegistry()
        candidate = staging.load(
            "candidate", result.candidate_path, dataset=self.dataset,
            preset=self.preset, seed=self.seed, width=self.width,
            backend=entry.backend)
        report = run_canary(
            entry, candidate, self._clean_x, self._clean_y, adv_pool,
            self._attacks, gate_kind=self.gate,
            gate_threshold=self.gate_threshold, policy=self.policy,
            workers=self.workers or 1)
        obs.counter("repro_harden_canary_verdicts_total",
                    labels={"verdict": report.verdict},
                    help="canary verdicts by outcome").inc()

        # swap (or not): the registry's staged promotion records
        # provenance in the candidate archive and keeps the displaced
        # entry for rollback.
        if report.promote:
            entry = self.registry.promote(
                SERVING_NAME, result.candidate_path, dataset=self.dataset,
                preset=self.preset, seed=self.seed, width=self.width,
                backend=entry.backend)
            self._m_promotions.inc()
        if self.verbose:
            print(f"[cycle {index}] canary verdict: {report.verdict}"
                  + (f" ({'; '.join(report.reasons)})"
                     if report.reasons else ""))

        self.completed_cycles += 1
        self._m_cycles.inc()
        if self._tracer is not None:
            self._tracer.emit("harden.cycle",
                              self._tracer.clock() - start,
                              cycle=index, flagged=flagged,
                              quarantined=len(store),
                              verdict=report.verdict)
        return CycleResult(
            index=index, flagged=flagged, quarantined=len(store),
            finetune=result, canary=report, promoted=report.promote,
            fingerprint=self.registry.get(SERVING_NAME).fingerprint,
            load=load)

    def run(self, cycles: int = 1) -> HardenReport:
        """Run ``cycles`` cycles; each one fine-tunes whatever is serving
        *after* the previous cycle's verdict."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        self.prepare()
        report = HardenReport(model=self.model, dataset=self.dataset,
                              base_checkpoint=self.base_checkpoint)
        for _ in range(cycles):
            report.cycles.append(self.cycle())
        return report

    def rollback(self) -> ModelEntry:
        """Undo the latest promotion (one step); counts the rollback."""
        entry = self.registry.rollback(SERVING_NAME)
        self._m_rollbacks.inc()
        return entry


def run_harden(
    model: str = "zk-gandef",
    dataset: str = "digits",
    preset: str = "fast",
    seed: int = 0,
    cycles: int = 1,
    workdir: Union[str, os.PathLike] = "harden",
    verbose: bool = False,
    **kwargs,
) -> HardenReport:
    """``repro harden``'s entry point: build a :class:`HardeningLoop`
    and run ``cycles`` full cycles.  Keyword arguments pass through to
    the loop's constructor."""
    loop = HardeningLoop(model=model, dataset=dataset, preset=preset,
                         seed=seed, workdir=workdir, verbose=verbose,
                         **kwargs)
    return loop.run(cycles)
