"""Canary evaluation: is the fine-tuned candidate safe to serve?

A hardening round must never make production worse to make the gate
better.  The canary therefore measures **both** entries — the serving
baseline and the staged candidate — on the same evaluation pools and
applies an explicit promote/reject policy over four quantities:

* clean accuracy (:func:`~repro.eval.metrics.test_accuracy`),
* robust accuracy under the sharded :class:`~repro.eval.engine.AttackSuite`
  (worst case over the attack grid — attacks are re-crafted against each
  entry's own weights, the adaptive check),
* the gate's detection rate and clean false-positive rate
  (:func:`~repro.eval.metrics.filter_rates` over a fixed adversarial
  pool — the traffic distribution the cycle actually observed).

The policy's bounds are regressions *relative to the baseline*, not
absolute targets, so the same policy works at the FAST preset's scale
and the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import backend as _backend
from .. import nn
from ..attacks.base import Attack
from ..eval.engine import AttackSuite
from ..eval.metrics import filter_rates, test_accuracy
from ..serve.gate import DefenseGate, build_gate
from ..serve.registry import ModelEntry

__all__ = ["CanaryPolicy", "GateEval", "CanaryReport", "decide",
           "evaluate_entry", "run_canary"]


@dataclass
class CanaryPolicy:
    """Promote/reject bounds, all expressed as candidate-vs-baseline.

    ``min_detection_gain`` defaults to 0.0: a candidate must detect at
    least as well as the baseline (the whole point of the round); the
    bench tightens this to demand a strict improvement.
    """

    max_clean_regression: float = 0.02
    max_robust_regression: float = 0.05
    max_fpr_regression: float = 0.05
    min_detection_gain: float = 0.0


@dataclass
class GateEval:
    """One entry's canary measurements."""

    clean_accuracy: float
    robust_accuracy: float
    detection_rate: float
    false_positive_rate: float
    attack_accuracy: Dict[str, float] = field(default_factory=dict)


@dataclass
class CanaryReport:
    """Baseline vs candidate, and the verdict the policy reached."""

    baseline: GateEval
    candidate: GateEval
    verdict: str                     # "promote" | "reject"
    reasons: List[str] = field(default_factory=list)

    @property
    def promote(self) -> bool:
        return self.verdict == "promote"


def _gate_scores(model: nn.Module, gate: DefenseGate,
                 images: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """The gate's suspicion scores for ``images``, batched."""
    out = []
    b = _backend.active()
    with nn.inference_mode(model):
        for start in range(0, len(images), batch_size):
            logits = model(nn.Tensor(images[start:start + batch_size])).data
            out.append(gate.scores(b.to_numpy(logits)))
    return np.concatenate(out) if out else np.empty(0, dtype=np.float64)


def evaluate_entry(entry: ModelEntry, gate: DefenseGate,
                   clean_images: np.ndarray, clean_labels: np.ndarray,
                   adv_images: np.ndarray,
                   attacks: Dict[str, Attack],
                   workers: int = 1) -> GateEval:
    """Measure one servable entry on the canary pools.

    Gate rates use the **fixed** ``adv_images`` pool (what the attacker
    actually sent this cycle); robust accuracy re-crafts every attack in
    ``attacks`` against the entry's own weights via the sharded
    :class:`AttackSuite` (``workers > 1`` fans the grid out).  All
    forward passes run under the entry's pinned backend.
    """
    with _backend.use(entry.backend):
        suite = AttackSuite(attacks, early_stop=None, workers=workers)
        try:
            result = suite.run(entry.model, clean_images, clean_labels,
                               model_name=entry.name)
        finally:
            suite.close()
        clean_scores = _gate_scores(entry.model, gate, clean_images)
        adv_scores = _gate_scores(entry.model, gate, adv_images)
    rates = filter_rates(clean_scores, adv_scores, gate.threshold)
    per_attack = {r.attack: r.accuracy for r in result.records}
    return GateEval(
        clean_accuracy=result.clean_accuracy,
        robust_accuracy=min(per_attack.values())
        if per_attack else result.clean_accuracy,
        detection_rate=rates.detection_rate,
        false_positive_rate=rates.false_positive_rate,
        attack_accuracy=per_attack,
    )


def run_canary(baseline: ModelEntry, candidate: ModelEntry,
               clean_images: np.ndarray, clean_labels: np.ndarray,
               adv_images: np.ndarray, attacks: Dict[str, Attack],
               gate_kind: str = "auto",
               gate_threshold: Optional[float] = None,
               policy: Optional[CanaryPolicy] = None,
               workers: int = 1) -> CanaryReport:
    """Evaluate both entries and decide.

    Each entry is gated by its **own** gate of the same kind and
    threshold (a discriminator gate reads the entry's own discriminator
    — that is what the fine-tune round changed).  Every violated bound
    becomes a human-readable reason on the report; any reason rejects.
    """
    base = evaluate_entry(
        baseline, build_gate(gate_kind, baseline, gate_threshold),
        clean_images, clean_labels, adv_images, attacks, workers=workers)
    cand = evaluate_entry(
        candidate, build_gate(gate_kind, candidate, gate_threshold),
        clean_images, clean_labels, adv_images, attacks, workers=workers)
    return decide(base, cand, policy)


def decide(base: GateEval, cand: GateEval,
           policy: Optional[CanaryPolicy] = None) -> CanaryReport:
    """Apply the promote/reject policy to a measured pair (pure)."""
    policy = policy or CanaryPolicy()
    reasons: List[str] = []
    if cand.clean_accuracy < base.clean_accuracy \
            - policy.max_clean_regression:
        reasons.append(
            f"clean accuracy regressed {base.clean_accuracy:.4f} -> "
            f"{cand.clean_accuracy:.4f} (bound "
            f"{policy.max_clean_regression})")
    if cand.robust_accuracy < base.robust_accuracy \
            - policy.max_robust_regression:
        reasons.append(
            f"robust accuracy regressed {base.robust_accuracy:.4f} -> "
            f"{cand.robust_accuracy:.4f} (bound "
            f"{policy.max_robust_regression})")
    if cand.false_positive_rate > base.false_positive_rate \
            + policy.max_fpr_regression:
        reasons.append(
            f"clean false-positive rate regressed "
            f"{base.false_positive_rate:.4f} -> "
            f"{cand.false_positive_rate:.4f} (bound "
            f"{policy.max_fpr_regression})")
    if cand.detection_rate < base.detection_rate \
            + policy.min_detection_gain:
        reasons.append(
            f"detection rate {cand.detection_rate:.4f} did not gain "
            f"{policy.min_detection_gain} over baseline "
            f"{base.detection_rate:.4f}")
    return CanaryReport(baseline=base, candidate=cand,
                        verdict="reject" if reasons else "promote",
                        reasons=reasons)
