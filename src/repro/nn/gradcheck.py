"""Central-difference gradient checking.

Used throughout the test suite to verify every op and layer of the autodiff
substrate against numeric derivatives — the correctness of the white-box
attacks (and hence of the whole reproduction) rests on these gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradient"]


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t.
    ``inputs[wrt]``.

    ``fn`` receives :class:`Tensor` arguments and must return a Tensor.
    float64 is used internally to keep the estimate stable.
    """
    base = [np.asarray(a, dtype=np.float64).copy() for a in inputs]
    grad = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*[Tensor(a.astype(np.float32)) for a in base]).sum().item())
        flat[i] = orig - eps
        lo = float(fn(*[Tensor(a.astype(np.float32)) for a in base]).sum().item())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-3,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> None:
    """Assert that the autodiff gradient matches the numeric one.

    Raises ``AssertionError`` with the max deviation on mismatch.
    """
    tensors = [Tensor(np.asarray(a, dtype=np.float32)) for a in inputs]
    tensors[wrt].requires_grad = True
    out = fn(*tensors)
    out.sum().backward()
    analytic = tensors[wrt].grad
    assert analytic is not None, "no gradient reached the checked input"
    numeric = numeric_gradient(fn, inputs, wrt=wrt, eps=eps)
    if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
        worst = np.max(np.abs(analytic - numeric))
        raise AssertionError(
            f"gradient mismatch (max abs deviation {worst:.3e})\n"
            f"analytic:\n{analytic}\nnumeric:\n{numeric}"
        )
