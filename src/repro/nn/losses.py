"""Loss functions used by the paper's trainers.

Includes the plain classification loss (softmax cross-entropy on
pre-softmax logits, Sec. II-A), the binary cross-entropy the GanDef
discriminator maximizes, and the CLP / CLS penalty terms of Kannan et al.
exactly as written in Sec. III-A:

* ``L_CLP = L(z1,t1) + L(z2,t2) + lambda * l2(z1 - z2)``
* ``L_CLS = L(z,t) + lambda * l2(z)``
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import backend as _backend
from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = [
    "softmax_cross_entropy",
    "bce_with_logits",
    "bce_on_probs",
    "l2_penalty",
    "clp_loss",
    "cls_loss",
    "mse",
]


def _as_labels(t, num_classes: int):
    """Accept integer labels or one-hot rows; return integer labels."""
    arr = t.data if isinstance(t, Tensor) \
        else _backend.active().asarray(t)
    if arr.ndim == 2:
        if arr.shape[1] != num_classes:
            raise ValueError(
                f"one-hot width {arr.shape[1]} does not match {num_classes} classes"
            )
        return arr.argmax(axis=1)
    return arr.astype(np.int64)


def softmax_cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Cross-entropy between softmax(logits) and integer/one-hot targets.

    This is the paper's ``L(z, t)`` — the difference between ground truth
    and the softmax transformation of the pre-softmax logits.
    """
    labels = _as_labels(targets, logits.shape[-1])
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch between logits and targets")
    log_probs = F.log_softmax(logits, axis=-1)
    rows = _backend.active().xp.arange(labels.shape[0])
    picked = log_probs[rows, labels]
    loss = -picked
    return _reduce(loss, reduction)


def bce_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses ``max(z,0) - z*t + log(1 + exp(-|z|))``.
    """
    t = as_tensor(targets)
    z = logits
    zero = Tensor(_backend.active().xp.zeros_like(z.data))
    loss = F.maximum(z, zero) - z * t + F.log(F.exp(-F.abs(z)) + 1.0)
    return _reduce(loss, reduction)


def bce_on_probs(probs: Tensor, targets, eps: float = 1e-7,
                 reduction: str = "mean") -> Tensor:
    """Binary cross-entropy on probabilities already through a sigmoid.

    The Table II discriminator ends in a Sigmoid layer, so the GanDef
    trainers use this form of ``-log q_D(s|z)``.
    """
    t = as_tensor(targets)
    p = F.clip(probs, eps, 1.0 - eps)
    loss = -(t * F.log(p) + (1.0 - t) * F.log(1.0 - p))
    return _reduce(loss, reduction)


def l2_penalty(x: Tensor) -> Tensor:
    """Mean squared l2 norm over the batch: ``mean_i ||x_i||_2^2``."""
    return (x * x).sum(axis=-1).mean()


def clp_loss(logits_a: Tensor, targets_a, logits_b: Tensor, targets_b,
             lam: float) -> Tensor:
    """Clean Logit Pairing total loss (Sec. III-A)."""
    ce = softmax_cross_entropy(logits_a, targets_a) \
        + softmax_cross_entropy(logits_b, targets_b)
    return ce + lam * l2_penalty(logits_a - logits_b)


def cls_loss(logits: Tensor, targets, lam: float) -> Tensor:
    """Clean Logit Squeezing total loss (Sec. III-A)."""
    return softmax_cross_entropy(logits, targets) + lam * l2_penalty(logits)


def mse(a: Tensor, b, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    diff = a - as_tensor(b)
    return _reduce(diff * diff, reduction)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
