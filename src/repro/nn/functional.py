"""Differentiable element-wise, activation and normalization functions.

Everything here operates on :class:`repro.nn.tensor.Tensor` and records the
autodiff tape.  Numerically-sensitive ops (softmax, log-softmax, sigmoid)
use the standard stable formulations.

Array math dispatches through the active backend's ``xp`` namespace
(:mod:`repro.backend`); under the default ``NumpyBackend`` every expression
is the plain-numpy code it always was.  Stochastic draws (dropout masks)
are made on the host RNG stream and transferred via ``backend.asarray`` so
seeded runs agree across backends.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import backend as _backend
from .tensor import _TRACER, Tensor, as_tensor

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "softmax",
    "log_softmax",
    "dropout",
    "where",
    "maximum",
    "minimum",
    "pad2d",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    mask = (x.data > 0).astype(np.float32)
    out_data = x.data * mask

    def backward(grad) -> None:
        x._accumulate(grad * mask, owned=True)

    return Tensor._make(out_data, (x,), backward, op="relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable slope for negative inputs."""
    mask = (x.data > 0).astype(np.float32)
    scale = mask + negative_slope * (1.0 - mask)
    out_data = x.data * scale

    op = ("leaky_relu", (negative_slope,)) if _TRACER[0] is not None \
        else None

    def backward(grad) -> None:
        x._accumulate(grad * scale, owned=True)

    return Tensor._make(out_data, (x,), backward, op=op)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out_data = _stable_sigmoid(x.data)

    def backward(grad) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data), owned=True)

    return Tensor._make(out_data, (x,), backward, op="sigmoid")


def _stable_sigmoid(z):
    xp = _backend.active().xp
    out = xp.empty_like(z, dtype=np.float32)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + xp.exp(-z[pos]))
    ez = xp.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def tanh(x: Tensor) -> Tensor:
    out_data = _backend.active().xp.tanh(x.data)

    def backward(grad) -> None:
        x._accumulate(grad * (1.0 - out_data ** 2), owned=True)

    return Tensor._make(out_data, (x,), backward, op="tanh")


def exp(x: Tensor) -> Tensor:
    out_data = _backend.active().xp.exp(x.data)

    def backward(grad) -> None:
        x._accumulate(grad * out_data, owned=True)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor, eps: float = 0.0) -> Tensor:
    """Natural logarithm; pass ``eps`` to clamp inputs away from zero."""
    xp = _backend.active().xp
    safe = x.data if eps == 0.0 else xp.maximum(x.data, eps)
    out_data = xp.log(safe)

    def backward(grad) -> None:
        x._accumulate(grad / safe, owned=True)

    return Tensor._make(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    xp = _backend.active().xp
    out_data = xp.sqrt(x.data)

    def backward(grad) -> None:
        xp = _backend.active().xp
        x._accumulate(grad * 0.5 / xp.maximum(out_data, 1e-12), owned=True)

    return Tensor._make(out_data, (x,), backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors np.abs
    sign = _backend.active().xp.sign(x.data).astype(np.float32)
    out_data = x.data * sign

    def backward(grad) -> None:
        x._accumulate(grad * sign, owned=True)

    return Tensor._make(out_data, (x,), backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clamp; gradient is passed only inside the box."""
    out_data = _backend.active().xp.clip(x.data, low, high)
    mask = ((x.data >= low) & (x.data <= high)).astype(np.float32)

    def backward(grad) -> None:
        x._accumulate(grad * mask, owned=True)

    return Tensor._make(out_data, (x,), backward)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``where`` on a boolean array condition."""
    a = as_tensor(a)
    b = as_tensor(b)
    xp = _backend.active().xp
    cond = xp.asarray(condition, dtype=bool)
    out_data = xp.where(cond, a.data, b.data)

    def backward(grad) -> None:
        a._accumulate(grad * cond, owned=True)
        b._accumulate(grad * ~cond, owned=True)

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b) -> Tensor:
    """Element-wise maximum (gradient goes to the winner; ties split)."""
    a = as_tensor(a)
    b = as_tensor(b)
    xp = _backend.active().xp
    out_data = xp.maximum(a.data, b.data)
    a_wins = (a.data > b.data).astype(np.float32)
    ties = (a.data == b.data).astype(np.float32) * 0.5

    def backward(grad) -> None:
        a._accumulate(grad * (a_wins + ties), owned=True)
        b._accumulate(grad * (1.0 - a_wins - ties), owned=True)

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b) -> Tensor:
    a = as_tensor(a)
    b = as_tensor(b)
    return -maximum(-a, -b)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    xp = _backend.active().xp
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = xp.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot), owned=True)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    xp = _backend.active().xp
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = xp.log(xp.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = xp.exp(out_data)

    def backward(grad) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True),
                      owned=True)

    return Tensor._make(out_data, (x,), backward)


def dropout(
    x: Tensor,
    rate: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: at train time zero activations with probability
    ``rate`` and scale survivors by ``1/(1-rate)``; identity at test time."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    rng = rng or np.random.default_rng()
    keep = 1.0 - rate
    # The mask is drawn on the host stream (cross-backend determinism) and
    # transferred; a no-op on the CPU backends.
    mask = _backend.active().asarray(
        (rng.random(x.shape) < keep).astype(np.float32) / keep)
    out_data = x.data * mask

    def backward(grad) -> None:
        x._accumulate(grad * mask, owned=True)

    return Tensor._make(out_data, (x,), backward)


def pad2d(x: Tensor, padding: Union[int, Tuple[int, int]]) -> Tensor:
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""
    if isinstance(padding, int):
        ph = pw = padding
    else:
        ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    pads = ((0, 0), (0, 0), (ph, ph), (pw, pw))
    out_data = _backend.active().xp.pad(x.data, pads)

    def backward(grad) -> None:
        h, w = x.shape[2], x.shape[3]
        # A slice view of the child's gradient slot — not owned.
        x._accumulate(grad[:, :, ph:ph + h, pw:pw + w])

    return Tensor._make(out_data, (x,), backward)


def one_hot(labels, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of an integer label vector (host-side)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer vector")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
