"""``repro.nn`` — a from-scratch numpy neural-network substrate.

The paper trains its classifiers in TensorFlow on a GPU; this environment has
neither, so the substrate is rebuilt here: reverse-mode autodiff
(:mod:`repro.nn.tensor`), conv/pool kernels (:mod:`repro.nn.conv`), layers
(:mod:`repro.nn.modules`), losses matching the paper's formulations
(:mod:`repro.nn.losses`) and optimizers (:mod:`repro.nn.optim`).

The white-box attacks in :mod:`repro.attacks` differentiate through the same
graphs the trainers build, so the threat model is identical to the paper's.
"""

from . import functional
from .conv import avg_pool2d, conv2d, max_pool2d
from .gradcheck import check_gradient, numeric_gradient
from .losses import (
    bce_on_probs,
    bce_with_logits,
    clp_loss,
    cls_loss,
    l2_penalty,
    mse,
    softmax_cross_entropy,
)
from .modules import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    inference_mode,
)
from .optim import SGD, Adam, Optimizer
from .serialization import atomic_savez, load_state, save_state
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "stack",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "Module",
    "Parameter",
    "inference_mode",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "softmax_cross_entropy",
    "bce_with_logits",
    "bce_on_probs",
    "l2_penalty",
    "clp_loss",
    "cls_loss",
    "mse",
    "check_gradient",
    "numeric_gradient",
    "save_state",
    "load_state",
    "atomic_savez",
]
